//! # dtr-obs — observability for the dtr pipeline
//!
//! Structured tracing spans, a lightweight atomic counter/histogram
//! registry, and an EXPLAIN-style [`PipelineProfile`] covering the whole
//! pipeline: data exchange (row inserts vs. PNF merges, annotation writes
//! vs. suppressions), query evaluation (tuples scanned, bindings
//! enumerated), MXQL translation, and metastore encoding.
//!
//! ## Design
//!
//! * **Near-zero cost when off.** Everything is gated on a single global
//!   flag ([`enabled`], one relaxed atomic load). Disabled spans allocate
//!   nothing and record nothing; disabled counters skip the atomic add.
//! * **No external dependencies.** The span machinery is implemented
//!   natively (a thread-local aggregation tree) rather than via the
//!   `tracing` crate, which the offline build environment cannot fetch.
//! * **Aggregation, not event logs.** Hot paths run a span per *call*
//!   (e.g. one per inserted row); the collector folds repeated spans at the
//!   same tree position into one node with call count, total/min/max wall
//!   time and a log₂ duration histogram, so profiling a million-row
//!   exchange costs O(stages), not O(rows), in memory.
//!
//! ## Usage
//!
//! ```
//! dtr_obs::set_enabled(true);
//! dtr_obs::profile_reset();
//! {
//!     let _span = dtr_obs::span("exchange.run_mapping").field("mapping", "m1");
//!     dtr_obs::counters().rows_inserted.add(10);
//!     dtr_obs::counters().rows_merged.add(2);
//! }
//! let profile = dtr_obs::profile_snapshot();
//! assert_eq!(profile.counter("exchange.rows_inserted"), Some(10));
//! println!("{}", profile.render());
//! ```
//!
//! The `DTR_PROFILE=1` environment variable enables collection without any
//! code change; the `experiments` and `mxql` binaries also accept
//! `--profile`.

pub mod analyze;
pub mod audit;
pub mod chrome_trace;
mod explain;
pub mod guard;
pub mod health;
pub mod journal;
mod metrics;
mod profile;
pub mod recorder;
pub mod stats;
mod trace;

pub use analyze::OpNode;
pub use audit::{AuditRecord, AuditSink};
pub use explain::{ExplainStep, ExplainTrace};
pub use guard::{Budget, GuardError, GuardReport, Meter, Progress, Resource};
pub use journal::{
    Event as JournalEvent, EventId, Outcome as JournalOutcome, Summary as JournalSummary,
};
pub use metrics::{
    bucket_for, bucket_lower, bucket_upper, counters, snapshot_percentile, snapshot_percentiles,
    Counter, Counters, Histogram, HistogramSnapshot,
};
pub use profile::{CounterValue, PipelineProfile, ProfileNode};
pub use recorder::{FlightEvent, FlightKind, Summary as FlightSummary};
pub use stats::{DistinctEstimator, JoinStats, PathStats, StatsCatalog};
pub use trace::{span, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Is profiling collection enabled? First call consults `DTR_PROFILE`
/// (values `1`, `true`, `on`, case-insensitive); afterwards this is a single
/// relaxed atomic load, cheap enough for per-row hot paths.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("DTR_PROFILE")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Force profiling on or off, overriding `DTR_PROFILE`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Is any counter-consuming tier live? The registry also ticks while the
/// flight recorder is on (its periodic `C`-track samples read it), so
/// `DTR_FLIGHT=1` alone produces counter data without full profiling.
#[inline]
pub(crate) fn counters_live() -> bool {
    enabled() || recorder::enabled()
}

/// Clear all collected state (global counters, this thread's span tree,
/// the last guard trip and the last analyzed plan). Call at the start of a
/// region you want to profile in isolation. The statistics catalog is NOT
/// cleared — it accumulates across runs by design; use [`stats::reset`].
pub fn profile_reset() {
    counters().reset();
    trace::reset_current_thread();
    guard::reset_report();
    analyze::reset_last();
}

/// Snapshot the profile collected since the last [`profile_reset`]: the
/// span tree of the *current* thread plus the global counter registry. If
/// the event journal is enabled, its [`JournalSummary`] is embedded too,
/// and if a budget tripped since the last reset, its [`GuardReport`].
pub fn profile_snapshot() -> PipelineProfile {
    PipelineProfile {
        stages: trace::snapshot_current_thread(),
        counters: counters().snapshot(),
        journal: journal::enabled().then(journal::summary),
        guard: guard::last_report(),
        analyze: analyze::last(),
    }
}

/// Serializes tests that mutate the global enabled flag / counter registry.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = test_guard();
        set_enabled(false);
        // The registry also feeds the flight recorder; force that tier off
        // too so this asserts the fully-disabled hot path (the CI soak
        // reruns the suite under DTR_FLIGHT=1).
        recorder::set_enabled(false);
        profile_reset();
        {
            let _s = span("exchange.run_mapping").field("mapping", "m1");
            counters().rows_inserted.add(5);
        }
        set_enabled(true);
        let p = profile_snapshot();
        set_enabled(false);
        assert!(p.stages.is_empty());
        assert_eq!(p.counter("exchange.rows_inserted"), Some(0));
    }

    #[test]
    fn nested_spans_aggregate() {
        let _guard = test_guard();
        set_enabled(true);
        profile_reset();
        for i in 0..3 {
            let _outer = span("exchange.run_mapping").field("mapping", format!("m{i}"));
            for _ in 0..4 {
                let _inner = span("exchange.insert_row");
            }
        }
        let p = profile_snapshot();
        set_enabled(false);
        assert_eq!(p.stages.len(), 1);
        let outer = &p.stages[0];
        assert_eq!(outer.name, "exchange.run_mapping");
        assert_eq!(outer.count, 3);
        assert_eq!(
            outer.fields,
            vec![("mapping".to_string(), "m2".to_string())]
        );
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].count, 12);
        assert!(outer.total_ns >= outer.children[0].total_ns);
    }
}
