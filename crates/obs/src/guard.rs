//! `dtr-guard`: resource budgets, deadlines and cooperative cancellation
//! for every execution engine in the pipeline.
//!
//! A [`Budget`] rides inside the engine option structs (`EvalOptions`,
//! `ExchangeOptions`, the §7.3 runner) and is enforced through a [`Meter`]:
//! one meter per engine invocation, charged at the hot-loop sites (binding
//! enumeration, foreach rows, projected result rows). Exceeding a budget
//! yields a structured [`GuardError`] — never a panic — carrying what was
//! exhausted and how far the run got.
//!
//! ## Design
//!
//! * **Cheap when unlimited.** Limits are stored as saturated `u64::MAX`
//!   caps, so a charge is one add + compare. Deadline and cancellation are
//!   polled on a stride (first call, then every
//!   [`POLL_STRIDE`](Meter::POLL_STRIDE)), so the per-row cost of an
//!   unlimited budget is one increment and a branch.
//! * **Always cancellable.** The `cancel` flag is a shared
//!   `Arc<AtomicBool>`; the meter polls it even when no numeric limit is
//!   set, so a runaway run can be reclaimed from another thread.
//! * **Observable.** Every trip records a [`GuardReport`] into a global
//!   last-trip slot (embedded in [`crate::PipelineProfile`]) and bumps the
//!   `guard.*` counters.

use serde_json::{Map, Value};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Resource limits for one engine invocation. All limits default to
/// unlimited; `cancel` is a fresh flag nobody else holds.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Cap on candidate bindings enumerated by one evaluator run.
    pub max_bindings: Option<u64>,
    /// Cap on rows produced: projected result rows in evaluation, inserted
    /// foreach rows (cumulative across mappings) in exchange.
    pub max_rows: Option<u64>,
    /// Cap on approximate bytes of projected result values.
    pub max_result_bytes: Option<u64>,
    /// Wall-clock allowance, measured from when the engine starts.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation: set from any thread to stop the run at the
    /// next poll point.
    pub cancel: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_bindings: None,
            max_rows: None,
            max_result_bytes: None,
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl Budget {
    /// An explicitly unlimited budget (same as `Default`).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Does any numeric or wall-clock limit apply? (The cancel flag is
    /// polled regardless.)
    pub fn is_limited(&self) -> bool {
        self.max_bindings.is_some()
            || self.max_rows.is_some()
            || self.max_result_bytes.is_some()
            || self.deadline.is_some()
    }

    /// Request cancellation; every engine sharing this budget's flag stops
    /// at its next poll point.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Start metering an engine invocation. Captures the deadline now.
    pub fn meter(&self, stage: &'static str) -> Meter {
        Meter {
            max_bindings: self.max_bindings.unwrap_or(u64::MAX),
            max_rows: self.max_rows.unwrap_or(u64::MAX),
            max_result_bytes: self.max_result_bytes.unwrap_or(u64::MAX),
            deadline_ms: self
                .deadline
                .map(|d| d.as_millis().min(u64::MAX as u128) as u64),
            deadline_at: self.deadline.map(|d| Instant::now() + d),
            cancel: Arc::clone(&self.cancel),
            polls: 0,
            progress: Progress::default(),
            stage,
        }
    }
}

/// Which budgeted resource was exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// `max_bindings` reached in binding enumeration.
    Bindings,
    /// `max_rows` reached (result rows or exchange inserts).
    Rows,
    /// `max_result_bytes` reached in projection.
    ResultBytes,
    /// The wall-clock deadline passed.
    Deadline,
    /// The shared cancel flag was set.
    Cancelled,
}

impl Resource {
    /// Stable snake_case tag (used in journal events, JSON and counters).
    pub fn name(&self) -> &'static str {
        match self {
            Resource::Bindings => "bindings",
            Resource::Rows => "rows",
            Resource::ResultBytes => "result_bytes",
            Resource::Deadline => "deadline",
            Resource::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How far a run got before it was stopped. Deterministic integer counters
/// only (no wall times), so the same trip reproduces the same error.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Progress {
    /// Candidate bindings enumerated so far.
    pub bindings: u64,
    /// Rows produced so far (result rows or exchange inserts).
    pub rows: u64,
    /// Approximate result bytes produced so far.
    pub bytes: u64,
}

/// A budget violation: structured, never a panic.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GuardError {
    /// What ran out.
    pub resource: Resource,
    /// The engine stage that tripped (e.g. `"query.eval"`).
    pub stage: &'static str,
    /// The configured limit (ms for deadlines, 0 for cancellation).
    pub limit: u64,
    /// Partial-progress counters at the trip point.
    pub progress: Progress,
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Cancelled => write!(f, "cancelled at {}", self.stage)?,
            Resource::Deadline => write!(
                f,
                "deadline of {} ms exceeded at {}",
                self.limit, self.stage
            )?,
            r => write!(
                f,
                "budget exhausted at {}: {} limit {} reached",
                self.stage, r, self.limit
            )?,
        }
        write!(
            f,
            " (progress: {} bindings, {} rows, {} bytes)",
            self.progress.bindings, self.progress.rows, self.progress.bytes
        )
    }
}

impl std::error::Error for GuardError {}

/// The enforcement side of a [`Budget`]: one per engine invocation.
#[derive(Debug)]
pub struct Meter {
    max_bindings: u64,
    max_rows: u64,
    max_result_bytes: u64,
    deadline_ms: Option<u64>,
    deadline_at: Option<Instant>,
    cancel: Arc<AtomicBool>,
    polls: u64,
    progress: Progress,
    stage: &'static str,
}

impl Meter {
    /// Deadline/cancellation are polled on the first tick and then every
    /// `POLL_STRIDE` ticks, bounding the unlimited-budget hot-path cost to
    /// one increment + branch per tick.
    pub const POLL_STRIDE: u64 = 64;

    /// Partial-progress counters so far.
    pub fn progress(&self) -> Progress {
        self.progress
    }

    /// Total budget charges ticked so far (every `poll`/`check_bindings`/
    /// `charge_rows` call, polled or not). EXPLAIN ANALYZE diffs this
    /// around each operator to attribute guard charges per operator.
    pub fn ticks(&self) -> u64 {
        self.polls
    }

    fn trip(&self, resource: Resource, limit: u64) -> GuardError {
        let err = GuardError {
            resource,
            stage: self.stage,
            limit,
            progress: self.progress,
        };
        record_trip(&err);
        crate::counters().guard_trips.incr();
        if crate::recorder::enabled() {
            crate::recorder::record_guard_trip(resource.name(), self.stage);
        }
        err
    }

    #[cold]
    fn poll_now(&mut self) -> Result<(), GuardError> {
        crate::counters().guard_checks.incr();
        if self.cancel.load(Ordering::Relaxed) {
            return Err(self.trip(Resource::Cancelled, 0));
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                return Err(self.trip(Resource::Deadline, self.deadline_ms.unwrap_or(0)));
            }
        }
        Ok(())
    }

    /// Strided deadline/cancellation check; call once per loop iteration.
    #[inline]
    pub fn poll(&mut self) -> Result<(), GuardError> {
        self.polls += 1;
        if self.polls % Self::POLL_STRIDE == 1 {
            self.poll_now()
        } else {
            Ok(())
        }
    }

    /// Record that binding enumeration has reached `total` candidates
    /// (an absolute count, not a delta) and poll.
    #[inline]
    pub fn check_bindings(&mut self, total: u64) -> Result<(), GuardError> {
        self.progress.bindings = total;
        if total > self.max_bindings {
            return Err(self.trip(Resource::Bindings, self.max_bindings));
        }
        self.poll()
    }

    /// Charge `n` produced rows and poll.
    #[inline]
    pub fn charge_rows(&mut self, n: u64) -> Result<(), GuardError> {
        self.progress.rows += n;
        if self.progress.rows > self.max_rows {
            return Err(self.trip(Resource::Rows, self.max_rows));
        }
        self.poll()
    }

    /// Charge `n` result bytes (no poll; pair with a row charge).
    #[inline]
    pub fn charge_bytes(&mut self, n: u64) -> Result<(), GuardError> {
        self.progress.bytes += n;
        if self.progress.bytes > self.max_result_bytes {
            return Err(self.trip(Resource::ResultBytes, self.max_result_bytes));
        }
        Ok(())
    }
}

/// Plain-data record of the most recent guard trip, embedded in
/// [`crate::PipelineProfile::guard`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GuardReport {
    /// [`Resource::name`] of what ran out.
    pub resource: String,
    /// The stage that tripped.
    pub stage: String,
    /// The configured limit (ms for deadlines, 0 for cancellation).
    pub limit: u64,
    /// Bindings enumerated before the trip.
    pub bindings: u64,
    /// Rows produced before the trip.
    pub rows: u64,
    /// Result bytes produced before the trip.
    pub bytes: u64,
}

impl GuardReport {
    /// Structured JSON form (inverse of [`GuardReport::from_json`]).
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("resource", Value::from(self.resource.as_str()));
        obj.insert("stage", Value::from(self.stage.as_str()));
        obj.insert("limit", Value::from(self.limit));
        obj.insert("bindings", Value::from(self.bindings));
        obj.insert("rows", Value::from(self.rows));
        obj.insert("bytes", Value::from(self.bytes));
        Value::Object(obj)
    }

    /// Parse the structure produced by [`GuardReport::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let get = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("guard report: missing integer field '{key}'"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("guard report: missing string field '{key}'"))
        };
        Ok(GuardReport {
            resource: get_str("resource")?,
            stage: get_str("stage")?,
            limit: get("limit")?,
            bindings: get("bindings")?,
            rows: get("rows")?,
            bytes: get("bytes")?,
        })
    }
}

static LAST_TRIP: Mutex<Option<GuardReport>> = Mutex::new(None);

fn record_trip(err: &GuardError) {
    let report = GuardReport {
        resource: err.resource.name().to_string(),
        stage: err.stage.to_string(),
        limit: err.limit,
        bindings: err.progress.bindings,
        rows: err.progress.rows,
        bytes: err.progress.bytes,
    };
    *LAST_TRIP.lock().unwrap_or_else(|p| p.into_inner()) = Some(report);
}

/// The most recent guard trip since the last [`reset_report`], if any.
pub fn last_report() -> Option<GuardReport> {
    LAST_TRIP.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Clear the last-trip slot (called from [`crate::profile_reset`]).
pub fn reset_report() {
    *LAST_TRIP.lock().unwrap_or_else(|p| p.into_inner()) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_never_trips() {
        let budget = Budget::default();
        assert!(!budget.is_limited());
        let mut meter = budget.meter("test");
        for _ in 0..10_000 {
            meter.poll().unwrap();
            meter.charge_rows(1).unwrap();
            meter.charge_bytes(1 << 20).unwrap();
        }
        meter.check_bindings(u64::MAX - 1).unwrap();
    }

    #[test]
    fn zero_deadline_trips_on_first_poll() {
        let budget = Budget {
            deadline: Some(Duration::ZERO),
            ..Budget::default()
        };
        let mut meter = budget.meter("test.stage");
        let err = meter.poll().unwrap_err();
        assert_eq!(err.resource, Resource::Deadline);
        assert_eq!(err.stage, "test.stage");
        assert_eq!(err.limit, 0);
        assert!(err.to_string().contains("deadline of 0 ms"));
    }

    #[test]
    fn preset_cancel_trips_before_deadline() {
        let budget = Budget {
            deadline: Some(Duration::ZERO),
            ..Budget::default()
        };
        budget.request_cancel();
        let mut meter = budget.meter("test");
        let err = meter.poll().unwrap_err();
        assert_eq!(err.resource, Resource::Cancelled);
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let budget = Budget::default();
        let clone = budget.clone();
        budget.request_cancel();
        let mut meter = clone.meter("test");
        assert!(meter.poll().is_err());
    }

    #[test]
    fn row_budget_trips_at_exact_boundary() {
        let budget = Budget {
            max_rows: Some(3),
            ..Budget::default()
        };
        let mut meter = budget.meter("test");
        meter.charge_rows(1).unwrap();
        meter.charge_rows(2).unwrap();
        let err = meter.charge_rows(1).unwrap_err();
        assert_eq!(err.resource, Resource::Rows);
        assert_eq!(err.limit, 3);
        assert_eq!(err.progress.rows, 4);
    }

    #[test]
    fn binding_and_byte_budgets_trip() {
        let budget = Budget {
            max_bindings: Some(10),
            max_result_bytes: Some(100),
            ..Budget::default()
        };
        let mut meter = budget.meter("test");
        meter.check_bindings(10).unwrap();
        assert_eq!(
            meter.check_bindings(11).unwrap_err().resource,
            Resource::Bindings
        );
        let mut meter = budget.meter("test");
        meter.charge_bytes(100).unwrap();
        let err = meter.charge_bytes(1).unwrap_err();
        assert_eq!(err.resource, Resource::ResultBytes);
        assert_eq!(err.progress.bytes, 101);
    }

    #[test]
    fn mid_run_cancel_is_seen_within_a_stride() {
        let budget = Budget::default();
        let mut meter = budget.meter("test");
        meter.poll().unwrap();
        budget.request_cancel();
        let mut tripped = false;
        for _ in 0..Meter::POLL_STRIDE {
            if meter.poll().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "cancel must be observed within one poll stride");
    }

    #[test]
    fn trips_record_a_guard_report() {
        let _guard = crate::test_guard();
        reset_report();
        let budget = Budget {
            max_rows: Some(1),
            ..Budget::default()
        };
        let mut meter = budget.meter("exchange.insert_row");
        meter.charge_rows(2).unwrap_err();
        let report = last_report().expect("trip recorded");
        assert_eq!(report.resource, "rows");
        assert_eq!(report.stage, "exchange.insert_row");
        assert_eq!(report.limit, 1);
        assert_eq!(report.rows, 2);
        reset_report();
        assert!(last_report().is_none());
    }

    #[test]
    fn guard_report_round_trips_through_json() {
        let report = GuardReport {
            resource: "deadline".to_string(),
            stage: "query.eval".to_string(),
            limit: 50,
            bindings: 120,
            rows: 7,
            bytes: 4_096,
        };
        let round = GuardReport::from_json(&report.to_json()).unwrap();
        assert_eq!(round, report);
        assert!(GuardReport::from_json(&serde_json::json!({})).is_err());
    }

    #[test]
    fn guard_errors_are_comparable_and_displayable() {
        let budget = Budget {
            max_rows: Some(1),
            ..Budget::default()
        };
        let e1 = budget.meter("stage").charge_rows(2).unwrap_err();
        let e2 = budget.meter("stage").charge_rows(2).unwrap_err();
        assert_eq!(e1, e2);
        assert!(e1.to_string().contains("rows limit 1 reached"));
        assert!(e1.to_string().contains("2 rows"));
    }
}
