//! EXPLAIN ANALYZE plan data: a per-operator tree recording what each
//! logical operator (scan, bind, filter, hash-join build/probe, nest,
//! PNF-merge, project, sort, limit) actually did — rows in/out, elapsed
//! wall time, and guard charges — produced by `dtr_query`'s
//! `eval_analyzed` mode and embedded into [`crate::PipelineProfile`].

use std::sync::Mutex;

use serde_json::{Map, Value};

use crate::profile::fmt_ns;

/// One operator's measured execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpNode {
    /// Operator kind, e.g. `"scan"`, `"hash-probe"`, `"pnf-merge"`.
    pub op: String,
    /// Operator detail, e.g. the bound variable and source path.
    pub label: String,
    /// Rows (or candidate items) flowing into the operator.
    pub rows_in: u64,
    /// Rows surviving the operator.
    pub rows_out: u64,
    /// Wall time attributed to this operator.
    pub elapsed_ns: u64,
    /// Guard-meter charges (budget poll ticks) incurred inside it.
    pub guard_charges: u64,
    /// Upstream operators feeding this one.
    pub children: Vec<OpNode>,
}

impl OpNode {
    pub fn new(op: impl Into<String>, label: impl Into<String>) -> Self {
        OpNode {
            op: op.into(),
            label: label.into(),
            ..OpNode::default()
        }
    }

    /// Number of operators in this subtree (including `self`).
    pub fn ops(&self) -> usize {
        1 + self.children.iter().map(OpNode::ops).sum::<usize>()
    }

    /// Depth-first search for the first operator of the given kind.
    pub fn find(&self, op: &str) -> Option<&OpNode> {
        if self.op == op {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(op))
    }

    /// Annotated-tree rendering, one operator per line:
    /// `op [label]  rows 120 → 40  1.2 ms  (guard 40)`.
    pub fn render(&self) -> String {
        let mut out = String::from("EXPLAIN ANALYZE\n");
        self.render_into(&mut out, "", true);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool) {
        let branch = if last { "└─ " } else { "├─ " };
        let mut line = format!("{prefix}{branch}{:<12}", self.op);
        if !self.label.is_empty() {
            line.push_str(&format!(" [{}]", self.label));
        }
        line.push_str(&format!(
            "  rows {} → {}  {}",
            self.rows_in,
            self.rows_out,
            fmt_ns(self.elapsed_ns)
        ));
        if self.guard_charges > 0 {
            line.push_str(&format!("  (guard {})", self.guard_charges));
        }
        out.push_str(&line);
        out.push('\n');
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &child_prefix, i + 1 == self.children.len());
        }
    }

    /// Structured JSON form (keys in fixed order; see
    /// [`OpNode::from_json`] for the inverse).
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("op", Value::from(self.op.as_str()));
        if !self.label.is_empty() {
            obj.insert("label", Value::from(self.label.as_str()));
        }
        obj.insert("rows_in", Value::from(self.rows_in));
        obj.insert("rows_out", Value::from(self.rows_out));
        obj.insert("elapsed_ns", Value::from(self.elapsed_ns));
        if self.guard_charges > 0 {
            obj.insert("guard_charges", Value::from(self.guard_charges));
        }
        if !self.children.is_empty() {
            obj.insert(
                "children",
                Value::Array(self.children.iter().map(OpNode::to_json).collect()),
            );
        }
        Value::Object(obj)
    }

    /// Parse the structure produced by [`OpNode::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let get_u64 = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("analyze node: missing integer field '{key}'"))
        };
        let op = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or("analyze node: missing 'op'")?
            .to_string();
        let label = value
            .get("label")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        let mut children = Vec::new();
        if let Some(items) = value.get("children").and_then(Value::as_array) {
            for item in items {
                children.push(OpNode::from_json(item)?);
            }
        }
        Ok(OpNode {
            op,
            label,
            rows_in: get_u64("rows_in")?,
            rows_out: get_u64("rows_out")?,
            elapsed_ns: get_u64("elapsed_ns")?,
            guard_charges: value
                .get("guard_charges")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            children,
        })
    }
}

static LAST: Mutex<Option<OpNode>> = Mutex::new(None);

/// Publish an analyzed plan as the most recent one so
/// [`crate::profile_snapshot`] can embed the tree. This slot is a
/// process-global *display convenience* for the REPL and profile
/// snapshots only: analyzed evaluation returns its plan to the caller
/// and does **not** publish here, so concurrent evaluators never clobber
/// each other — a front-end that wants the tree in the profile snapshot
/// publishes the plan it received explicitly.
pub fn set_last(plan: OpNode) {
    *LAST.lock().unwrap_or_else(|p| p.into_inner()) = Some(plan);
}

/// The most recent analyzed plan, if an `eval_analyzed` run completed
/// since the last [`reset_last`].
pub fn last() -> Option<OpNode> {
    LAST.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Clear the most-recent-plan slot (done by [`crate::profile_reset`]).
pub fn reset_last() {
    *LAST.lock().unwrap_or_else(|p| p.into_inner()) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpNode {
        OpNode {
            op: "project".into(),
            label: "3 cols".into(),
            rows_in: 40,
            rows_out: 40,
            elapsed_ns: 1_200_000,
            guard_charges: 40,
            children: vec![
                OpNode {
                    op: "hash-probe".into(),
                    label: "$l.agent-id = $a.id".into(),
                    rows_in: 120,
                    rows_out: 40,
                    elapsed_ns: 800_000,
                    guard_charges: 0,
                    children: vec![OpNode {
                        op: "hash-build".into(),
                        label: "$a: src:/rdb/agent".into(),
                        rows_in: 12,
                        rows_out: 12,
                        elapsed_ns: 90_000,
                        guard_charges: 0,
                        children: vec![],
                    }],
                },
                OpNode::new("scan", "$l: src:/rdb/listing"),
            ],
        }
    }

    #[test]
    fn render_shows_tree_rows_and_guard() {
        let text = sample().render();
        assert!(text.contains("EXPLAIN ANALYZE"));
        assert!(text.contains("└─ project"));
        assert!(text.contains("├─ hash-probe"));
        assert!(text.contains("└─ hash-build"));
        assert!(text.contains("rows 120 → 40"));
        assert!(text.contains("(guard 40)"));
        assert!(text.contains("[$a: src:/rdb/agent]"));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let plan = sample();
        let text = serde_json::to_string_pretty(&plan.to_json()).unwrap();
        let parsed = serde_json::from_str(&text).unwrap();
        assert_eq!(OpNode::from_json(&parsed).unwrap(), plan);
    }

    #[test]
    fn find_and_ops_walk_the_tree() {
        let plan = sample();
        assert_eq!(plan.ops(), 4);
        assert_eq!(plan.find("hash-build").unwrap().rows_out, 12);
        assert!(plan.find("nest").is_none());
    }

    #[test]
    fn last_plan_slot_round_trips() {
        let _guard = crate::test_guard();
        reset_last();
        assert!(last().is_none());
        set_last(sample());
        assert_eq!(last().unwrap().ops(), 4);
        reset_last();
        assert!(last().is_none());
    }
}
