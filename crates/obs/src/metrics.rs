//! The counter/histogram registry: a fixed set of named atomic counters
//! covering every pipeline stage. No global sampler, no locks — counters
//! are plain relaxed atomics, gated on [`crate::enabled`] so the disabled
//! cost is one load + branch.

use std::sync::atomic::{AtomicU64, Ordering};

/// A single named monotonic counter.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    cell: AtomicU64,
}

impl Counter {
    const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: AtomicU64::new(0),
        }
    }

    /// The registry name, e.g. `"exchange.rows_merged"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n`; a no-op while both profiling and flight recording are
    /// disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::counters_live() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one; a no-op while profiling is disabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.cell.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets in a [`Histogram`] (covers 1 ns .. ~137 s).
pub const HISTOGRAM_BUCKETS: usize = 38;

/// The bucket index a value lands in: `floor(log2(v))`, with zero treated
/// as one (bucket 0) and everything at or above `2^(HISTOGRAM_BUCKETS-1)`
/// saturating into the top bucket.
#[inline]
pub fn bucket_for(value: u64) -> usize {
    let bucket = (63 - value.max(1).leading_zeros()) as usize;
    bucket.min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i` (`2^i`, except bucket 0 which also
/// absorbs zero).
pub fn bucket_lower(i: usize) -> u64 {
    debug_assert!(i < HISTOGRAM_BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Inclusive upper bound of bucket `i` (`2^(i+1) - 1`, except the top
/// bucket which saturates to `u64::MAX`).
pub fn bucket_upper(i: usize) -> u64 {
    debug_assert!(i < HISTOGRAM_BUCKETS);
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A lock-free log₂-bucketed histogram (bucket *i* counts values `v` with
/// `floor(log2(v)) == i`; zero lands in bucket 0).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A plain-data copy of a [`Histogram`].
pub type HistogramSnapshot = [u64; HISTOGRAM_BUCKETS];

impl Histogram {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);

    pub const fn new() -> Self {
        Histogram {
            buckets: [Self::ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Record one observation (typically nanoseconds); a no-op while both
    /// profiling and flight recording are disabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if crate::counters_live() {
            self.buckets[bucket_for(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of the recorded values.
    /// Returns `None` on an empty histogram. See [`snapshot_percentile`].
    pub fn percentile(&self, q: f64) -> Option<u64> {
        snapshot_percentile(&self.snapshot(), q)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Estimate the `q`-quantile (`0.0 ..= 1.0`) from a histogram snapshot.
///
/// Walks the buckets until the cumulative count covers `ceil(q * total)`
/// observations and returns the geometric midpoint of that bucket's bounds
/// (lower bound for bucket 0 / the saturated top bucket, whose upper bound
/// is not meaningful). Returns `None` when no observations were recorded.
pub fn snapshot_percentile(snap: &HistogramSnapshot, q: f64) -> Option<u64> {
    let total: u64 = snap.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &count) in snap.iter().enumerate() {
        seen += count;
        if seen >= rank {
            if i == 0 || i == HISTOGRAM_BUCKETS - 1 {
                return Some(bucket_lower(i));
            }
            // Geometric midpoint of [2^i, 2^(i+1)): 2^i * sqrt(2).
            return Some((bucket_lower(i) as f64 * std::f64::consts::SQRT_2) as u64);
        }
    }
    unreachable!("cumulative count covers rank <= total")
}

/// The standard reporting percentiles (p50/p90/p99) of a snapshot, or
/// `None` on an empty histogram.
pub fn snapshot_percentiles(snap: &HistogramSnapshot) -> Option<(u64, u64, u64)> {
    Some((
        snapshot_percentile(snap, 0.50)?,
        snapshot_percentile(snap, 0.90)?,
        snapshot_percentile(snap, 0.99)?,
    ))
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The global registry: one field per pipeline metric.
#[derive(Debug)]
pub struct Counters {
    /// Source tuples visited during query evaluation / binding enumeration.
    pub tuples_scanned: Counter,
    /// Candidate variable bindings produced by the evaluator's `from` loop.
    pub bindings_enumerated: Counter,
    /// Hash-join probes: candidate items tested after a hash-table lookup
    /// (instead of a full nested-loop scan).
    pub hash_probes: Counter,
    /// Plain + MXQL queries evaluated end to end.
    pub queries_evaluated: Counter,
    /// Exchange: fresh target rows materialized.
    pub rows_inserted: Counter,
    /// Exchange: rows folded into an existing member by PNF merging.
    pub rows_merged: Counter,
    /// Exchange: worker threads spawned by parallel mapping evaluation.
    pub parallel_workers: Counter,
    /// Exchange: `f_mp` annotations newly written onto target nodes.
    pub annotations_written: Counter,
    /// Exchange: annotation writes that were no-ops (name already present —
    /// the PNF-merge sharing the paper's Section 8 optimization relies on).
    pub annotations_suppressed: Counter,
    /// Metastore: rows encoded into the seven storage relations.
    pub meta_tuples_encoded: Counter,
    /// MXQL→plain translation: union branches produced.
    pub translate_branches: Counter,
    /// XML writer: annotation attributes emitted.
    pub xml_annotations_written: Counter,
    /// XML writer: annotation attributes suppressed by PNF sharing.
    pub xml_annotations_suppressed: Counter,
    /// Guard: deadline/cancellation poll points actually evaluated
    /// (strided — not every charge).
    pub guard_checks: Counter,
    /// Guard: budget violations (each yields one `GuardError`).
    pub guard_trips: Counter,
    /// Guard: exchange rollbacks performed after a mid-mapping trip.
    pub guard_rollbacks: Counter,
    /// Incremental exchange: delta batches applied.
    pub delta_batches: Counter,
    /// Incremental exchange: source edits applied across all batches.
    pub delta_edits: Counter,
    /// Incremental exchange: foreach rows added to the cached row bags.
    pub delta_rows_added: Counter,
    /// Incremental exchange: foreach rows retracted from the cached bags.
    pub delta_rows_removed: Counter,
    /// Incremental exchange: target member classes rebuilt in place.
    pub delta_classes_rebuilt: Counter,
    /// Incremental exchange: mappings skipped by path-affectedness pruning.
    pub delta_mappings_pruned: Counter,
    /// Incremental exchange: mappings re-enumerated (semi-naive or full).
    pub delta_mappings_reevaluated: Counter,
    /// Durable store: delta frames committed to the write-ahead log.
    pub durable_wal_appends: Counter,
    /// Durable store: WAL bytes durably written (frames + checkpoints).
    pub durable_wal_bytes: Counter,
    /// Durable store: checkpoints written (initial + rotations).
    pub durable_checkpoints: Counter,
    /// Durable store: recoveries performed on open.
    pub durable_recoveries: Counter,
    /// Durable store: delta batches replayed during recovery.
    pub durable_replayed_deltas: Counter,
    /// Durable store: transient I/O errors retried (fsync/append).
    pub durable_io_retries: Counter,
    /// Durable store: epoch snapshots published for concurrent readers.
    pub durable_epochs_published: Counter,
    /// Distribution of span durations (ns) across all stages.
    pub span_duration_ns: Histogram,
}

static COUNTERS: Counters = Counters {
    tuples_scanned: Counter::new("eval.tuples_scanned"),
    bindings_enumerated: Counter::new("eval.bindings_enumerated"),
    hash_probes: Counter::new("eval.hash_probes"),
    queries_evaluated: Counter::new("eval.queries_evaluated"),
    rows_inserted: Counter::new("exchange.rows_inserted"),
    rows_merged: Counter::new("exchange.rows_merged"),
    parallel_workers: Counter::new("exchange.parallel_workers"),
    annotations_written: Counter::new("exchange.annotations_written"),
    annotations_suppressed: Counter::new("exchange.annotations_suppressed"),
    meta_tuples_encoded: Counter::new("metastore.tuples_encoded"),
    translate_branches: Counter::new("translate.branches"),
    xml_annotations_written: Counter::new("xml.annotations_written"),
    xml_annotations_suppressed: Counter::new("xml.annotations_suppressed"),
    guard_checks: Counter::new("guard.checks"),
    guard_trips: Counter::new("guard.trips"),
    guard_rollbacks: Counter::new("guard.rollbacks"),
    delta_batches: Counter::new("exchange.delta_batches"),
    delta_edits: Counter::new("exchange.delta_edits"),
    delta_rows_added: Counter::new("exchange.delta_rows_added"),
    delta_rows_removed: Counter::new("exchange.delta_rows_removed"),
    delta_classes_rebuilt: Counter::new("exchange.delta_classes_rebuilt"),
    delta_mappings_pruned: Counter::new("exchange.delta_mappings_pruned"),
    delta_mappings_reevaluated: Counter::new("exchange.delta_mappings_reevaluated"),
    durable_wal_appends: Counter::new("durable.wal_appends"),
    durable_wal_bytes: Counter::new("durable.wal_bytes"),
    durable_checkpoints: Counter::new("durable.checkpoints"),
    durable_recoveries: Counter::new("durable.recoveries"),
    durable_replayed_deltas: Counter::new("durable.replayed_deltas"),
    durable_io_retries: Counter::new("durable.io_retries"),
    durable_epochs_published: Counter::new("durable.epochs_published"),
    span_duration_ns: Histogram::new(),
};

/// The global counter registry.
pub fn counters() -> &'static Counters {
    &COUNTERS
}

impl Counters {
    fn all(&self) -> [&Counter; 30] {
        [
            &self.tuples_scanned,
            &self.bindings_enumerated,
            &self.hash_probes,
            &self.queries_evaluated,
            &self.rows_inserted,
            &self.rows_merged,
            &self.parallel_workers,
            &self.annotations_written,
            &self.annotations_suppressed,
            &self.meta_tuples_encoded,
            &self.translate_branches,
            &self.xml_annotations_written,
            &self.xml_annotations_suppressed,
            &self.guard_checks,
            &self.guard_trips,
            &self.guard_rollbacks,
            &self.delta_batches,
            &self.delta_edits,
            &self.delta_rows_added,
            &self.delta_rows_removed,
            &self.delta_classes_rebuilt,
            &self.delta_mappings_pruned,
            &self.delta_mappings_reevaluated,
            &self.durable_wal_appends,
            &self.durable_wal_bytes,
            &self.durable_checkpoints,
            &self.durable_recoveries,
            &self.durable_replayed_deltas,
            &self.durable_io_retries,
            &self.durable_epochs_published,
        ]
    }

    /// Current value of every counter, sorted by name so snapshots (and
    /// the JSON they serialize into) are stable across runs.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut values: Vec<(String, u64)> = self
            .all()
            .iter()
            .map(|c| (c.name().to_string(), c.get()))
            .collect();
        values.sort();
        values
    }

    pub(crate) fn reset(&self) {
        for c in self.all() {
            c.reset();
        }
        self.span_duration_ns.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let _guard = crate::test_guard();
        let h = Histogram::new();
        crate::set_enabled(true);
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        h.record(u64::MAX); // clamped to last bucket
        crate::set_enabled(false);
        let snap = h.snapshot();
        assert_eq!(snap[0], 2);
        assert_eq!(snap[1], 2);
        assert_eq!(snap[10], 1);
        assert_eq!(snap[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[test]
    fn bucket_boundaries_pinned() {
        // Zero is absorbed into bucket 0 alongside 1 — no underflow.
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 0);
        // Powers of two start a new bucket; the value just below belongs
        // to the previous one.
        assert_eq!(bucket_for(2), 1);
        assert_eq!(bucket_for(3), 1);
        assert_eq!(bucket_for(4), 2);
        assert_eq!(bucket_for(1023), 9);
        assert_eq!(bucket_for(1024), 10);
        // Top-bucket saturation: 2^37 is the first saturated value, and
        // everything above (through u64::MAX) stays clamped there.
        assert_eq!(bucket_for((1 << 37) - 1), 36);
        assert_eq!(bucket_for(1 << 37), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_for(1 << 50), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_for(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_u64_without_gaps() {
        assert_eq!(bucket_lower(0), 0);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_lower(1), 2);
        assert_eq!(bucket_upper(1), 3);
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1);
            assert_eq!(bucket_for(bucket_lower(i)), i.min(HISTOGRAM_BUCKETS - 1));
        }
        assert_eq!(bucket_upper(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_from_histogram() {
        let _guard = crate::test_guard();
        let h = Histogram::new();
        crate::set_enabled(true);
        for _ in 0..90 {
            h.record(100); // bucket 6: [64, 127]
        }
        for _ in 0..10 {
            h.record(100_000); // bucket 16: [65536, 131071]
        }
        crate::set_enabled(false);
        let p50 = h.percentile(0.50).unwrap();
        let p90 = h.percentile(0.90).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!((bucket_lower(6)..=bucket_upper(6)).contains(&p50));
        assert!((bucket_lower(6)..=bucket_upper(6)).contains(&p90));
        assert!((bucket_lower(16)..=bucket_upper(16)).contains(&p99));
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn percentile_empty_and_edge_quantiles() {
        let _guard = crate::test_guard();
        let h = Histogram::new();
        assert_eq!(h.percentile(0.5), None);
        crate::set_enabled(true);
        h.record(0);
        h.record(u64::MAX);
        crate::set_enabled(false);
        // Bucket 0 and the saturated top bucket report their lower bound.
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(1.0), Some(bucket_lower(HISTOGRAM_BUCKETS - 1)));
        let snap = h.snapshot();
        assert!(snapshot_percentiles(&snap).is_some());
    }
}
