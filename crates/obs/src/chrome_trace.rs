//! Chrome Trace Event Format export of a flight recording.
//!
//! The recorder's ring buffer ([`crate::recorder`]) renders as a JSON
//! document loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`:
//!
//! * span end events become complete (`ph: "X"`) duration events keyed by
//!   `pid`/`tid`, so the parallel-exchange workers render as separate
//!   tracks (an end event carries its own duration, so the interval
//!   survives even when the matching begin was evicted from the ring);
//! * per-mapping exchange windows become `X` events on the recording
//!   thread's track with the mapping's outcome counts as `args`;
//! * counter-registry samples become counter (`ph: "C"`) events, one
//!   series per counter name;
//! * guard trips become instant (`ph: "i"`) events with global scope so
//!   they draw as full-height markers.
//!
//! Timestamps are microseconds (fractional — the format takes doubles)
//! on the recorder's monotonic clock, and the event array is sorted by
//! timestamp, so consumers see a monotonically consistent stream.
//! [`validate`] checks the invariants the acceptance tooling and tests
//! rely on (required keys per phase, non-negative monotonic timestamps)
//! and reports the distinct track count.

use serde_json::{Map, Value};

use crate::recorder::{FlightEvent, FlightKind};

/// The process id used for all events (the recorder is in-process).
pub const PID: u64 = 1;

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

fn base_event(name: &str, ph: &str, ts_ns: u64, tid: u64) -> Map {
    let mut obj = Map::new();
    obj.insert("name", Value::from(name));
    obj.insert("cat", Value::from("dtr"));
    obj.insert("ph", Value::from(ph));
    obj.insert("ts", Value::from(us(ts_ns)));
    obj.insert("pid", Value::from(PID));
    obj.insert("tid", Value::from(tid));
    obj
}

/// Lower a flight recording into Chrome trace events, sorted by
/// timestamp. Span begin events are used only as openers for intervals
/// still in flight when the ring was snapshot; every closed span arrives
/// via its end event (which carries the duration).
pub fn trace_events(events: &[FlightEvent]) -> Vec<Value> {
    let mut out: Vec<(f64, u64, Value)> = Vec::new();
    for e in events {
        match &e.kind {
            FlightKind::SpanBegin { .. } => {
                // The matching end event reconstructs the interval; an
                // unmatched begin (still-open span) has no known duration
                // and is omitted rather than emitted as a dangling "B".
            }
            FlightKind::SpanEnd { name, dur_ns } => {
                let start_ns = e.ts_ns.saturating_sub(*dur_ns);
                let mut obj = base_event(name, "X", start_ns, e.tid);
                obj.insert("dur", Value::from(us(*dur_ns)));
                out.push((us(start_ns), e.seq, Value::Object(obj)));
            }
            FlightKind::CounterSample { values } => {
                for (counter, value) in values {
                    let mut obj = base_event(counter, "C", e.ts_ns, 0);
                    let mut args = Map::new();
                    args.insert("value", Value::from(*value));
                    obj.insert("args", Value::Object(args));
                    out.push((us(e.ts_ns), e.seq, Value::Object(obj)));
                }
            }
            FlightKind::GuardTrip { resource, stage } => {
                let mut obj = base_event(&format!("guard_trip:{resource}"), "i", e.ts_ns, e.tid);
                obj.insert("s", Value::from("g"));
                let mut args = Map::new();
                args.insert("stage", Value::from(stage.as_str()));
                obj.insert("args", Value::Object(args));
                out.push((us(e.ts_ns), e.seq, Value::Object(obj)));
            }
            FlightKind::MappingWindow {
                mapping,
                tuples,
                rows_inserted,
                rows_merged,
                wall_ns,
            } => {
                let start_ns = e.ts_ns.saturating_sub(*wall_ns);
                let mut obj =
                    base_event(&format!("exchange.window:{mapping}"), "X", start_ns, e.tid);
                obj.insert("dur", Value::from(us(*wall_ns)));
                let mut args = Map::new();
                args.insert("mapping", Value::from(mapping.as_str()));
                args.insert("tuples", Value::from(*tuples));
                args.insert("rows_inserted", Value::from(*rows_inserted));
                args.insert("rows_merged", Value::from(*rows_merged));
                obj.insert("args", Value::Object(args));
                out.push((us(start_ns), e.seq, Value::Object(obj)));
            }
        }
    }
    // Sort by timestamp (sequence number breaks ties) so the exported
    // stream is monotonic even though X events reach back to their start.
    out.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    out.into_iter().map(|(_, _, v)| v).collect()
}

/// The full Chrome Trace document for a recording.
pub fn to_chrome_trace(events: &[FlightEvent]) -> Value {
    let mut obj = Map::new();
    obj.insert("traceEvents", Value::Array(trace_events(events)));
    obj.insert("displayTimeUnit", Value::from("ms"));
    Value::Object(obj)
}

/// Export the recorder's current ring buffer as a Chrome Trace document.
pub fn export_current() -> Value {
    to_chrome_trace(&crate::recorder::events())
}

/// What [`validate`] measured about a trace document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Total trace events.
    pub events: u64,
    /// Distinct `tid` values across duration/instant events (counter
    /// events, which live on the synthetic tid 0 track, are excluded).
    pub distinct_tids: u64,
    /// Duration (`X`) events.
    pub duration_events: u64,
    /// Counter (`C`) events.
    pub counter_events: u64,
}

/// Validate a Chrome Trace document against the subset of the format the
/// exporter emits: a `traceEvents` array whose members all carry
/// `name`/`ph`/`ts`/`pid`/`tid`, `X` events additionally a non-negative
/// `dur`, with non-negative timestamps sorted non-decreasingly.
pub fn validate(doc: &Value) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("trace: missing traceEvents array")?;
    let mut summary = TraceSummary {
        events: events.len() as u64,
        ..TraceSummary::default()
    };
    let mut tids: Vec<u64> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        let obj = e
            .as_object()
            .ok_or_else(|| format!("trace: event {i} is not an object"))?;
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if !obj.contains_key(key) {
                return Err(format!("trace: event {i} missing required key '{key}'"));
            }
        }
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("trace: event {i} has non-string ph"))?;
        let ts = obj
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("trace: event {i} has non-numeric ts"))?;
        if ts < 0.0 {
            return Err(format!("trace: event {i} has negative ts {ts}"));
        }
        if ts < last_ts {
            return Err(format!(
                "trace: event {i} breaks timestamp monotonicity ({ts} < {last_ts})"
            ));
        }
        last_ts = ts;
        let tid = obj
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("trace: event {i} has non-integer tid"))?;
        match ph {
            "X" => {
                let dur = obj
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("trace: X event {i} missing numeric dur"))?;
                if dur < 0.0 {
                    return Err(format!("trace: X event {i} has negative dur {dur}"));
                }
                summary.duration_events += 1;
                if !tids.contains(&tid) {
                    tids.push(tid);
                }
            }
            "C" => summary.counter_events += 1,
            "B" | "E" | "i" | "M" => {
                if !tids.contains(&tid) {
                    tids.push(tid);
                }
            }
            other => return Err(format!("trace: event {i} has unknown ph '{other}'")),
        }
    }
    summary.distinct_tids = tids.len() as u64;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{self, FlightEvent, FlightKind};

    fn ev(seq: u64, ts_ns: u64, tid: u64, kind: FlightKind) -> FlightEvent {
        FlightEvent {
            seq,
            ts_ns,
            tid,
            kind,
        }
    }

    #[test]
    fn span_ends_become_duration_events() {
        let events = vec![
            ev(0, 1_000, 1, FlightKind::SpanBegin { name: "query.eval" }),
            ev(
                1,
                5_000,
                1,
                FlightKind::SpanEnd {
                    name: "query.eval",
                    dur_ns: 4_000,
                },
            ),
        ];
        let doc = to_chrome_trace(&events);
        let summary = validate(&doc).unwrap();
        assert_eq!(summary.duration_events, 1);
        let arr = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("ph").unwrap(), &Value::from("X"));
        assert_eq!(arr[0].get("name").unwrap(), &Value::from("query.eval"));
        assert_eq!(arr[0].get("ts").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(arr[0].get("dur").unwrap().as_f64().unwrap(), 4.0);
        assert_eq!(arr[0].get("pid").unwrap().as_u64().unwrap(), PID);
        assert_eq!(arr[0].get("tid").unwrap().as_u64().unwrap(), 1);
    }

    #[test]
    fn parallel_tracks_counters_and_trips_export() {
        let events = vec![
            ev(
                0,
                2_000,
                1,
                FlightKind::SpanEnd {
                    name: "exchange.run_mappings",
                    dur_ns: 2_000,
                },
            ),
            ev(
                1,
                3_000,
                2,
                FlightKind::SpanEnd {
                    name: "query.eval",
                    dur_ns: 1_000,
                },
            ),
            ev(
                2,
                3_500,
                3,
                FlightKind::SpanEnd {
                    name: "query.eval",
                    dur_ns: 1_000,
                },
            ),
            ev(
                3,
                4_000,
                1,
                FlightKind::CounterSample {
                    values: vec![
                        ("exchange.rows_inserted".to_string(), 10),
                        ("exchange.rows_merged".to_string(), 3),
                    ],
                },
            ),
            ev(
                4,
                5_000,
                1,
                FlightKind::GuardTrip {
                    resource: "rows",
                    stage: "exchange.run_mapping".to_string(),
                },
            ),
            ev(
                5,
                6_000,
                1,
                FlightKind::MappingWindow {
                    mapping: "m1".to_string(),
                    tuples: 4,
                    rows_inserted: 3,
                    rows_merged: 1,
                    wall_ns: 2_000,
                },
            ),
        ];
        let doc = to_chrome_trace(&events);
        let summary = validate(&doc).unwrap();
        assert_eq!(summary.events, 7); // 3 X spans + 2 C + 1 i + 1 X window
        assert_eq!(summary.duration_events, 4);
        assert_eq!(summary.counter_events, 2);
        assert!(summary.distinct_tids >= 3);
        // Timestamps in the exported array are non-decreasing.
        let arr = doc.get("traceEvents").unwrap().as_array().unwrap();
        let ts: Vec<f64> = arr
            .iter()
            .map(|e| e.get("ts").unwrap().as_f64().unwrap())
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate(&serde_json::json!({})).is_err());
        assert!(validate(&serde_json::json!({"traceEvents": [{"name": "x"}]})).is_err());
        // Negative duration is rejected.
        let bad = serde_json::json!({"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0.0, "pid": 1, "tid": 1, "dur": -1.0}
        ]});
        assert!(validate(&bad).is_err());
        // Out-of-order timestamps are rejected.
        let unordered = serde_json::json!({"traceEvents": [
            {"name": "a", "ph": "X", "ts": 5.0, "pid": 1, "tid": 1, "dur": 1.0},
            {"name": "b", "ph": "X", "ts": 1.0, "pid": 1, "tid": 1, "dur": 1.0}
        ]});
        assert!(validate(&unordered).is_err());
    }

    #[test]
    fn export_current_round_trips_through_recorder() {
        let _guard = crate::test_guard();
        crate::set_enabled(false);
        recorder::set_enabled(true);
        recorder::reset();
        {
            let _span = crate::span("exchange.run_mappings");
        }
        recorder::set_enabled(false);
        let doc = export_current();
        let summary = validate(&doc).unwrap();
        assert_eq!(summary.duration_events, 1);
        assert!(summary.distinct_tids >= 1);
    }
}
