//! Per-request structured audit log.
//!
//! Where the flight recorder ([`crate::recorder`]) keeps a time-domain
//! window of *events*, the audit log keeps one structured record per
//! *request* — a query evaluation, a data exchange, or a translated MXQL
//! run — carrying the query fingerprint, evaluation statistics, guard
//! outcome, wall latency, and row counts. Records render as JSON lines
//! ([`to_jsonl`]) and can be streamed to an [`AuditSink`] as they are
//! recorded; `dtr_metastore::audit_view` turns the log into a queryable
//! `AuditDb` meta-instance, so the system can answer questions about its
//! own request history in MXQL (the paper's Section 7 move, applied to
//! operations).
//!
//! Gated on `DTR_AUDIT=1` (or [`set_enabled`]) with the same
//! one-relaxed-load discipline as the journal and the flight recorder;
//! bounded by a ring of [`DEFAULT_CAP`] records (`DTR_AUDIT_CAP`
//! overrides).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

use serde_json::{Map, Value};

/// Default ring-buffer capacity (records retained) when `DTR_AUDIT_CAP`
/// is unset. Requests are coarser than events, so the default is smaller
/// than the journal's.
pub const DEFAULT_CAP: usize = 4_096;

/// FNV-1a fingerprint of a request's defining text (the normalized query
/// string, or the sorted mapping-name list of an exchange). Stable across
/// runs so audit logs from different days join on it.
///
/// Collisions are benign here: the fingerprint is a *join label*, never an
/// identity. Each [`AuditRecord`] is identified by its unique `seq`, and
/// carries the full `request` text verbatim, so a consumer grouping by
/// fingerprint can always structurally confirm the match by comparing
/// `request` strings — two colliding requests stay two distinct records
/// (see `forced_fingerprint_collision_keeps_records_distinct`).
pub fn fingerprint(text: &str) -> u64 {
    crate::stats::fnv1a(text.as_bytes())
}

/// One audit record: a completed (or aborted) request.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditRecord {
    /// Global sequence number, assigned by the log.
    pub seq: u64,
    /// Request kind: `"query"` (direct evaluation), `"translate"`
    /// (MXQL→plain translated run), or `"exchange"`.
    pub kind: String,
    /// [`fingerprint`] of the request text, rendered as 16 hex digits.
    /// A cross-run grouping label only — record identity is `seq`, and
    /// `request` holds the exact text for structural confirmation, so a
    /// fingerprint collision can never conflate two records.
    pub fingerprint: String,
    /// The request text itself (query string / mapping list).
    pub request: String,
    /// Result rows produced (target rows materialized for exchanges).
    pub rows: u64,
    /// End-to-end wall latency.
    pub wall_ns: u64,
    /// `"ok"`, `"guard:<resource>"` on a budget trip, or `"error"`.
    pub outcome: String,
    /// Source tuples visited (the query engine's `EvalStats`; zero for
    /// exchanges).
    pub tuples_scanned: u64,
    /// Candidate bindings enumerated.
    pub bindings_enumerated: u64,
    /// Predicate triples tested.
    pub predicate_triples_tested: u64,
    /// Hash-join probes.
    pub hash_probes: u64,
}

impl AuditRecord {
    /// A record with the fingerprint derived from `request`; the `seq`
    /// field is assigned when recorded.
    pub fn new(kind: impl Into<String>, request: impl Into<String>) -> Self {
        let request = request.into();
        AuditRecord {
            seq: 0,
            kind: kind.into(),
            fingerprint: format!("{:016x}", fingerprint(&request)),
            request,
            rows: 0,
            wall_ns: 0,
            outcome: "ok".to_string(),
            tuples_scanned: 0,
            bindings_enumerated: 0,
            predicate_triples_tested: 0,
            hash_probes: 0,
        }
    }

    /// The record as a JSON object (one JSONL line when printed
    /// compactly); inverse of [`AuditRecord::from_json`].
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("seq", Value::from(self.seq));
        obj.insert("kind", Value::from(self.kind.as_str()));
        obj.insert("fingerprint", Value::from(self.fingerprint.as_str()));
        obj.insert("request", Value::from(self.request.as_str()));
        obj.insert("rows", Value::from(self.rows));
        obj.insert("wall_ns", Value::from(self.wall_ns));
        obj.insert("outcome", Value::from(self.outcome.as_str()));
        obj.insert("tuples_scanned", Value::from(self.tuples_scanned));
        obj.insert("bindings_enumerated", Value::from(self.bindings_enumerated));
        obj.insert(
            "predicate_triples_tested",
            Value::from(self.predicate_triples_tested),
        );
        obj.insert("hash_probes", Value::from(self.hash_probes));
        Value::Object(obj)
    }

    /// Parse the structure produced by [`AuditRecord::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let get = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("audit record: missing integer field '{key}'"))
        };
        let get_str = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("audit record: missing string field '{key}'"))
        };
        Ok(AuditRecord {
            seq: get("seq")?,
            kind: get_str("kind")?,
            fingerprint: get_str("fingerprint")?,
            request: get_str("request")?,
            rows: get("rows")?,
            wall_ns: get("wall_ns")?,
            outcome: get_str("outcome")?,
            tuples_scanned: get("tuples_scanned")?,
            bindings_enumerated: get("bindings_enumerated")?,
            predicate_triples_tested: get("predicate_triples_tested")?,
            hash_probes: get("hash_probes")?,
        })
    }

    /// Parse a JSONL document (one record per line, blank lines skipped).
    pub fn from_jsonl(text: &str) -> Result<Vec<Self>, String> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let value: Value = serde_json::from_str(line)
                .map_err(|e| format!("audit jsonl line {}: {e}", i + 1))?;
            out.push(Self::from_json(&value)?);
        }
        Ok(out)
    }

    /// One-line human rendering (used by `.audit`).
    pub fn render(&self) -> String {
        format!(
            "#{:<5} {:<9} fp {} rows {:<6} {:>9} ns  {}  {}",
            self.seq,
            self.kind,
            self.fingerprint,
            self.rows,
            self.wall_ns,
            self.outcome,
            if self.request.len() > 48 {
                format!("{}…", &self.request[..48])
            } else {
                self.request.clone()
            }
        )
    }
}

/// A streaming destination for audit records: each completed record is
/// appended as one compact JSON line the moment it is recorded (the ring
/// buffer keeps the queryable in-memory window independently).
pub trait AuditSink: Send {
    /// Append one JSONL line (no trailing newline included).
    fn append(&mut self, line: &str) -> std::io::Result<()>;
}

/// An [`AuditSink`] appending to a file, flushed per record so a crashed
/// process keeps its audit tail.
pub struct FileSink {
    file: std::fs::File,
}

impl FileSink {
    /// Open (append) or create the file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(FileSink {
            file: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        })
    }
}

impl AuditSink for FileSink {
    fn append(&mut self, line: &str) -> std::io::Result<()> {
        use std::io::Write;
        writeln!(self.file, "{line}")?;
        self.file.flush()
    }
}

/// An in-memory [`AuditSink`] sharing its lines through an
/// `Arc<Mutex<Vec<String>>>` (test and REPL use).
pub struct VecSink(pub std::sync::Arc<Mutex<Vec<String>>>);

impl AuditSink for VecSink {
    fn append(&mut self, line: &str) -> std::io::Result<()> {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(line.to_string());
        Ok(())
    }
}

// ---- The gate (mirrors the journal gate). ----

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Is audit logging enabled? First call consults `DTR_AUDIT` (values `1`,
/// `true`, `on`, case-insensitive); afterwards a single relaxed atomic
/// load. Call sites must gate record construction on this.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("DTR_AUDIT")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Force audit logging on or off, overriding `DTR_AUDIT`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---- The ring buffer + sink. ----

struct Log {
    cap: usize,
    buf: VecDeque<AuditRecord>,
    next_seq: u64,
    dropped: u64,
    sink: Option<Box<dyn AuditSink>>,
}

impl Log {
    fn new(cap: usize) -> Self {
        Log {
            cap: cap.max(1),
            buf: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
            sink: None,
        }
    }

    fn record(&mut self, mut record: AuditRecord) -> u64 {
        if self.buf.len() >= self.cap && self.buf.pop_front().is_some() {
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        record.seq = seq;
        if let Some(sink) = &mut self.sink {
            // A failing sink must not fail the request it audits; the
            // error is reported once by dropping the sink.
            if sink.append(&record.to_json().to_string()).is_err() {
                self.sink = None;
            }
        }
        self.buf.push_back(record);
        seq
    }
}

fn cap_from_env() -> usize {
    std::env::var("DTR_AUDIT_CAP")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_CAP)
}

fn with_log<R>(f: impl FnOnce(&mut Log) -> R) -> R {
    static LOG: Mutex<Option<Log>> = Mutex::new(None);
    let mut guard = LOG.lock().unwrap_or_else(|p| p.into_inner());
    let log = guard.get_or_insert_with(|| Log::new(cap_from_env()));
    f(log)
}

// ---- Public recording / query API. ----

/// Record one request (the `seq` field is assigned by the log). A no-op
/// returning 0 while disabled — callers should check [`enabled`] before
/// building the record.
pub fn record(record: AuditRecord) -> u64 {
    if !enabled() {
        return 0;
    }
    with_log(|l| l.record(record))
}

/// Clear all records and restart the sequence (capacity re-read from
/// `DTR_AUDIT_CAP`); any attached sink is kept.
pub fn reset() {
    with_log(|l| {
        let sink = l.sink.take();
        *l = Log::new(cap_from_env());
        l.sink = sink;
    });
}

/// Attach (or with `None` detach) the streaming sink.
pub fn set_sink(sink: Option<Box<dyn AuditSink>>) {
    with_log(|l| l.sink = sink);
}

/// All retained records, oldest first.
pub fn records() -> Vec<AuditRecord> {
    with_log(|l| l.buf.iter().cloned().collect())
}

/// `(recorded, retained, dropped, cap)` counts for status displays.
pub fn counts() -> (u64, u64, u64, u64) {
    with_log(|l| (l.next_seq, l.buf.len() as u64, l.dropped, l.cap as u64))
}

/// Every retained record as one compact JSON line (the exportable form;
/// inverse of [`AuditRecord::from_jsonl`]).
pub fn to_jsonl() -> String {
    let mut out = String::new();
    for r in records() {
        out.push_str(&r.to_json().to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        crate::test_guard()
    }

    #[test]
    fn disabled_audit_records_nothing() {
        let _guard = guard();
        set_enabled(false);
        reset();
        record(AuditRecord::new("query", "select x from S x"));
        assert!(records().is_empty());
        let (recorded, retained, dropped, _cap) = counts();
        assert_eq!((recorded, retained, dropped), (0, 0, 0));
        assert!(to_jsonl().is_empty());
    }

    #[test]
    fn ring_bound_and_jsonl_round_trip() {
        let _guard = guard();
        set_enabled(true);
        reset();
        for i in 0..6u64 {
            let mut r = AuditRecord::new("query", format!("select q{i} from S x"));
            r.rows = i;
            r.wall_ns = 100 * (i + 1);
            record(r);
        }
        set_enabled(false);
        let all = records();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].seq, 0);
        assert_eq!(all[5].seq, 5);
        let parsed = AuditRecord::from_jsonl(&to_jsonl()).unwrap();
        assert_eq!(parsed, all);
    }

    #[test]
    fn forced_fingerprint_collision_keeps_records_distinct() {
        let _guard = guard();
        set_enabled(true);
        reset();
        // Force two different requests onto the same fingerprint: the log
        // must keep both as separate records (identity is `seq`), each
        // with its own request text for structural confirmation.
        let mut a = AuditRecord::new("query", "select x from S x");
        let mut b = AuditRecord::new("query", "select y from T y");
        a.fingerprint = "00000000deadbeef".to_string();
        b.fingerprint = "00000000deadbeef".to_string();
        record(a);
        record(b);
        set_enabled(false);
        let all = records();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].fingerprint, all[1].fingerprint);
        assert_ne!(all[0].seq, all[1].seq);
        assert_ne!(all[0].request, all[1].request);
        assert_eq!(all[0].request, "select x from S x");
        assert_eq!(all[1].request, "select y from T y");
    }

    #[test]
    fn eviction_keeps_newest() {
        let _guard = guard();
        set_enabled(true);
        reset();
        with_log(|l| l.cap = 3);
        for i in 0..5u64 {
            record(AuditRecord::new("query", format!("q{i}")));
        }
        set_enabled(false);
        let all = records();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].seq, 2);
        let (recorded, retained, dropped, _) = counts();
        assert_eq!((recorded, retained, dropped), (5, 3, 2));
    }

    #[test]
    fn sink_streams_every_record() {
        let _guard = guard();
        set_enabled(true);
        reset();
        let lines = std::sync::Arc::new(Mutex::new(Vec::new()));
        set_sink(Some(Box::new(VecSink(lines.clone()))));
        record(AuditRecord::new("exchange", "m1,m2,m3"));
        let mut r = AuditRecord::new("query", "select x from S x");
        r.outcome = "guard:rows".to_string();
        record(r);
        set_sink(None);
        set_enabled(false);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 2);
        let first = AuditRecord::from_jsonl(&lines[0]).unwrap();
        assert_eq!(first[0].kind, "exchange");
        let second = AuditRecord::from_jsonl(&lines[1]).unwrap();
        assert_eq!(second[0].outcome, "guard:rows");
    }

    #[test]
    fn fingerprints_are_stable_hex() {
        let a = AuditRecord::new("query", "select x from S x");
        let b = AuditRecord::new("query", "select x from S x");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.fingerprint.len(), 16);
        assert_ne!(
            a.fingerprint,
            AuditRecord::new("query", "select y from S y").fingerprint
        );
    }
}
