//! Baseline drift detection: is today's run anomalous?
//!
//! A [`HealthSnapshot`] captures the observable shape of a run — the
//! counter registry, the [`StatsCatalog`] footprint,
//! and the span-latency percentiles — and [`compare`] diffs a live
//! snapshot against a committed baseline with warn/fail thresholds,
//! producing a machine-readable [`HealthReport`]. The `experiments
//! health` mode wraps this into a `dtr-doctor`-style CLI: exit 0 when the
//! run matches the baseline, nonzero on drift past the fail threshold.
//!
//! The threshold arithmetic ([`delta_pct`] / [`past_threshold`]) is the
//! same relative-delta rule `bench_diff` applies to bench reports, shared
//! here so "regressed" means one thing across the tooling.
//!
//! Work counters (rows, bindings, probes) are deterministic for a fixed
//! workload, so they check against tight thresholds; wall-clock latency
//! percentiles vary by machine and are capped at **warn** severity —
//! drift detection must not turn CI red because a runner was slow.

use serde_json::{Map, Value};

use crate::stats::StatsCatalog;

/// Relative delta in percent, the `bench_diff` rule: positive means the
/// live value is larger. A zero baseline with a nonzero live value
/// reports 100 % per unit (so `0 → 3` is 300 %), keeping the value finite
/// and JSON-serializable.
pub fn delta_pct(base: f64, live: f64) -> f64 {
    if base == 0.0 {
        if live == 0.0 {
            0.0
        } else {
            100.0 * live
        }
    } else {
        100.0 * (live - base) / base
    }
}

/// Has an absolute delta crossed a threshold? (Drift counts in both
/// directions: doing *less* work than the baseline is as anomalous as
/// doing more.)
pub fn past_threshold(delta_pct: f64, threshold_pct: f64) -> bool {
    delta_pct.abs() > threshold_pct
}

/// Counters excluded from snapshots: their values depend on machine
/// shape (core count), not on the workload.
pub const VOLATILE_COUNTERS: &[&str] = &["exchange.parallel_workers"];

/// The observable shape of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthSnapshot {
    /// `(name, value)` for every non-volatile registry counter, sorted.
    pub counters: Vec<(String, u64)>,
    /// Paths tracked by the statistics catalog.
    pub stats_paths: u64,
    /// Join keys tracked by the statistics catalog.
    pub stats_joins: u64,
    /// Total tuples observed across all tracked paths.
    pub stats_tuples: u64,
    /// Span-latency percentiles `(p50, p90, p99)` in nanoseconds, when
    /// any span was recorded.
    pub latency_ns: Option<(u64, u64, u64)>,
}

impl HealthSnapshot {
    /// Capture the current process state: the counter registry (minus
    /// [`VOLATILE_COUNTERS`]), the given statistics catalog, and the
    /// span-duration histogram percentiles.
    pub fn capture(stats: &StatsCatalog) -> Self {
        let counters = crate::counters()
            .snapshot()
            .into_iter()
            .filter(|(name, _)| !VOLATILE_COUNTERS.contains(&name.as_str()))
            .collect();
        let snap = crate::counters().span_duration_ns.snapshot();
        HealthSnapshot {
            counters,
            stats_paths: stats.paths.len() as u64,
            stats_joins: stats.joins.len() as u64,
            stats_tuples: stats.paths.values().map(|p| p.tuples).sum(),
            latency_ns: crate::snapshot_percentiles(&snap),
        }
    }

    /// Structured JSON form (inverse of [`HealthSnapshot::from_json`]).
    pub fn to_json(&self) -> Value {
        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), Value::from(*v));
        }
        let mut stats = Map::new();
        stats.insert("paths", Value::from(self.stats_paths));
        stats.insert("joins", Value::from(self.stats_joins));
        stats.insert("tuples", Value::from(self.stats_tuples));
        let mut obj = Map::new();
        obj.insert("counters", Value::Object(counters));
        obj.insert("stats", Value::Object(stats));
        if let Some((p50, p90, p99)) = self.latency_ns {
            let mut lat = Map::new();
            lat.insert("p50", Value::from(p50));
            lat.insert("p90", Value::from(p90));
            lat.insert("p99", Value::from(p99));
            obj.insert("latency_ns", Value::Object(lat));
        }
        Value::Object(obj)
    }

    /// Parse the structure produced by [`HealthSnapshot::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let counters_obj = value
            .get("counters")
            .and_then(Value::as_object)
            .ok_or("health snapshot: missing counters object")?;
        let mut counters = Vec::new();
        for (k, v) in counters_obj.iter() {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("health snapshot: counter '{k}' is not an integer"))?;
            counters.push((k.clone(), v));
        }
        counters.sort();
        let stats = value
            .get("stats")
            .and_then(Value::as_object)
            .ok_or("health snapshot: missing stats object")?;
        let stat = |key: &str| -> Result<u64, String> {
            stats
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("health snapshot: missing stats field '{key}'"))
        };
        let latency_ns = match value.get("latency_ns") {
            Some(lat) => {
                let get = |key: &str| -> Result<u64, String> {
                    lat.get(key)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("health snapshot: missing latency field '{key}'"))
                };
                Some((get("p50")?, get("p90")?, get("p99")?))
            }
            None => None,
        };
        Ok(HealthSnapshot {
            counters,
            stats_paths: stat("paths")?,
            stats_joins: stat("joins")?,
            stats_tuples: stat("tuples")?,
            latency_ns,
        })
    }
}

/// Severity of one check (ordered: `Ok < Warn < Fail`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// Within the warn threshold.
    #[default]
    Ok,
    /// Past the warn threshold (or any drift on a warn-only metric).
    Warn,
    /// Past the fail threshold on a deterministic metric.
    Fail,
}

impl Status {
    /// Stable lowercase tag used in the JSON report.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Warn => "warn",
            Status::Fail => "fail",
        }
    }
}

/// One compared metric.
#[derive(Clone, Debug, PartialEq)]
pub struct HealthCheck {
    /// Metric name (counter name, `stats.paths`, `latency_ns.p99`, ...).
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Live value.
    pub live: f64,
    /// [`delta_pct`] of the two.
    pub delta_pct: f64,
    /// Check outcome.
    pub status: Status,
}

/// The full drift report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// Every compared metric, report order (counters, stats, latency).
    pub checks: Vec<HealthCheck>,
    /// Worst check status.
    pub status: Status,
    /// Warn threshold applied (percent).
    pub warn_pct: f64,
    /// Fail threshold applied (percent).
    pub fail_pct: f64,
}

impl HealthReport {
    /// Machine-readable JSON form.
    pub fn to_json(&self) -> Value {
        let mut checks = Vec::new();
        for c in &self.checks {
            let mut obj = Map::new();
            obj.insert("name", Value::from(c.name.as_str()));
            obj.insert("baseline", Value::from(c.baseline));
            obj.insert("live", Value::from(c.live));
            obj.insert("delta_pct", Value::from(c.delta_pct));
            obj.insert("status", Value::from(c.status.name()));
            checks.push(Value::Object(obj));
        }
        let mut obj = Map::new();
        obj.insert("status", Value::from(self.status.name()));
        obj.insert("warn_pct", Value::from(self.warn_pct));
        obj.insert("fail_pct", Value::from(self.fail_pct));
        obj.insert("checks", Value::Array(checks));
        Value::Object(obj)
    }

    /// Human rendering: one line per non-ok check plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut shown = 0;
        for c in &self.checks {
            if c.status != Status::Ok {
                out.push_str(&format!(
                    "  {:<5} {:<32} {:>12.0} -> {:>12.0}  ({:+.1} %)\n",
                    c.status.name(),
                    c.name,
                    c.baseline,
                    c.live,
                    c.delta_pct
                ));
                shown += 1;
            }
        }
        out.push_str(&format!(
            "health: {} — {} check(s), {} drifted (warn > {:.1} %, fail > {:.1} %)",
            self.status.name(),
            self.checks.len(),
            shown,
            self.warn_pct,
            self.fail_pct
        ));
        out
    }
}

/// Drift thresholds.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Deltas past this mark a check `Warn`.
    pub warn_pct: f64,
    /// Deltas past this mark a deterministic check `Fail`.
    pub fail_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            warn_pct: 5.0,
            fail_pct: 25.0,
        }
    }
}

fn classify(delta: f64, t: &Thresholds, warn_only: bool) -> Status {
    if past_threshold(delta, t.fail_pct) && !warn_only {
        Status::Fail
    } else if past_threshold(delta, t.warn_pct) {
        Status::Warn
    } else {
        Status::Ok
    }
}

/// Compare a live snapshot against a baseline. Counter and statistics
/// checks can fail; latency checks are warn-only (see module docs).
pub fn compare(baseline: &HealthSnapshot, live: &HealthSnapshot, t: &Thresholds) -> HealthReport {
    let mut checks = Vec::new();
    let mut push = |name: String, base: f64, live: f64, warn_only: bool| {
        let delta = delta_pct(base, live);
        checks.push(HealthCheck {
            name,
            baseline: base,
            live,
            delta_pct: delta,
            status: classify(delta, t, warn_only),
        });
    };
    // Union of counter names: a counter missing on one side reads as 0,
    // so newly added (or vanished) activity shows up as drift.
    let mut names: Vec<&String> = baseline
        .counters
        .iter()
        .chain(live.counters.iter())
        .map(|(k, _)| k)
        .collect();
    names.sort();
    names.dedup();
    let value = |snap: &HealthSnapshot, name: &str| -> f64 {
        snap.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v as f64)
            .unwrap_or(0.0)
    };
    for name in names {
        push(
            name.clone(),
            value(baseline, name),
            value(live, name),
            false,
        );
    }
    push(
        "stats.paths".into(),
        baseline.stats_paths as f64,
        live.stats_paths as f64,
        false,
    );
    push(
        "stats.joins".into(),
        baseline.stats_joins as f64,
        live.stats_joins as f64,
        false,
    );
    push(
        "stats.tuples".into(),
        baseline.stats_tuples as f64,
        live.stats_tuples as f64,
        false,
    );
    if let (Some(b), Some(l)) = (baseline.latency_ns, live.latency_ns) {
        push("latency_ns.p50".into(), b.0 as f64, l.0 as f64, true);
        push("latency_ns.p90".into(), b.1 as f64, l.1 as f64, true);
        push("latency_ns.p99".into(), b.2 as f64, l.2 as f64, true);
    }
    let status = checks.iter().map(|c| c.status).max().unwrap_or(Status::Ok);
    HealthReport {
        checks,
        status,
        warn_pct: t.warn_pct,
        fail_pct: t.fail_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rows: u64, tuples: u64, p99: u64) -> HealthSnapshot {
        HealthSnapshot {
            counters: vec![
                ("eval.tuples_scanned".to_string(), tuples),
                ("exchange.rows_inserted".to_string(), rows),
            ],
            stats_paths: 4,
            stats_joins: 2,
            stats_tuples: tuples,
            latency_ns: Some((100, 500, p99)),
        }
    }

    #[test]
    fn identical_snapshots_are_ok() {
        let base = snap(100, 1000, 900);
        let report = compare(&base, &base.clone(), &Thresholds::default());
        assert_eq!(report.status, Status::Ok);
        assert!(report.checks.iter().all(|c| c.status == Status::Ok));
        assert!(report.checks.len() >= 8);
    }

    #[test]
    fn counter_drift_fails_latency_only_warns() {
        let base = snap(100, 1000, 900);
        // 3x the rows: way past the default 25 % fail threshold.
        let live = snap(300, 1000, 900);
        let report = compare(&base, &live, &Thresholds::default());
        assert_eq!(report.status, Status::Fail);
        let rows = report
            .checks
            .iter()
            .find(|c| c.name == "exchange.rows_inserted")
            .unwrap();
        assert_eq!(rows.status, Status::Fail);
        assert!((rows.delta_pct - 200.0).abs() < 1e-9);

        // 10x p99 latency: still only a warning.
        let slow = snap(100, 1000, 9000);
        let report = compare(&base, &slow, &Thresholds::default());
        assert_eq!(report.status, Status::Warn);
        let p99 = report
            .checks
            .iter()
            .find(|c| c.name == "latency_ns.p99")
            .unwrap();
        assert_eq!(p99.status, Status::Warn);
    }

    #[test]
    fn drift_counts_in_both_directions() {
        let base = snap(100, 1000, 900);
        let live = snap(10, 1000, 900); // 90 % fewer rows
        let report = compare(&base, &live, &Thresholds::default());
        assert_eq!(report.status, Status::Fail);
    }

    #[test]
    fn missing_counter_reads_as_zero_drift() {
        let base = snap(100, 1000, 900);
        let mut live = snap(100, 1000, 900);
        live.counters.push(("guard.trips".to_string(), 7));
        live.counters.sort();
        let report = compare(&base, &live, &Thresholds::default());
        let trips = report
            .checks
            .iter()
            .find(|c| c.name == "guard.trips")
            .unwrap();
        assert_eq!(trips.baseline, 0.0);
        assert_eq!(trips.status, Status::Fail);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let s = snap(42, 4242, 999);
        let round = HealthSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(round, s);
        assert!(HealthSnapshot::from_json(&serde_json::json!({})).is_err());
        // No latency section parses as None.
        let mut no_lat = s.clone();
        no_lat.latency_ns = None;
        let round = HealthSnapshot::from_json(&no_lat.to_json()).unwrap();
        assert_eq!(round.latency_ns, None);
    }

    #[test]
    fn delta_rule_matches_bench_diff() {
        assert_eq!(delta_pct(100.0, 110.0), 10.0);
        assert_eq!(delta_pct(100.0, 90.0), -10.0);
        assert_eq!(delta_pct(0.0, 0.0), 0.0);
        assert_eq!(delta_pct(0.0, 3.0), 300.0);
        assert!(past_threshold(10.1, 10.0));
        assert!(past_threshold(-10.1, 10.0));
        assert!(!past_threshold(10.0, 10.0));
    }

    #[test]
    fn capture_excludes_volatile_counters() {
        let _guard = crate::test_guard();
        crate::set_enabled(true);
        crate::profile_reset();
        crate::counters().parallel_workers.add(8);
        crate::counters().rows_inserted.add(3);
        crate::set_enabled(false);
        let snap = HealthSnapshot::capture(&StatsCatalog::new());
        assert!(snap
            .counters
            .iter()
            .all(|(k, _)| k != "exchange.parallel_workers"));
        assert!(snap
            .counters
            .iter()
            .any(|(k, v)| k == "exchange.rows_inserted" && *v == 3));
    }

    #[test]
    fn report_json_is_machine_readable() {
        let base = snap(100, 1000, 900);
        let live = snap(130, 1000, 900);
        let report = compare(&base, &live, &Thresholds::default());
        let json = report.to_json();
        assert_eq!(json.get("status").unwrap(), &Value::from("fail"));
        let checks = json.get("checks").unwrap().as_array().unwrap();
        assert!(checks.iter().any(|c| c.get("name")
            == Some(&Value::from("exchange.rows_inserted"))
            && c.get("status") == Some(&Value::from("fail"))));
        assert!(report.render().contains("health: fail"));
    }
}
