//! [`PipelineProfile`]: the exported, plain-data form of a profiling run —
//! the aggregated span tree plus the counter registry (and, when the event
//! journal is on, its summary) — with an EXPLAIN-style text rendering and
//! lossless JSON round-tripping. Counter and span-field keys are sorted
//! before serialization so `--json` output diffs are stable across runs.

use crate::analyze::OpNode;
use crate::guard::GuardReport;
use crate::journal::Summary as JournalSummary;
use serde_json::{Map, Value};

/// One aggregated span in the profile tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileNode {
    /// Stage name, e.g. `"exchange.run_mapping"`.
    pub name: String,
    /// How many times this span executed at this tree position.
    pub count: u64,
    /// Total wall time across all executions.
    pub total_ns: u64,
    /// Fastest single execution.
    pub min_ns: u64,
    /// Slowest single execution.
    pub max_ns: u64,
    /// Key fields (last write wins), e.g. `("mapping", "m5")`.
    pub fields: Vec<(String, String)>,
    /// Nested stages.
    pub children: Vec<ProfileNode>,
}

/// A named counter reading.
pub type CounterValue = (String, u64);

/// A complete profile: per-stage wall-time tree plus pipeline counters,
/// plus the event-journal summary when journaling is enabled and the most
/// recent guard trip when a budget was exhausted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineProfile {
    pub stages: Vec<ProfileNode>,
    pub counters: Vec<CounterValue>,
    pub journal: Option<JournalSummary>,
    pub guard: Option<GuardReport>,
    /// The most recent EXPLAIN ANALYZE operator tree, when an
    /// `eval_analyzed` run completed since the last reset.
    pub analyze: Option<OpNode>,
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl ProfileNode {
    fn render_into(&self, out: &mut String, prefix: &str, last: bool) {
        let branch = if last { "└─ " } else { "├─ " };
        let mut line = format!("{prefix}{branch}{:<32}", self.name);
        line.push_str(&format!(
            " {:>8} call{} {:>12}",
            self.count,
            if self.count == 1 { " " } else { "s" },
            fmt_ns(self.total_ns),
        ));
        if self.count > 1 {
            line.push_str(&format!(
                "  (min {}, max {})",
                fmt_ns(self.min_ns),
                fmt_ns(self.max_ns)
            ));
        }
        if !self.fields.is_empty() {
            let fields: Vec<String> = self
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            line.push_str(&format!("  {{{}}}", fields.join(", ")));
        }
        out.push_str(&line);
        out.push('\n');
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, &child_prefix, i + 1 == self.children.len());
        }
    }

    fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("name", Value::from(self.name.as_str()));
        obj.insert("count", Value::from(self.count));
        obj.insert("total_ns", Value::from(self.total_ns));
        obj.insert("min_ns", Value::from(self.min_ns));
        obj.insert("max_ns", Value::from(self.max_ns));
        if !self.fields.is_empty() {
            let mut sorted: Vec<&(String, String)> = self.fields.iter().collect();
            sorted.sort();
            let mut fields = Map::new();
            for (k, v) in sorted {
                fields.insert(k.clone(), Value::from(v.as_str()));
            }
            obj.insert("fields", Value::Object(fields));
        }
        if !self.children.is_empty() {
            obj.insert(
                "children",
                Value::Array(self.children.iter().map(ProfileNode::to_json).collect()),
            );
        }
        Value::Object(obj)
    }

    fn from_json(value: &Value) -> Result<Self, String> {
        let get_u64 = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("profile node: missing integer field '{key}'"))
        };
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or("profile node: missing 'name'")?
            .to_string();
        let mut fields = Vec::new();
        if let Some(obj) = value.get("fields").and_then(Value::as_object) {
            for (k, v) in obj.iter() {
                let v = v.as_str().ok_or("profile node: field values are strings")?;
                fields.push((k.clone(), v.to_string()));
            }
        }
        fields.sort();
        let mut children = Vec::new();
        if let Some(items) = value.get("children").and_then(Value::as_array) {
            for item in items {
                children.push(ProfileNode::from_json(item)?);
            }
        }
        Ok(ProfileNode {
            name,
            count: get_u64("count")?,
            total_ns: get_u64("total_ns")?,
            min_ns: get_u64("min_ns")?,
            max_ns: get_u64("max_ns")?,
            fields,
            children,
        })
    }
}

impl PipelineProfile {
    /// Look up a counter by registry name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Total wall time of a top-level stage (summed over same-named roots).
    pub fn stage_total_ns(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.total_ns)
            .sum()
    }

    /// EXPLAIN-style human-readable rendering: the stage tree with call
    /// counts and wall times, followed by the counter table.
    pub fn render(&self) -> String {
        let mut out = String::from("PIPELINE PROFILE\n");
        if self.stages.is_empty() {
            out.push_str("└─ (no spans recorded — is profiling enabled?)\n");
        }
        for (i, stage) in self.stages.iter().enumerate() {
            stage.render_into(&mut out, "", i + 1 == self.stages.len());
        }
        out.push_str("counters:\n");
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<width$} {value:>12}\n"));
        }
        if let Some(j) = &self.journal {
            out.push_str(&format!(
                "journal: {} recorded, {} retained, {} dropped (cap {})\n",
                j.recorded, j.retained, j.dropped, j.cap
            ));
            // Prefer the recorded (eviction-proof) tally; fall back to the
            // retained view for pre-stats profiles.
            let outcomes = if j.recorded_by_outcome.is_empty() {
                &j.by_outcome
            } else {
                &j.recorded_by_outcome
            };
            for (kind, count) in outcomes {
                out.push_str(&format!("  {kind:<width$} {count:>12}\n"));
            }
        }
        if let Some(g) = &self.guard {
            out.push_str(&format!(
                "guard: {} tripped at {} (limit {}) after {} bindings, {} rows, {} bytes\n",
                g.resource, g.stage, g.limit, g.bindings, g.rows, g.bytes
            ));
        }
        if let Some(plan) = &self.analyze {
            out.push_str(&plan.render());
        }
        out
    }

    /// Structured JSON form (see [`PipelineProfile::from_json`] for the
    /// inverse). Counter keys are emitted in sorted order so the output is
    /// byte-stable across runs.
    pub fn to_json(&self) -> Value {
        let mut sorted: Vec<&CounterValue> = self.counters.iter().collect();
        sorted.sort();
        let mut counters = Map::new();
        for (name, value) in sorted {
            counters.insert(name.clone(), Value::from(*value));
        }
        let mut obj = Map::new();
        obj.insert(
            "stages",
            Value::Array(self.stages.iter().map(ProfileNode::to_json).collect()),
        );
        obj.insert("counters", Value::Object(counters));
        if let Some(journal) = &self.journal {
            obj.insert("journal", journal.to_json());
        }
        if let Some(guard) = &self.guard {
            obj.insert("guard", guard.to_json());
        }
        if let Some(plan) = &self.analyze {
            obj.insert("analyze", plan.to_json());
        }
        Value::Object(obj)
    }

    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parse the structure produced by [`PipelineProfile::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let mut stages = Vec::new();
        if let Some(items) = value.get("stages").and_then(Value::as_array) {
            for item in items {
                stages.push(ProfileNode::from_json(item)?);
            }
        } else {
            return Err("profile: missing 'stages' array".to_string());
        }
        let mut counters = Vec::new();
        let obj = value
            .get("counters")
            .and_then(Value::as_object)
            .ok_or("profile: missing 'counters' object")?;
        for (name, v) in obj.iter() {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("profile: counter '{name}' is not an integer"))?;
            counters.push((name.clone(), v));
        }
        counters.sort();
        let journal = match value.get("journal") {
            Some(j) => Some(JournalSummary::from_json(j)?),
            None => None,
        };
        let guard = match value.get("guard") {
            Some(g) => Some(GuardReport::from_json(g)?),
            None => None,
        };
        let analyze = match value.get("analyze") {
            Some(a) => Some(OpNode::from_json(a)?),
            None => None,
        };
        Ok(PipelineProfile {
            stages,
            counters,
            journal,
            guard,
            analyze,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn sample() -> PipelineProfile {
        PipelineProfile {
            stages: vec![ProfileNode {
                name: "exchange.run_mapping".into(),
                count: 5,
                total_ns: 1_234_567,
                min_ns: 100_000,
                max_ns: 400_000,
                fields: vec![("mapping".into(), "m5".into())],
                children: vec![
                    ProfileNode {
                        name: "query.eval".into(),
                        count: 5,
                        total_ns: 800_000,
                        min_ns: 90_000,
                        max_ns: 300_000,
                        fields: vec![],
                        children: vec![],
                    },
                    ProfileNode {
                        name: "exchange.insert_row".into(),
                        count: 240,
                        total_ns: 300_000,
                        min_ns: 500,
                        max_ns: 9_000,
                        fields: vec![],
                        children: vec![],
                    },
                ],
            }],
            counters: vec![
                ("eval.tuples_scanned".into(), 4_200),
                ("exchange.rows_inserted".into(), 200),
                ("exchange.rows_merged".into(), 40),
            ],
            journal: None,
            guard: None,
            analyze: None,
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let profile = sample();
        let text = serde_json::to_string_pretty(&profile.to_json()).unwrap();
        let parsed = serde_json::from_str(&text).unwrap();
        assert_eq!(PipelineProfile::from_json(&parsed).unwrap(), profile);
    }

    #[test]
    fn json_round_trip_keeps_journal_summary() {
        let mut profile = sample();
        profile.journal = Some(JournalSummary {
            recorded: 12,
            retained: 12,
            dropped: 0,
            cap: 65_536,
            by_outcome: vec![("inserted".to_string(), 8), ("pnf_merged".to_string(), 4)],
            recorded_by_outcome: vec![("inserted".to_string(), 8), ("pnf_merged".to_string(), 4)],
        });
        let text = profile.to_json_string();
        let parsed = serde_json::from_str(&text).unwrap();
        assert_eq!(PipelineProfile::from_json(&parsed).unwrap(), profile);
        let rendered = profile.render();
        assert!(rendered.contains("journal: 12 recorded"));
        assert!(rendered.contains("pnf_merged"));
    }

    #[test]
    fn json_round_trip_keeps_guard_report() {
        let mut profile = sample();
        profile.guard = Some(GuardReport {
            resource: "rows".to_string(),
            stage: "exchange.insert_row".to_string(),
            limit: 100,
            bindings: 240,
            rows: 101,
            bytes: 9_000,
        });
        let text = profile.to_json_string();
        let parsed = serde_json::from_str(&text).unwrap();
        assert_eq!(PipelineProfile::from_json(&parsed).unwrap(), profile);
        let rendered = profile.render();
        assert!(rendered.contains("guard: rows tripped at exchange.insert_row"));
    }

    #[test]
    fn json_round_trip_keeps_analyze_plan() {
        let mut profile = sample();
        profile.analyze = Some(OpNode {
            op: "project".into(),
            label: "2 cols".into(),
            rows_in: 7,
            rows_out: 7,
            elapsed_ns: 1_000,
            guard_charges: 7,
            children: vec![OpNode::new("scan", "$x: db:/r")],
        });
        let text = profile.to_json_string();
        let parsed = serde_json::from_str(&text).unwrap();
        assert_eq!(PipelineProfile::from_json(&parsed).unwrap(), profile);
        let rendered = profile.render();
        assert!(rendered.contains("EXPLAIN ANALYZE"));
        assert!(rendered.contains("rows 7 → 7"));
    }

    #[test]
    fn json_counters_and_fields_serialize_sorted() {
        let profile = PipelineProfile {
            stages: vec![ProfileNode {
                name: "s".into(),
                count: 1,
                total_ns: 1,
                min_ns: 1,
                max_ns: 1,
                fields: vec![("zeta".into(), "1".into()), ("alpha".into(), "2".into())],
                children: vec![],
            }],
            counters: vec![("z.last".into(), 1), ("a.first".into(), 2)],
            journal: None,
            guard: None,
            analyze: None,
        };
        let text = profile.to_json_string();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
    }

    #[test]
    fn render_shows_tree_and_counters() {
        let text = sample().render();
        assert!(text.contains("PIPELINE PROFILE"));
        assert!(text.contains("├─ query.eval"));
        assert!(text.contains("└─ exchange.insert_row"));
        assert!(text.contains("240 calls"));
        assert!(text.contains("eval.tuples_scanned"));
        assert!(text.contains("4200"));
        assert!(text.contains("{mapping=m5}"));
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(PipelineProfile::from_json(&json!({})).is_err());
        assert!(
            PipelineProfile::from_json(&json!({"stages": [], "counters": {"x": "nan"}})).is_err()
        );
        assert!(
            PipelineProfile::from_json(&json!({"stages": [{"count": 1}], "counters": {}})).is_err()
        );
    }
}
