//! The statistics catalog: per-schema-path cardinalities, distinct-value
//! estimates, equality-join selectivities and set-cardinality histograms,
//! collected during exchange and query runs.
//!
//! Statistics follow the paper's §7 stance that transformations are data:
//! the catalog is serializable to sorted-key JSON, mergeable across runs,
//! and encodable into the metastore as a queryable meta-instance
//! (`dtr_metastore::stats_view`), so MXQL can query the engine's own
//! runtime behavior.
//!
//! Collection is gated separately from profiling: `DTR_STATS=1` or
//! [`set_enabled`]. Disabled cost is one relaxed atomic load per call
//! site. Distinct values are counted exactly below a threshold and spill
//! to an HLL-style register sketch above it, so a path with millions of
//! values costs O(registers), not O(values), in memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

use serde_json::{json, Map, Value};

use crate::metrics::{bucket_for, bucket_lower, HISTOGRAM_BUCKETS};

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Is statistics collection enabled? First call consults `DTR_STATS`
/// (values `1`, `true`, `on`, case-insensitive); afterwards a single
/// relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("DTR_STATS")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Force statistics collection on or off, overriding `DTR_STATS`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Exact distinct counting below this many values; HLL sketch above.
const EXACT_THRESHOLD: usize = 512;
/// Number of HLL registers (2^8): relative error ≈ 1.04/√256 ≈ 6.5%.
const HLL_REGISTERS: usize = 256;
const HLL_INDEX_BITS: u32 = 8;

/// FNV-1a 64-bit hash — the deterministic hash all distinct-value
/// estimates are keyed on, so catalogs from different runs (and different
/// platforms) merge coherently.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Finalizer mix (splitmix64) applied before HLL register selection:
/// FNV-1a alone has weak low-bit avalanche.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A distinct-value estimator: exact under the exact threshold (512 values), an
/// HLL-style sketch beyond it.
#[derive(Debug, Clone, PartialEq)]
pub enum DistinctEstimator {
    /// Sorted set of FNV-1a hashes of the values seen so far.
    Exact(Vec<u64>),
    /// One max-rank register per bucket of the mixed hash.
    Sketch(Vec<u8>),
}

impl Default for DistinctEstimator {
    fn default() -> Self {
        DistinctEstimator::Exact(Vec::new())
    }
}

impl DistinctEstimator {
    /// Insert one value hash (as produced by [`fnv1a`]).
    pub fn insert(&mut self, hash: u64) {
        match self {
            DistinctEstimator::Exact(hashes) => {
                if let Err(pos) = hashes.binary_search(&hash) {
                    hashes.insert(pos, hash);
                    if hashes.len() > EXACT_THRESHOLD {
                        self.spill();
                    }
                }
            }
            DistinctEstimator::Sketch(regs) => sketch_insert(regs, hash),
        }
    }

    fn spill(&mut self) {
        if let DistinctEstimator::Exact(hashes) = self {
            let mut regs = vec![0u8; HLL_REGISTERS];
            for &h in hashes.iter() {
                sketch_insert(&mut regs, h);
            }
            *self = DistinctEstimator::Sketch(regs);
        }
    }

    /// Estimated number of distinct values (exact while under threshold).
    pub fn estimate(&self) -> u64 {
        match self {
            DistinctEstimator::Exact(hashes) => hashes.len() as u64,
            DistinctEstimator::Sketch(regs) => sketch_estimate(regs),
        }
    }

    /// Fold `other` into `self`; spills to a sketch if either side is one
    /// or the union exceeds the exact threshold.
    pub fn merge(&mut self, other: &DistinctEstimator) {
        match other {
            DistinctEstimator::Exact(hashes) => {
                for &h in hashes {
                    self.insert(h);
                }
            }
            DistinctEstimator::Sketch(other_regs) => {
                self.spill();
                if let DistinctEstimator::Sketch(regs) = self {
                    for (r, o) in regs.iter_mut().zip(other_regs) {
                        *r = (*r).max(*o);
                    }
                } else {
                    // self was Exact and under threshold before spill() —
                    // spill() always converts, so this is unreachable.
                    unreachable!("spill() leaves a sketch");
                }
            }
        }
    }

    fn to_json(&self) -> Value {
        match self {
            DistinctEstimator::Exact(hashes) => json!({
                "mode": "exact",
                "hashes": Value::Array(hashes.iter().map(|&h| Value::from(h)).collect()),
            }),
            DistinctEstimator::Sketch(regs) => json!({
                "mode": "sketch",
                "registers":
                    Value::Array(regs.iter().map(|&r| Value::from(r as u64)).collect()),
            }),
        }
    }

    fn from_json(v: &Value) -> Option<Self> {
        match v.get("mode")?.as_str()? {
            "exact" => {
                let mut hashes: Vec<u64> = v
                    .get("hashes")?
                    .as_array()?
                    .iter()
                    .filter_map(Value::as_u64)
                    .collect();
                hashes.sort_unstable();
                hashes.dedup();
                Some(DistinctEstimator::Exact(hashes))
            }
            "sketch" => {
                let regs: Vec<u8> = v
                    .get("registers")?
                    .as_array()?
                    .iter()
                    .filter_map(|r| r.as_u64().map(|n| n.min(u8::MAX as u64) as u8))
                    .collect();
                (regs.len() == HLL_REGISTERS).then_some(DistinctEstimator::Sketch(regs))
            }
            _ => None,
        }
    }
}

fn sketch_insert(regs: &mut [u8], hash: u64) {
    let h = mix(hash);
    let idx = (h >> (64 - HLL_INDEX_BITS)) as usize;
    let rest = h << HLL_INDEX_BITS;
    let rank = (rest.leading_zeros() + 1).min(64 - HLL_INDEX_BITS + 1) as u8;
    if regs[idx] < rank {
        regs[idx] = rank;
    }
}

fn sketch_estimate(regs: &[u8]) -> u64 {
    let m = regs.len() as f64;
    let alpha = 0.7213 / (1.0 + 1.079 / m);
    let sum: f64 = regs.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
    let raw = alpha * m * m / sum;
    let zeros = regs.iter().filter(|&&r| r == 0).count();
    let corrected = if raw <= 2.5 * m && zeros > 0 {
        m * (m / zeros as f64).ln()
    } else {
        raw
    };
    corrected.round() as u64
}

/// Statistics for one schema path (`"db:/root/child/..."`).
#[derive(Debug, Clone, PartialEq)]
pub struct PathStats {
    /// Atomic values (tuple members) observed at this path.
    pub tuples: u64,
    /// Set nodes observed at this path.
    pub sets: u64,
    /// log₂ histogram of observed set cardinalities.
    pub set_card: [u64; HISTOGRAM_BUCKETS],
    /// Distinct-value estimator over the values at this path.
    pub distinct: DistinctEstimator,
}

impl Default for PathStats {
    fn default() -> Self {
        PathStats {
            tuples: 0,
            sets: 0,
            set_card: [0; HISTOGRAM_BUCKETS],
            distinct: DistinctEstimator::default(),
        }
    }
}

impl PathStats {
    /// Estimated number of distinct values at this path.
    pub fn distinct_estimate(&self) -> u64 {
        self.distinct.estimate()
    }

    /// Approximate mean observed set cardinality, reconstructed from the
    /// log₂ histogram via geometric bucket midpoints (`2^i·√2`; bucket 0
    /// counts as 1). `None` until a set has been recorded. This is the
    /// cost-model read path of the query planner's cardinality estimates.
    pub fn mean_set_cardinality(&self) -> Option<f64> {
        let total: u64 = self.set_card.iter().sum();
        if total == 0 {
            return None;
        }
        let weighted: f64 = self
            .set_card
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let mid = if i == 0 {
                    1.0
                } else {
                    bucket_lower(i) as f64 * std::f64::consts::SQRT_2
                };
                mid * n as f64
            })
            .sum();
        Some(weighted / total as f64)
    }
}

/// Statistics for one canonicalized equality-join key
/// (e.g. `"src:/rdb/listing/agent-id = src:/rdb/agent/id"`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JoinStats {
    /// Rows on the build side of the hash join.
    pub build_rows: u64,
    /// Rows on the probe side.
    pub probe_rows: u64,
    /// Candidate pairs actually tested after the hash lookup.
    pub probes: u64,
    /// Pairs that satisfied the equality (join output cardinality).
    pub matches: u64,
}

impl JoinStats {
    /// Estimated equality-join selectivity: output cardinality over the
    /// cross-product size, in `[0, 1]`. `None` until both sides have rows.
    pub fn selectivity(&self) -> Option<f64> {
        let cross = (self.build_rows as f64) * (self.probe_rows as f64);
        if cross == 0.0 {
            return None;
        }
        Some((self.matches as f64 / cross).min(1.0))
    }
}

/// The statistics catalog: what the engine has measured about the data it
/// moved and the joins it ran. Keys are sorted (`BTreeMap`) so JSON
/// serialization is stable across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsCatalog {
    /// Per-schema-path statistics, keyed by root-rooted dot paths
    /// (`US.houses.price`, with `->` for choice alternatives) — the same
    /// canonicalized form the query evaluator derives from path
    /// expressions, so exchange-side and query-side observations of one
    /// schema path merge into a single entry.
    pub paths: BTreeMap<String, PathStats>,
    /// Per-join-key statistics, keyed by the canonicalized key pair.
    pub joins: BTreeMap<String, JoinStats>,
}

impl StatsCatalog {
    pub fn new() -> Self {
        StatsCatalog::default()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty() && self.joins.is_empty()
    }

    /// Record one set node of `cardinality` members at `path`.
    pub fn record_set(&mut self, path: &str, cardinality: u64) {
        let entry = self.path_entry(path);
        entry.sets += 1;
        entry.set_card[bucket_for(cardinality)] += 1;
    }

    /// Record one atomic value at `path`, identified by its [`fnv1a`] hash.
    pub fn record_value_hash(&mut self, path: &str, hash: u64) {
        let entry = self.path_entry(path);
        entry.tuples += 1;
        entry.distinct.insert(hash);
    }

    /// Convenience: hash `value` with [`fnv1a`] and record it at `path`.
    pub fn record_value(&mut self, path: &str, value: &str) {
        self.record_value_hash(path, fnv1a(value.as_bytes()));
    }

    /// Record the outcome of one equality hash join under `key`.
    pub fn record_join(&mut self, key: &str, stats: JoinStats) {
        let entry = self.joins.entry(key.to_string()).or_default();
        entry.build_rows += stats.build_rows;
        entry.probe_rows += stats.probe_rows;
        entry.probes += stats.probes;
        entry.matches += stats.matches;
    }

    fn path_entry(&mut self, path: &str) -> &mut PathStats {
        self.paths.entry(path.to_string()).or_default()
    }

    /// Fold `other` into `self` (counts add, histograms add elementwise,
    /// distinct estimators union). Merging catalogs from separate runs
    /// yields the catalog of the combined run.
    pub fn merge(&mut self, other: &StatsCatalog) {
        for (path, stats) in &other.paths {
            let entry = self.path_entry(path);
            entry.tuples += stats.tuples;
            entry.sets += stats.sets;
            for (b, n) in entry.set_card.iter_mut().zip(stats.set_card.iter()) {
                *b += n;
            }
            entry.distinct.merge(&stats.distinct);
        }
        for (key, stats) in &other.joins {
            self.record_join(key, *stats);
        }
    }

    /// Sorted-key JSON rendering. Derived quantities (`distinct_estimate`,
    /// `selectivity`) are embedded for readers but ignored by
    /// [`StatsCatalog::from_json`].
    pub fn to_json(&self) -> Value {
        let mut paths = Map::new();
        for (path, stats) in &self.paths {
            let set_card: Vec<Value> = stats
                .set_card
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| json!([i, n]))
                .collect();
            paths.insert(
                path.clone(),
                json!({
                    "distinct": stats.distinct.to_json(),
                    "distinct_estimate": stats.distinct_estimate(),
                    "set_card": set_card,
                    "sets": stats.sets,
                    "tuples": stats.tuples,
                }),
            );
        }
        let mut joins = Map::new();
        for (key, stats) in &self.joins {
            joins.insert(
                key.clone(),
                json!({
                    "build_rows": stats.build_rows,
                    "matches": stats.matches,
                    "probe_rows": stats.probe_rows,
                    "probes": stats.probes,
                    "selectivity": stats.selectivity(),
                }),
            );
        }
        json!({ "joins": joins, "paths": paths })
    }

    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("stats JSON serializes")
    }

    /// Human-readable table of the catalog (the REPL's `.stats` output).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("statistics catalog: empty (is stats collection on?)\n");
            return out;
        }
        let _ = writeln!(out, "paths ({}):", self.paths.len());
        let _ = writeln!(
            out,
            "  {:<40} {:>8} {:>6} {:>10}",
            "path", "tuples", "sets", "~distinct"
        );
        for (path, s) in &self.paths {
            let _ = writeln!(
                out,
                "  {:<40} {:>8} {:>6} {:>10}",
                path,
                s.tuples,
                s.sets,
                s.distinct_estimate()
            );
        }
        if !self.joins.is_empty() {
            let _ = writeln!(out, "joins ({}):", self.joins.len());
            for (key, j) in &self.joins {
                let sel = j
                    .selectivity()
                    .map_or("-".to_string(), |s| format!("{s:.4}"));
                let _ = writeln!(
                    out,
                    "  {key}\n    build {}  probe {}  probes {}  matches {}  selectivity {sel}",
                    j.build_rows, j.probe_rows, j.probes, j.matches
                );
            }
        }
        out
    }

    /// Parses a catalog from the JSON text [`StatsCatalog::to_json_string`]
    /// produces.
    pub fn from_json_str(s: &str) -> Option<StatsCatalog> {
        StatsCatalog::from_json(&serde_json::from_str(s).ok()?)
    }

    /// Parse a catalog previously produced by [`StatsCatalog::to_json`].
    /// Tolerant: unknown keys are ignored, malformed entries skipped.
    pub fn from_json(v: &Value) -> Option<StatsCatalog> {
        let mut catalog = StatsCatalog::new();
        if let Some(paths) = v.get("paths").and_then(Value::as_object) {
            for (path, entry) in paths.iter() {
                let mut stats = PathStats {
                    tuples: entry.get("tuples").and_then(Value::as_u64).unwrap_or(0),
                    sets: entry.get("sets").and_then(Value::as_u64).unwrap_or(0),
                    ..PathStats::default()
                };
                if let Some(pairs) = entry.get("set_card").and_then(Value::as_array) {
                    for pair in pairs {
                        let Some(pair) = pair.as_array() else {
                            continue;
                        };
                        if let (Some(i), Some(n)) = (
                            pair.first().and_then(Value::as_u64),
                            pair.get(1).and_then(Value::as_u64),
                        ) {
                            if (i as usize) < HISTOGRAM_BUCKETS {
                                stats.set_card[i as usize] = n;
                            }
                        }
                    }
                }
                if let Some(d) = entry.get("distinct").and_then(DistinctEstimator::from_json) {
                    stats.distinct = d;
                }
                catalog.paths.insert(path.clone(), stats);
            }
        }
        if let Some(joins) = v.get("joins").and_then(Value::as_object) {
            for (key, entry) in joins.iter() {
                let get = |field: &str| entry.get(field).and_then(Value::as_u64).unwrap_or(0);
                catalog.joins.insert(
                    key.clone(),
                    JoinStats {
                        build_rows: get("build_rows"),
                        probe_rows: get("probe_rows"),
                        probes: get("probes"),
                        matches: get("matches"),
                    },
                );
            }
        }
        Some(catalog)
    }
}

static CATALOG: Mutex<StatsCatalog> = Mutex::new(StatsCatalog {
    paths: BTreeMap::new(),
    joins: BTreeMap::new(),
});

fn global() -> std::sync::MutexGuard<'static, StatsCatalog> {
    CATALOG.lock().unwrap_or_else(|p| p.into_inner())
}

/// Monotonic version of the relation cardinalities the planner costs
/// against. Ordinary stat collection (join/value observations during
/// evaluation) does NOT move it — only events that change what is
/// populated: a delta apply, a rebase, or a [`reset`]. Compiled plans
/// stamp the version they were built at and are recompiled on mismatch,
/// so a post-delta planned query never reuses a pre-delta join order.
static CARDINALITY_VERSION: AtomicU64 = AtomicU64::new(0);

/// The current cardinality version (see [`bump_cardinality_version`]).
pub fn cardinality_version() -> u64 {
    CARDINALITY_VERSION.load(Ordering::Acquire)
}

/// Advances the cardinality version, invalidating every cached plan that
/// was compiled against the previous catalog. Called by delta apply and
/// rebase paths after they merge fresh path counts.
pub fn bump_cardinality_version() {
    CARDINALITY_VERSION.fetch_add(1, Ordering::AcqRel);
}

/// Fold a locally collected catalog into the global one. Collection sites
/// batch into a local [`StatsCatalog`] and merge once, so the global lock
/// is taken O(runs), not O(rows).
pub fn merge(local: &StatsCatalog) {
    if !local.is_empty() {
        global().merge(local);
    }
}

/// Record one equality-join outcome directly against the global catalog.
pub fn record_join(key: &str, stats: JoinStats) {
    global().record_join(key, stats);
}

/// Record one set observation directly against the global catalog.
pub fn record_set(path: &str, cardinality: u64) {
    global().record_set(path, cardinality);
}

/// A copy of the global catalog as collected so far.
pub fn snapshot() -> StatsCatalog {
    global().clone()
}

/// Clear the global catalog.
pub fn reset() {
    *global() = StatsCatalog::new();
    bump_cardinality_version();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_distinct_is_exact() {
        let mut d = DistinctEstimator::default();
        for i in 0..400u64 {
            d.insert(fnv1a(&i.to_le_bytes()));
            d.insert(fnv1a(&i.to_le_bytes())); // duplicates don't count
        }
        assert_eq!(d.estimate(), 400);
        assert!(matches!(d, DistinctEstimator::Exact(_)));
    }

    #[test]
    fn sketch_estimate_within_tolerance() {
        let mut d = DistinctEstimator::default();
        let n = 20_000u64;
        for i in 0..n {
            d.insert(fnv1a(format!("value-{i}").as_bytes()));
        }
        assert!(matches!(d, DistinctEstimator::Sketch(_)));
        let est = d.estimate() as f64;
        let err = (est - n as f64).abs() / n as f64;
        assert!(err < 0.15, "estimate {est} off by {:.1}%", err * 100.0);
    }

    #[test]
    fn merge_exact_and_sketch() {
        let mut a = DistinctEstimator::default();
        let mut b = DistinctEstimator::default();
        for i in 0..300u64 {
            a.insert(fnv1a(&i.to_le_bytes()));
        }
        for i in 200..500u64 {
            b.insert(fnv1a(&i.to_le_bytes()));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.estimate(), 500); // union stays exact under threshold

        // Exact merged into a sketch spills and stays sane.
        let mut big = DistinctEstimator::default();
        for i in 0..5_000u64 {
            big.insert(fnv1a(&i.to_le_bytes()));
        }
        let mut spilled = b.clone();
        spilled.merge(&big);
        assert!(matches!(spilled, DistinctEstimator::Sketch(_)));
        let est = spilled.estimate() as f64;
        assert!((est - 5_000.0).abs() / 5_000.0 < 0.15, "estimate {est}");
    }

    #[test]
    fn mean_set_cardinality_tracks_histogram() {
        let mut s = PathStats::default();
        assert_eq!(s.mean_set_cardinality(), None);
        s.set_card[bucket_for(1)] += 2; // two singleton sets -> mean 1
        let m = s.mean_set_cardinality().unwrap();
        assert!((m - 1.0).abs() < 1e-9, "mean {m}");
        s.set_card[bucket_for(64)] += 2; // bucket midpoint 64·√2 ≈ 90.5
        let m = s.mean_set_cardinality().unwrap();
        assert!(m > 40.0 && m < 50.0, "mean {m}");
    }

    #[test]
    fn catalog_merge_adds_counts() {
        let mut a = StatsCatalog::new();
        a.record_set("db:/listing", 10);
        a.record_value("db:/listing/price", "100");
        a.record_value("db:/listing/price", "200");
        let mut b = StatsCatalog::new();
        b.record_set("db:/listing", 6);
        b.record_value("db:/listing/price", "200");
        b.record_join(
            "db:/agent/id = db:/listing/agent-id",
            JoinStats {
                build_rows: 5,
                probe_rows: 20,
                probes: 20,
                matches: 18,
            },
        );
        a.merge(&b);
        let p = &a.paths["db:/listing"];
        assert_eq!(p.sets, 2);
        assert_eq!(p.set_card[bucket_for(10)] + p.set_card[bucket_for(6)], 2);
        let price = &a.paths["db:/listing/price"];
        assert_eq!(price.tuples, 3);
        assert_eq!(price.distinct_estimate(), 2);
        let j = &a.joins["db:/agent/id = db:/listing/agent-id"];
        assert_eq!(j.matches, 18);
        assert_eq!(j.selectivity(), Some(0.18));
    }

    #[test]
    fn json_round_trip_preserves_catalog() {
        let mut c = StatsCatalog::new();
        c.record_set("db:/r", 4);
        for i in 0..700u64 {
            c.record_value("db:/r/x", &format!("v{i}"));
        }
        c.record_value("db:/r/y", "only");
        c.record_join(
            "a = b",
            JoinStats {
                build_rows: 3,
                probe_rows: 4,
                probes: 6,
                matches: 5,
            },
        );
        let text = c.to_json_string();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let back = StatsCatalog::from_json(&parsed).unwrap();
        assert_eq!(back, c);
        // Sorted-key stability: serializing twice is byte-identical.
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn global_catalog_merge_and_reset() {
        let _guard = crate::test_guard();
        reset();
        let mut local = StatsCatalog::new();
        local.record_set("g:/s", 2);
        merge(&local);
        merge(&local);
        assert_eq!(snapshot().paths["g:/s"].sets, 2);
        reset();
        assert!(snapshot().is_empty());
    }
}
