//! [`ExplainTrace`]: the step-by-step record of one MXQL→plain-query
//! translation, built by `dtr-core`'s translator and rendered by the
//! `.explain` REPL meta-command.
//!
//! Each [`ExplainStep`] names the rewrite rule that fired, the input
//! fragment it consumed (e.g. a mapping predicate) and the output it
//! emitted (e.g. the conjuncts added to a union branch). The trace is
//! deliberately plain data — the translator stays the single source of
//! truth for the rewrite logic, and the trace only narrates it.

use serde_json::{Map, Value};

/// One rewrite step in a translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExplainStep {
    /// The rewrite rule that fired, e.g. `"expand-predicate"`.
    pub rule: &'static str,
    /// The input fragment the rule consumed.
    pub input: String,
    /// What the rule emitted.
    pub output: String,
}

/// The ordered steps of one MXQL→plain translation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExplainTrace {
    pub steps: Vec<ExplainStep>,
}

impl ExplainTrace {
    /// Append a step.
    pub fn step(
        &mut self,
        rule: &'static str,
        input: impl Into<String>,
        output: impl Into<String>,
    ) {
        self.steps.push(ExplainStep {
            rule,
            input: input.into(),
            output: output.into(),
        });
    }

    /// Human-readable rendering (the body of `.explain` output).
    pub fn render(&self) -> String {
        let mut out = String::from("TRANSLATION STEPS\n");
        if self.steps.is_empty() {
            out.push_str("└─ (no rewrite steps recorded)\n");
            return out;
        }
        for (i, step) in self.steps.iter().enumerate() {
            let last = i + 1 == self.steps.len();
            let branch = if last { "└─ " } else { "├─ " };
            let pad = if last { "   " } else { "│  " };
            out.push_str(&format!("{branch}[{}] {}\n", i + 1, step.rule));
            out.push_str(&format!("{pad}   in:  {}\n", step.input));
            out.push_str(&format!("{pad}   out: {}\n", step.output));
        }
        out
    }

    /// Structured JSON form: an array of `{rule, input, output}` objects.
    pub fn to_json(&self) -> Value {
        Value::Array(
            self.steps
                .iter()
                .map(|s| {
                    let mut obj = Map::new();
                    obj.insert("rule", Value::from(s.rule));
                    obj.insert("input", Value::from(s.input.as_str()));
                    obj.insert("output", Value::from(s.output.as_str()));
                    Value::Object(obj)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_numbers_steps_in_order() {
        let mut trace = ExplainTrace::default();
        trace.step(
            "expand-predicate",
            "<us:affiliations.affiliation -> m2 -> portal:orgs.org>",
            "3 branches via Correspondence/Element joins",
        );
        trace.step("union", "2 predicate(s)", "3 plain queries");
        let text = trace.render();
        assert!(text.contains("[1] expand-predicate"));
        assert!(text.contains("[2] union"));
        assert!(text.contains("in:  <us:affiliations.affiliation"));
        assert!(text.contains("out: 3 plain queries"));
    }

    #[test]
    fn json_form_is_an_array_of_steps() {
        let mut trace = ExplainTrace::default();
        trace.step("plan-predicate", "p", "q");
        let json = trace.to_json();
        let steps = json.as_array().unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(
            steps[0].get("rule").and_then(Value::as_str),
            Some("plan-predicate")
        );
    }
}
