//! Structured spans with aggregation.
//!
//! A span marks one timed execution of a named stage ("exchange.run_mapping",
//! "query.eval", ...). Spans nest lexically: the collector keeps a
//! thread-local stack, and repeated spans at the same tree position fold
//! into a single aggregate node (call count, total/min/max wall time), so a
//! span inside a per-row loop stays O(1) in memory.
//!
//! Guards must be dropped in LIFO order, which Rust scoping gives for free.

use std::cell::RefCell;
use std::time::Instant;

use crate::profile::ProfileNode;

#[derive(Debug)]
struct Node {
    name: &'static str,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    /// Key fields: last value written wins (aggregated spans keep the most
    /// recent, which for per-mapping loops is the final mapping's value).
    fields: Vec<(&'static str, String)>,
    children: Vec<usize>,
}

impl Node {
    fn new(name: &'static str) -> Self {
        Node {
            name,
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            fields: Vec::new(),
            children: Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
struct Collector {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    /// Indices of the currently open spans, innermost last.
    stack: Vec<usize>,
}

impl Collector {
    fn open(&mut self, name: &'static str) -> usize {
        let siblings = match self.stack.last() {
            Some(&parent) => &self.nodes[parent].children,
            None => &self.roots,
        };
        let found = siblings
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name);
        let index = match found {
            Some(i) => i,
            None => {
                let i = self.nodes.len();
                self.nodes.push(Node::new(name));
                match self.stack.last() {
                    Some(&parent) => self.nodes[parent].children.push(i),
                    None => self.roots.push(i),
                }
                i
            }
        };
        self.stack.push(index);
        index
    }

    fn close(&mut self, index: usize, elapsed_ns: u64) {
        // A guard can outlive a `profile_reset` (or drop out of LIFO order
        // under unusual control flow); discard its measurement rather than
        // misattribute it.
        if self.stack.last() != Some(&index) || index >= self.nodes.len() {
            return;
        }
        self.stack.pop();
        let node = &mut self.nodes[index];
        node.count += 1;
        node.total_ns += elapsed_ns;
        node.min_ns = node.min_ns.min(elapsed_ns);
        node.max_ns = node.max_ns.max(elapsed_ns);
    }

    fn set_field(&mut self, index: usize, key: &'static str, value: String) {
        if index >= self.nodes.len() {
            return; // guard outlived a profile_reset
        }
        let fields = &mut self.nodes[index].fields;
        match fields.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => fields.push((key, value)),
        }
    }

    fn export(&self, index: usize) -> ProfileNode {
        let node = &self.nodes[index];
        let mut fields: Vec<(String, String)> = node
            .fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        // Sorted so exported profiles (and their JSON) are run-stable.
        fields.sort();
        ProfileNode {
            name: node.name.to_string(),
            count: node.count,
            total_ns: node.total_ns,
            min_ns: if node.count == 0 { 0 } else { node.min_ns },
            max_ns: node.max_ns,
            fields,
            children: node.children.iter().map(|&c| self.export(c)).collect(),
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::default());
}

/// Open a span. Returns a guard that records the elapsed wall time into the
/// current thread's profile tree when dropped, and — when the flight
/// recorder is on — emits timestamped begin/end events with this thread's
/// id. Free when both profiling and flight recording are disabled (two
/// relaxed atomic loads).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let profiled = crate::enabled();
    let flight = crate::recorder::enabled();
    if !profiled && !flight {
        return SpanGuard {
            live: None,
            flight: None,
        };
    }
    let live = profiled.then(|| LiveSpan {
        index: COLLECTOR.with(|c| c.borrow_mut().open(name)),
        start: Instant::now(),
    });
    let flight = flight.then(|| {
        crate::recorder::record_span_begin(name);
        FlightSpan {
            name,
            start: Instant::now(),
        }
    });
    SpanGuard { live, flight }
}

#[derive(Debug)]
struct LiveSpan {
    index: usize,
    start: Instant,
}

#[derive(Debug)]
struct FlightSpan {
    name: &'static str,
    start: Instant,
}

/// RAII guard for an open span; see [`span`].
#[derive(Debug)]
#[must_use = "a span guard records its timing when dropped; binding it to _ closes it immediately"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
    flight: Option<FlightSpan>,
}

impl SpanGuard {
    /// Attach a key field to the span (e.g. the mapping name, row counts).
    /// Builder-style so fields chain off [`span`].
    pub fn field(self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(live) = &self.live {
            let rendered = value.to_string();
            COLLECTOR.with(|c| c.borrow_mut().set_field(live.index, key, rendered));
        }
        self
    }

    /// Attach a field after construction (for values known mid-span).
    pub fn record(&self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(live) = &self.live {
            let rendered = value.to_string();
            COLLECTOR.with(|c| c.borrow_mut().set_field(live.index, key, rendered));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let profiled = if let Some(live) = self.live.take() {
            let elapsed_ns = u64::try_from(live.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::counters().span_duration_ns.record(elapsed_ns);
            COLLECTOR.with(|c| c.borrow_mut().close(live.index, elapsed_ns));
            true
        } else {
            false
        };
        if let Some(flight) = self.flight.take() {
            let elapsed_ns = u64::try_from(flight.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if !profiled {
                // Flight-only runs still feed the duration histogram so
                // counter samples carry latency percentiles.
                crate::counters().span_duration_ns.record(elapsed_ns);
            }
            crate::recorder::record_span_end(flight.name, elapsed_ns);
        }
    }
}

/// Drop every collected span on this thread (open guards keep recording
/// into fresh nodes afterwards).
pub(crate) fn reset_current_thread() {
    COLLECTOR.with(|c| {
        let mut collector = c.borrow_mut();
        collector.nodes.clear();
        collector.roots.clear();
        collector.stack.clear();
    });
}

/// Export this thread's span tree.
pub(crate) fn snapshot_current_thread() -> Vec<ProfileNode> {
    COLLECTOR.with(|c| {
        let collector = c.borrow();
        collector
            .roots
            .iter()
            .map(|&r| collector.export(r))
            .collect()
    })
}
