//! `dtr-flight`: a gated, bounded, timestamped flight recorder.
//!
//! The profile ([`crate::PipelineProfile`]) aggregates and the journal
//! ([`crate::journal`]) orders decisions, but neither preserves the *time
//! domain*: when each stage ran, on which thread, and how the parallel
//! exchange workers overlapped. The flight recorder captures exactly that —
//! span begin/end events with thread ids, periodic counter-registry delta
//! samples, guard trips, and per-mapping exchange windows — in a bounded
//! ring buffer that [`crate::chrome_trace`] exports as a Chrome Trace
//! Event file loadable in Perfetto or `chrome://tracing`.
//!
//! ## Design
//!
//! * **Gated.** Everything funnels through [`enabled`] — one relaxed
//!   atomic load per event site when off (`DTR_FLIGHT=1` or
//!   [`set_enabled`] turn it on), following the `journal.rs` pattern.
//! * **Bounded.** Events live in a ring buffer of
//!   [`DEFAULT_CAP`] slots (`DTR_FLIGHT_CAP` overrides); evicted events
//!   bump a `dropped` counter. Always-on capture in a long-lived shell
//!   keeps the most recent window, like an aircraft flight recorder.
//! * **Timestamped.** All timestamps are nanoseconds on one process-wide
//!   monotonic clock ([`now_ns`]), so events from different threads
//!   interleave consistently.
//! * **Self-sampling.** Every [`SAMPLE_STRIDE`]th event (and every forced
//!   [`sample_counters`] call) appends a delta sample of the counter
//!   registry: only counters whose value changed since the previous sample
//!   are included, with absolute values — the exact shape Chrome `C`
//!   (counter) events want.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde_json::{Map, Value};

/// Default ring-buffer capacity (events retained) when `DTR_FLIGHT_CAP`
/// is unset.
pub const DEFAULT_CAP: usize = 65_536;

/// A counter-registry delta sample is appended automatically every this
/// many recorded events (`DTR_FLIGHT_SAMPLE` overrides).
pub const SAMPLE_STRIDE: u64 = 256;

// ---- The monotonic clock and thread ids. ----

/// Nanoseconds since the process-wide flight epoch (the first call from
/// any thread). Monotonic and shared across threads.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A small dense id for the calling thread (1 for the first thread that
/// records, 2 for the next, ...). Stable for the thread's lifetime; used
/// as the `tid` track key in exported traces.
pub fn thread_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

// ---- Event shapes. ----

/// What a flight event records.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightKind {
    /// A span opened on this thread ([`crate::span`]).
    SpanBegin {
        /// The stage name (e.g. `"exchange.run_mapping"`).
        name: &'static str,
    },
    /// A span closed on this thread; `dur_ns` is its wall time, so an
    /// exporter can reconstruct the interval even if the matching begin
    /// event was evicted from the ring.
    SpanEnd {
        /// The stage name.
        name: &'static str,
        /// Elapsed wall time of the span.
        dur_ns: u64,
    },
    /// A delta sample of the counter registry: counters whose value
    /// changed since the previous sample, with absolute values.
    CounterSample {
        /// `(counter name, absolute value)`, sorted by name.
        values: Vec<(String, u64)>,
    },
    /// A resource budget tripped ([`crate::guard`]).
    GuardTrip {
        /// [`crate::guard::Resource::name`] of what ran out.
        resource: &'static str,
        /// The stage that tripped.
        stage: String,
    },
    /// One mapping's exchange window: the interval in which its rows were
    /// materialized into the target, with its outcome counts.
    MappingWindow {
        /// The mapping name.
        mapping: String,
        /// Source bindings the mapping produced.
        tuples: u64,
        /// Fresh target rows materialized.
        rows_inserted: u64,
        /// Rows folded into existing members by PNF merging.
        rows_merged: u64,
        /// Wall time of the window; the event's timestamp marks its end.
        wall_ns: u64,
    },
}

impl FlightKind {
    /// Stable snake_case tag used in summaries and JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            FlightKind::SpanBegin { .. } => "span_begin",
            FlightKind::SpanEnd { .. } => "span_end",
            FlightKind::CounterSample { .. } => "counter_sample",
            FlightKind::GuardTrip { .. } => "guard_trip",
            FlightKind::MappingWindow { .. } => "mapping_window",
        }
    }
}

/// One timestamped flight-recorder entry.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightEvent {
    /// Global sequence number (monotonic since the last [`reset`]).
    pub seq: u64,
    /// Nanoseconds since the flight epoch ([`now_ns`]).
    pub ts_ns: u64,
    /// Dense thread id ([`thread_tid`]) of the recording thread.
    pub tid: u64,
    /// What happened.
    pub kind: FlightKind,
}

impl FlightEvent {
    /// The event as a JSON object (diagnostic form; the exportable trace
    /// form lives in [`crate::chrome_trace`]).
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("seq", Value::from(self.seq));
        obj.insert("ts_ns", Value::from(self.ts_ns));
        obj.insert("tid", Value::from(self.tid));
        obj.insert("kind", Value::from(self.kind.kind()));
        match &self.kind {
            FlightKind::SpanBegin { name } => {
                obj.insert("name", Value::from(*name));
            }
            FlightKind::SpanEnd { name, dur_ns } => {
                obj.insert("name", Value::from(*name));
                obj.insert("dur_ns", Value::from(*dur_ns));
            }
            FlightKind::CounterSample { values } => {
                let mut vals = Map::new();
                for (k, v) in values {
                    vals.insert(k.clone(), Value::from(*v));
                }
                obj.insert("values", Value::Object(vals));
            }
            FlightKind::GuardTrip { resource, stage } => {
                obj.insert("resource", Value::from(*resource));
                obj.insert("stage", Value::from(stage.as_str()));
            }
            FlightKind::MappingWindow {
                mapping,
                tuples,
                rows_inserted,
                rows_merged,
                wall_ns,
            } => {
                obj.insert("mapping", Value::from(mapping.as_str()));
                obj.insert("tuples", Value::from(*tuples));
                obj.insert("rows_inserted", Value::from(*rows_inserted));
                obj.insert("rows_merged", Value::from(*rows_merged));
                obj.insert("wall_ns", Value::from(*wall_ns));
            }
        }
        Value::Object(obj)
    }
}

/// Aggregate view of the recorder (the `.timeline` REPL rendering).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Events recorded since the last reset (including dropped ones).
    pub recorded: u64,
    /// Events currently retained in the ring buffer.
    pub retained: u64,
    /// Events evicted by the ring bound.
    pub dropped: u64,
    /// Ring-buffer capacity.
    pub cap: u64,
    /// Distinct thread ids among retained events.
    pub threads: u64,
    /// Retained events per kind, sorted by kind.
    pub by_kind: Vec<(String, u64)>,
}

impl Summary {
    /// One-paragraph human rendering.
    pub fn render(&self) -> String {
        let kinds = self
            .by_kind
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "flight: recorded {} retained {} dropped {} cap {} threads {} [{kinds}]",
            self.recorded, self.retained, self.dropped, self.cap, self.threads
        )
    }
}

// ---- The gate (mirrors the journal gate). ----

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Is flight recording enabled? First call consults `DTR_FLIGHT` (values
/// `1`, `true`, `on`, case-insensitive); afterwards this is a single
/// relaxed atomic load — the *entire* hot-path cost of a disabled event
/// site, provided callers gate payload construction on it.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("DTR_FLIGHT")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Force flight recording on or off, overriding `DTR_FLIGHT`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---- The ring buffer. ----

#[derive(Debug)]
struct Flight {
    cap: usize,
    buf: VecDeque<FlightEvent>,
    next_seq: u64,
    dropped: u64,
    sample_stride: u64,
    /// Counter values at the previous sample, for delta detection.
    last_sample: BTreeMap<String, u64>,
}

impl Flight {
    fn new(cap: usize, sample_stride: u64) -> Self {
        Flight {
            cap: cap.max(1),
            buf: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
            sample_stride: sample_stride.max(1),
            last_sample: BTreeMap::new(),
        }
    }

    fn push(&mut self, kind: FlightKind, ts_ns: u64, tid: u64) -> u64 {
        if self.buf.len() >= self.cap && self.buf.pop_front().is_some() {
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push_back(FlightEvent {
            seq,
            ts_ns,
            tid,
            kind,
        });
        seq
    }

    /// Append a counter delta sample if any counter moved since the last
    /// sample. Returns whether a sample was recorded.
    fn sample(&mut self, ts_ns: u64, tid: u64) -> bool {
        let mut changed: Vec<(String, u64)> = Vec::new();
        for (name, value) in crate::counters().snapshot() {
            if self.last_sample.get(&name) != Some(&value) {
                self.last_sample.insert(name.clone(), value);
                changed.push((name, value));
            }
        }
        if changed.is_empty() {
            return false;
        }
        self.push(FlightKind::CounterSample { values: changed }, ts_ns, tid);
        true
    }

    fn record(&mut self, kind: FlightKind, ts_ns: u64, tid: u64) -> u64 {
        let seq = self.push(kind, ts_ns, tid);
        // Periodic registry sampling rides on the event stream itself: no
        // timer thread, and quiet periods record nothing.
        if seq % self.sample_stride == self.sample_stride - 1 {
            self.sample(ts_ns, tid);
        }
        seq
    }

    fn summary(&self) -> Summary {
        let mut by: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut tids: Vec<u64> = Vec::new();
        for e in &self.buf {
            *by.entry(e.kind.kind()).or_insert(0) += 1;
            if !tids.contains(&e.tid) {
                tids.push(e.tid);
            }
        }
        Summary {
            recorded: self.next_seq,
            retained: self.buf.len() as u64,
            dropped: self.dropped,
            cap: self.cap as u64,
            threads: tids.len() as u64,
            by_kind: by.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }
}

fn cap_from_env() -> usize {
    std::env::var("DTR_FLIGHT_CAP")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_CAP)
}

fn stride_from_env() -> u64 {
    std::env::var("DTR_FLIGHT_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(SAMPLE_STRIDE)
}

fn with_flight<R>(f: impl FnOnce(&mut Flight) -> R) -> R {
    static FLIGHT: Mutex<Option<Flight>> = Mutex::new(None);
    let mut guard = FLIGHT.lock().unwrap_or_else(|p| p.into_inner());
    let flight = guard.get_or_insert_with(|| Flight::new(cap_from_env(), stride_from_env()));
    f(flight)
}

// ---- Public recording / query API. ----

/// Record a span opening on this thread. A no-op while recording is
/// disabled; call sites should still check [`enabled`] first so the
/// disabled path stays at one atomic load.
pub fn record_span_begin(name: &'static str) {
    if !enabled() {
        return;
    }
    let (ts, tid) = (now_ns(), thread_tid());
    with_flight(|fl| fl.record(FlightKind::SpanBegin { name }, ts, tid));
}

/// Record a span closing on this thread with its measured wall time.
pub fn record_span_end(name: &'static str, dur_ns: u64) {
    if !enabled() {
        return;
    }
    let (ts, tid) = (now_ns(), thread_tid());
    with_flight(|fl| fl.record(FlightKind::SpanEnd { name, dur_ns }, ts, tid));
}

/// Record a guard trip.
pub fn record_guard_trip(resource: &'static str, stage: impl Into<String>) {
    if !enabled() {
        return;
    }
    let stage = stage.into();
    let (ts, tid) = (now_ns(), thread_tid());
    with_flight(|fl| fl.record(FlightKind::GuardTrip { resource, stage }, ts, tid));
}

/// Record one mapping's completed exchange window (timestamped at its
/// end; `wall_ns` reaches back to its start).
pub fn record_mapping_window(
    mapping: impl Into<String>,
    tuples: u64,
    rows_inserted: u64,
    rows_merged: u64,
    wall_ns: u64,
) {
    if !enabled() {
        return;
    }
    let mapping = mapping.into();
    let (ts, tid) = (now_ns(), thread_tid());
    with_flight(|fl| {
        fl.record(
            FlightKind::MappingWindow {
                mapping,
                tuples,
                rows_inserted,
                rows_merged,
                wall_ns,
            },
            ts,
            tid,
        )
    });
}

/// Record one incremental-exchange delta batch as a window: the batch id
/// becomes the window label (`delta#7`), with edits/rebuilt/retracted in
/// the tuples/inserted/merged slots. Reusing the mapping-window track
/// keeps the Perfetto export schema unchanged — delta batches appear as
/// windows on the same exchange track as full-run mappings.
pub fn record_delta_window(batch: u64, edits: u64, rebuilt: u64, retracted: u64, wall_ns: u64) {
    record_mapping_window(format!("delta#{batch}"), edits, rebuilt, retracted, wall_ns);
}

/// Record one durable-store operation (`wal_append`, `checkpoint`,
/// `recover`) as a window on the exchange track: bytes in the tuples
/// slot, replayed/retried counts in the inserted slot.
pub fn record_durable_window(op: &str, bytes: u64, count: u64, wall_ns: u64) {
    record_mapping_window(format!("durable:{op}"), bytes, count, 0, wall_ns);
}

/// Force a counter-registry delta sample now (stage boundaries call this
/// so counter tracks bracket the interesting intervals even when the
/// stride has not elapsed). Returns whether any counter had moved.
pub fn sample_counters() -> bool {
    if !enabled() {
        return false;
    }
    let (ts, tid) = (now_ns(), thread_tid());
    with_flight(|fl| fl.sample(ts, tid))
}

/// Clear all events and restart the sequence; capacity and sample stride
/// are re-read from `DTR_FLIGHT_CAP` / `DTR_FLIGHT_SAMPLE`.
pub fn reset() {
    with_flight(|fl| *fl = Flight::new(cap_from_env(), stride_from_env()));
}

/// Override the ring-buffer capacity (truncating oldest events if needed).
pub fn set_cap(cap: usize) {
    with_flight(|fl| {
        fl.cap = cap.max(1);
        while fl.buf.len() > fl.cap {
            if fl.buf.pop_front().is_some() {
                fl.dropped += 1;
            }
        }
    });
}

/// All retained events, oldest first.
pub fn events() -> Vec<FlightEvent> {
    with_flight(|fl| fl.buf.iter().cloned().collect())
}

/// Aggregate counts for the `.timeline` rendering.
pub fn summary() -> Summary {
    with_flight(|fl| fl.summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        crate::test_guard()
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = guard();
        set_enabled(false);
        reset();
        record_span_begin("exchange.run_mapping");
        record_span_end("exchange.run_mapping", 42);
        record_guard_trip("rows", "exchange.run_mapping");
        record_mapping_window("m1", 3, 2, 1, 1000);
        assert!(!sample_counters());
        assert!(events().is_empty());
        let s = summary();
        assert_eq!(s.recorded, 0);
        assert_eq!(s.dropped, 0);
        assert!(s.by_kind.is_empty());
    }

    #[test]
    fn ring_bound_evicts_oldest() {
        let _guard = guard();
        set_enabled(true);
        reset();
        set_cap(4);
        for _ in 0..10 {
            record_span_begin("exchange.insert_row");
        }
        set_enabled(false);
        let evs = events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs.first().unwrap().seq, 6);
        assert_eq!(evs.last().unwrap().seq, 9);
        let s = summary();
        assert_eq!(s.recorded, 10);
        assert_eq!(s.retained, 4);
        assert_eq!(s.dropped, 6);
        assert_eq!(s.cap, 4);
        assert_eq!(s.by_kind, vec![("span_begin".to_string(), 4)]);
    }

    #[test]
    fn timestamps_are_monotonic_and_tids_stable() {
        let _guard = guard();
        set_enabled(true);
        reset();
        record_span_begin("a");
        record_span_end("a", 1);
        record_span_begin("b");
        set_enabled(false);
        let evs = events();
        assert_eq!(evs.len(), 3);
        for w in evs.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
            assert!(w[0].seq < w[1].seq);
        }
        // All events from this thread share one tid.
        assert!(evs.iter().all(|e| e.tid == evs[0].tid));
        assert!(evs[0].tid >= 1);
    }

    #[test]
    fn worker_threads_get_distinct_tids() {
        let _guard = guard();
        set_enabled(true);
        reset();
        record_span_begin("main");
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| record_span_begin("worker"));
            }
        });
        set_enabled(false);
        let evs = events();
        let mut tids: Vec<u64> = evs.iter().map(|e| e.tid).collect();
        tids.sort();
        tids.dedup();
        assert!(tids.len() >= 3, "expected 3 distinct tids, got {tids:?}");
        assert!(summary().threads >= 3);
    }

    #[test]
    fn counter_samples_are_deltas_with_absolute_values() {
        let _guard = guard();
        crate::set_enabled(true);
        crate::profile_reset();
        set_enabled(true);
        reset();
        crate::counters().rows_inserted.add(5);
        assert!(sample_counters());
        // Nothing moved: no second sample.
        assert!(!sample_counters());
        crate::counters().rows_inserted.add(2);
        assert!(sample_counters());
        set_enabled(false);
        crate::set_enabled(false);
        let samples: Vec<FlightEvent> = events()
            .into_iter()
            .filter(|e| matches!(e.kind, FlightKind::CounterSample { .. }))
            .collect();
        assert_eq!(samples.len(), 2);
        let values = |e: &FlightEvent| match &e.kind {
            FlightKind::CounterSample { values } => values.clone(),
            _ => unreachable!(),
        };
        // The first sample carries the absolute value 5; the second is a
        // delta sample mentioning only the moved counter, at value 7.
        assert!(values(&samples[0]).contains(&("exchange.rows_inserted".to_string(), 5)));
        let second = values(&samples[1]);
        assert_eq!(second, vec![("exchange.rows_inserted".to_string(), 7)]);
    }

    #[test]
    fn mapping_window_round_trips_to_json() {
        let _guard = guard();
        set_enabled(true);
        reset();
        record_mapping_window("m2", 10, 7, 3, 123_456);
        set_enabled(false);
        let evs = events();
        assert_eq!(evs.len(), 1);
        let json = evs[0].to_json();
        assert_eq!(
            json.get("kind").and_then(Value::as_str),
            Some("mapping_window")
        );
        assert_eq!(json.get("mapping").and_then(Value::as_str), Some("m2"));
        assert_eq!(json.get("rows_inserted").and_then(Value::as_u64), Some(7));
        assert_eq!(json.get("wall_ns").and_then(Value::as_u64), Some(123_456));
    }
}
