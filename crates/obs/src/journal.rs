//! `dtr-journal`: a gated, bounded, structured provenance event stream.
//!
//! Where the profile ([`crate::PipelineProfile`]) answers *how many* rows
//! merged, the journal answers *which* row came from *which* mapping
//! binding: every exchange decision (insert vs. PNF merge, annotation write
//! vs. suppression), every PNF merge target, every metastore encoding step
//! and every MXQL→plain rewrite step is recorded as one [`Event`] with a
//! global sequence number.
//!
//! ## Design
//!
//! * **Gated.** Everything funnels through [`enabled`] — one relaxed atomic
//!   load per event site when off (`DTR_JOURNAL=1` or
//!   [`set_enabled`] turn it on). Callers must not compute event payloads
//!   without checking the gate first.
//! * **Bounded.** Events live in a ring buffer of
//!   [`default cap 65536`](DEFAULT_CAP) slots (`DTR_JOURNAL_CAP` overrides),
//!   so always-on capture in a long-lived shell stays safe; evicted events
//!   bump a `dropped` counter and vanish from the lineage index.
//! * **Indexed.** A lineage index (`target NodeId → Vec<EventId>`) is
//!   maintained incrementally so `.trace`-style queries need not scan the
//!   whole buffer.
//! * **Exportable.** Every event renders as one JSON line ([`to_jsonl`]);
//!   the schema is documented in `docs/QUERY_LANGUAGE.md`.

use serde_json::{Map, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Global event sequence number (monotonic since the last [`reset`]).
pub type EventId = u64;

/// Default ring-buffer capacity (events retained) when `DTR_JOURNAL_CAP`
/// is unset.
pub const DEFAULT_CAP: usize = 65_536;

/// What happened at an event site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The exchange materialized a fresh target set member.
    Inserted,
    /// A binding folded into an existing member by PNF merging.
    PnfMerged {
        /// The surviving member node.
        into: u64,
    },
    /// Two structurally distinct members shared a fingerprint; the merge
    /// was refused and the bucket split instead of silently collapsing.
    CollisionSplit {
        /// The colliding fingerprint.
        fingerprint: u64,
    },
    /// An `f_mp` annotation was newly written onto a target node.
    AnnotationWritten,
    /// An annotation write was a no-op.
    AnnotationSuppressed {
        /// Why the write was suppressed (e.g. `"already-present"`).
        reason: &'static str,
    },
    /// One MXQL→plain rewrite step fired (see the `detail` field for the
    /// input predicate / emitted conjuncts).
    TranslateStep {
        /// The rewrite rule that fired (e.g. `"expand-predicate"`).
        rule: &'static str,
    },
    /// Rows were encoded into a metastore storage relation.
    MetaEncoded {
        /// The storage relation (e.g. `"Element"`, `"Correspondence"`).
        relation: &'static str,
    },
    /// A resource budget tripped and the stage aborted (for the exchange,
    /// after rolling the in-flight mapping's inserts back).
    GuardAbort {
        /// [`Resource::name`](crate::guard::Resource::name) of what ran out.
        resource: &'static str,
    },
    /// The incremental exchange applied one source-delta batch in place.
    DeltaApplied {
        /// Source edits in the batch.
        edits: u64,
        /// Target member classes rebuilt by the batch.
        rebuilt: u64,
    },
    /// The incremental exchange retracted a target member whose last
    /// supporting foreach binding disappeared.
    Retracted {
        /// Remaining foreach rows supporting the member's class (0 for a
        /// full retraction; >0 when the member was rebuilt from survivors).
        remaining: u64,
    },
    /// A delta batch was durably committed to the write-ahead log.
    WalAppend {
        /// Frame bytes written (header + payload).
        bytes: u64,
        /// Active WAL segment number.
        segment: u64,
    },
    /// A checkpoint was written (initial segment or rotation).
    Checkpoint {
        /// Checkpoint payload bytes.
        bytes: u64,
        /// The segment the checkpoint opens.
        segment: u64,
    },
    /// A durable store was reopened and its state recovered from the log.
    Recovered {
        /// Delta batches replayed on top of the checkpoint.
        replayed: u64,
        /// Torn-tail bytes truncated away during the scan.
        truncated: u64,
    },
}

impl Outcome {
    /// Stable snake_case tag used in JSONL and in summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Outcome::Inserted => "inserted",
            Outcome::PnfMerged { .. } => "pnf_merged",
            Outcome::CollisionSplit { .. } => "collision_split",
            Outcome::AnnotationWritten => "annotation_written",
            Outcome::AnnotationSuppressed { .. } => "annotation_suppressed",
            Outcome::TranslateStep { .. } => "translate_step",
            Outcome::MetaEncoded { .. } => "meta_encoded",
            Outcome::GuardAbort { .. } => "guard_abort",
            Outcome::DeltaApplied { .. } => "delta_applied",
            Outcome::Retracted { .. } => "retracted",
            Outcome::WalAppend { .. } => "wal_append",
            Outcome::Checkpoint { .. } => "checkpoint",
            Outcome::Recovered { .. } => "recovered",
        }
    }
}

/// One journal entry: a pipeline decision with its full context.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global sequence number.
    pub id: EventId,
    /// The pipeline stage that emitted the event
    /// (e.g. `"exchange.insert_row"`).
    pub stage: &'static str,
    /// The mapping in whose context the event fired, if any.
    pub mapping: Option<String>,
    /// Fingerprint of the source binding (the foreach tuple) that drove
    /// the decision, if any. A label, not an identity: events are keyed
    /// by their unique `id` and are never merged or deduplicated on
    /// `binding_fp`, so a fingerprint collision only means a `.trace`
    /// consumer filtering on it sees a candidate *set* (which it narrows
    /// by replaying the foreach query) rather than a single event.
    pub binding_fp: Option<u64>,
    /// The target node the event is about (raw `NodeId` index), if any.
    pub target: Option<u64>,
    /// What happened.
    pub outcome: Outcome,
    /// Free-form context (e.g. a translate step's input → output).
    pub detail: Option<String>,
}

impl Event {
    /// The event as a JSON object (one JSONL line when printed compactly).
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("id", Value::from(self.id));
        obj.insert("stage", Value::from(self.stage));
        if let Some(m) = &self.mapping {
            obj.insert("mapping", Value::from(m.as_str()));
        }
        if let Some(fp) = self.binding_fp {
            obj.insert("binding_fp", Value::from(format!("{fp:016x}")));
        }
        if let Some(t) = self.target {
            obj.insert("target", Value::from(t));
        }
        obj.insert("outcome", Value::from(self.outcome.kind()));
        match &self.outcome {
            Outcome::PnfMerged { into } => {
                obj.insert("into", Value::from(*into));
            }
            Outcome::CollisionSplit { fingerprint } => {
                obj.insert("fingerprint", Value::from(format!("{fingerprint:016x}")));
            }
            Outcome::AnnotationSuppressed { reason } => {
                obj.insert("reason", Value::from(*reason));
            }
            Outcome::TranslateStep { rule } => {
                obj.insert("rule", Value::from(*rule));
            }
            Outcome::MetaEncoded { relation } => {
                obj.insert("relation", Value::from(*relation));
            }
            Outcome::GuardAbort { resource } => {
                obj.insert("resource", Value::from(*resource));
            }
            Outcome::DeltaApplied { edits, rebuilt } => {
                obj.insert("edits", Value::from(*edits));
                obj.insert("rebuilt", Value::from(*rebuilt));
            }
            Outcome::Retracted { remaining } => {
                obj.insert("remaining", Value::from(*remaining));
            }
            Outcome::WalAppend { bytes, segment } | Outcome::Checkpoint { bytes, segment } => {
                obj.insert("bytes", Value::from(*bytes));
                obj.insert("segment", Value::from(*segment));
            }
            Outcome::Recovered {
                replayed,
                truncated,
            } => {
                obj.insert("replayed", Value::from(*replayed));
                obj.insert("truncated", Value::from(*truncated));
            }
            Outcome::Inserted | Outcome::AnnotationWritten => {}
        }
        if let Some(d) = &self.detail {
            obj.insert("detail", Value::from(d.as_str()));
        }
        Value::Object(obj)
    }

    /// One-line human rendering (used by `.trace`).
    pub fn render(&self) -> String {
        let mut line = format!("#{:<6} {:<24}", self.id, self.stage);
        if let Some(m) = &self.mapping {
            line.push_str(&format!(" {m:<6}"));
        }
        if let Some(fp) = self.binding_fp {
            line.push_str(&format!(" binding {fp:016x}"));
        }
        if let Some(t) = self.target {
            line.push_str(&format!(" -> node {t}"));
        }
        match &self.outcome {
            Outcome::Inserted => line.push_str("  inserted"),
            Outcome::PnfMerged { into } => line.push_str(&format!("  pnf-merged into {into}")),
            Outcome::CollisionSplit { fingerprint } => {
                line.push_str(&format!("  collision split (fp {fingerprint:016x})"))
            }
            Outcome::AnnotationWritten => line.push_str("  annotation written"),
            Outcome::AnnotationSuppressed { reason } => {
                line.push_str(&format!("  annotation suppressed ({reason})"))
            }
            Outcome::TranslateStep { rule } => line.push_str(&format!("  rule {rule}")),
            Outcome::MetaEncoded { relation } => line.push_str(&format!("  encoded {relation}")),
            Outcome::GuardAbort { resource } => {
                line.push_str(&format!("  guard abort ({resource})"))
            }
            Outcome::DeltaApplied { edits, rebuilt } => line.push_str(&format!(
                "  delta applied ({edits} edit(s), {rebuilt} class(es) rebuilt)"
            )),
            Outcome::Retracted { remaining } => {
                line.push_str(&format!("  retracted ({remaining} row(s) remain)"))
            }
            Outcome::WalAppend { bytes, segment } => {
                line.push_str(&format!("  wal append ({bytes} B, segment {segment})"))
            }
            Outcome::Checkpoint { bytes, segment } => {
                line.push_str(&format!("  checkpoint ({bytes} B, segment {segment})"))
            }
            Outcome::Recovered {
                replayed,
                truncated,
            } => line.push_str(&format!(
                "  recovered ({replayed} delta(s) replayed, {truncated} B truncated)"
            )),
        }
        if let Some(d) = &self.detail {
            line.push_str(&format!("  {d}"));
        }
        line
    }
}

/// Aggregate view of the journal, embedded in
/// [`crate::PipelineProfile::journal`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// Events recorded since the last reset (including dropped ones).
    pub recorded: u64,
    /// Events currently retained in the ring buffer.
    pub retained: u64,
    /// Events evicted by the ring bound.
    pub dropped: u64,
    /// Ring-buffer capacity.
    pub cap: u64,
    /// Retained events per outcome kind, sorted by kind.
    pub by_outcome: Vec<(String, u64)>,
    /// *Recorded* events per outcome kind since the last reset, sorted by
    /// kind — a running tally that survives ring-buffer eviction, so rare
    /// outcomes like `guard_abort` and `collision_split` stay visible even
    /// after high-volume events push them out of the buffer.
    pub recorded_by_outcome: Vec<(String, u64)>,
}

impl Summary {
    /// Structured JSON form (inverse of [`Summary::from_json`]).
    pub fn to_json(&self) -> Value {
        let mut by = Map::new();
        for (k, v) in &self.by_outcome {
            by.insert(k.clone(), Value::from(*v));
        }
        let mut recorded_by = Map::new();
        for (k, v) in &self.recorded_by_outcome {
            recorded_by.insert(k.clone(), Value::from(*v));
        }
        let mut obj = Map::new();
        obj.insert("recorded", Value::from(self.recorded));
        obj.insert("retained", Value::from(self.retained));
        obj.insert("dropped", Value::from(self.dropped));
        obj.insert("cap", Value::from(self.cap));
        obj.insert("by_outcome", Value::Object(by));
        obj.insert("recorded_by_outcome", Value::Object(recorded_by));
        Value::Object(obj)
    }

    /// Parse the structure produced by [`Summary::to_json`].
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let get = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("journal summary: missing integer field '{key}'"))
        };
        let parse_outcomes = |key: &str| -> Result<Vec<(String, u64)>, String> {
            let mut outcomes = Vec::new();
            if let Some(obj) = value.get(key).and_then(Value::as_object) {
                for (k, v) in obj.iter() {
                    let v = v.as_u64().ok_or_else(|| {
                        format!("journal summary: outcome '{k}' is not an integer")
                    })?;
                    outcomes.push((k.clone(), v));
                }
            }
            outcomes.sort();
            Ok(outcomes)
        };
        Ok(Summary {
            recorded: get("recorded")?,
            retained: get("retained")?,
            dropped: get("dropped")?,
            cap: get("cap")?,
            by_outcome: parse_outcomes("by_outcome")?,
            // Absent in pre-stats profiles — tolerate and default to empty.
            recorded_by_outcome: parse_outcomes("recorded_by_outcome")?,
        })
    }
}

// ---- The gate (mirrors the profile gate in crate::enabled). ----

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Is journal capture enabled? First call consults `DTR_JOURNAL` (values
/// `1`, `true`, `on`, case-insensitive); afterwards this is a single
/// relaxed atomic load — the *entire* hot-path cost of a disabled event
/// site, provided callers gate payload construction on it.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("DTR_JOURNAL")
        .map(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Force journal capture on or off, overriding `DTR_JOURNAL`.
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---- The ring buffer. ----

#[derive(Debug)]
struct Journal {
    cap: usize,
    buf: VecDeque<Event>,
    next_id: EventId,
    dropped: u64,
    /// Recorded events per outcome kind — NOT pruned on eviction, so the
    /// summary keeps exact totals for outcomes whose events were dropped.
    tally: HashMap<&'static str, u64>,
    /// `target node → event ids`, pruned on eviction.
    lineage: HashMap<u64, Vec<EventId>>,
    /// Fault-injection hook: when the event with this id is recorded, the
    /// flag is set (typically a budget's `cancel`). Fires once.
    trip: Option<(EventId, Arc<AtomicBool>)>,
}

impl Journal {
    fn new(cap: usize) -> Self {
        Journal {
            cap: cap.max(1),
            buf: VecDeque::new(),
            next_id: 0,
            dropped: 0,
            tally: HashMap::new(),
            lineage: HashMap::new(),
            trip: None,
        }
    }

    fn record(&mut self, mut event: Event) -> EventId {
        if self.buf.len() >= self.cap {
            if let Some(evicted) = self.buf.pop_front() {
                self.dropped += 1;
                if let Some(t) = evicted.target {
                    if let Some(ids) = self.lineage.get_mut(&t) {
                        ids.retain(|&id| id != evicted.id);
                        if ids.is_empty() {
                            self.lineage.remove(&t);
                        }
                    }
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        event.id = id;
        *self.tally.entry(event.outcome.kind()).or_insert(0) += 1;
        if let Some(t) = event.target {
            self.lineage.entry(t).or_default().push(id);
        }
        self.buf.push_back(event);
        if let Some((at, flag)) = &self.trip {
            if id >= *at {
                flag.store(true, Ordering::Relaxed);
                self.trip = None;
            }
        }
        id
    }

    fn summary(&self) -> Summary {
        let mut by: HashMap<&'static str, u64> = HashMap::new();
        for e in &self.buf {
            *by.entry(e.outcome.kind()).or_insert(0) += 1;
        }
        let mut by_outcome: Vec<(String, u64)> =
            by.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        by_outcome.sort();
        let mut recorded_by_outcome: Vec<(String, u64)> = self
            .tally
            .iter()
            .map(|(&k, &v)| (k.to_string(), v))
            .collect();
        recorded_by_outcome.sort();
        Summary {
            recorded: self.next_id,
            retained: self.buf.len() as u64,
            dropped: self.dropped,
            cap: self.cap as u64,
            by_outcome,
            recorded_by_outcome,
        }
    }
}

fn cap_from_env() -> usize {
    std::env::var("DTR_JOURNAL_CAP")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_CAP)
}

fn with_journal<R>(f: impl FnOnce(&mut Journal) -> R) -> R {
    static JOURNAL: Mutex<Option<Journal>> = Mutex::new(None);
    let mut guard = JOURNAL.lock().unwrap_or_else(|p| p.into_inner());
    let journal = guard.get_or_insert_with(|| Journal::new(cap_from_env()));
    f(journal)
}

// ---- Public recording / query API. ----

/// Record one event (the `id` field is assigned by the journal). A no-op
/// returning 0 while capture is disabled — but callers should check
/// [`enabled`] *before* building the event to keep the disabled path at one
/// atomic load.
pub fn record(event: Event) -> EventId {
    if !enabled() {
        return 0;
    }
    with_journal(|j| j.record(event))
}

/// The id the *next* recorded event will receive. Reports store this before
/// and after a pipeline stage to slice their own event window without
/// scanning the whole buffer.
pub fn next_event_id() -> EventId {
    if !enabled() {
        return 0;
    }
    with_journal(|j| j.next_id)
}

/// Clear all events and restart the sequence; the capacity is re-read from
/// `DTR_JOURNAL_CAP`. Any armed fault-injection trip is disarmed.
pub fn reset() {
    with_journal(|j| *j = Journal::new(cap_from_env()));
}

/// Fault injection: arm a one-shot trip that sets `flag` (typically a
/// budget's `cancel`) the moment the event with id `at` (or any later id)
/// is recorded. Used by `dtr-check --faults` to stop a run at a
/// deterministic, seed-derived point. Disarmed by [`reset`] or on firing.
pub fn arm_trip(at: EventId, flag: Arc<AtomicBool>) {
    with_journal(|j| j.trip = Some((at, flag)));
}

/// Disarm any armed fault-injection trip without clearing the journal.
pub fn disarm_trip() {
    with_journal(|j| j.trip = None);
}

/// Override the ring-buffer capacity (truncating oldest events if needed).
pub fn set_cap(cap: usize) {
    with_journal(|j| {
        j.cap = cap.max(1);
        while j.buf.len() > j.cap {
            if let Some(evicted) = j.buf.pop_front() {
                j.dropped += 1;
                if let Some(t) = evicted.target {
                    if let Some(ids) = j.lineage.get_mut(&t) {
                        ids.retain(|&id| id != evicted.id);
                        if ids.is_empty() {
                            j.lineage.remove(&t);
                        }
                    }
                }
            }
        }
    });
}

/// All retained events, oldest first.
pub fn events() -> Vec<Event> {
    with_journal(|j| j.buf.iter().cloned().collect())
}

/// Retained events with `start <= id < end` — a report's event window.
pub fn events_in(start: EventId, end: EventId) -> Vec<Event> {
    with_journal(|j| {
        j.buf
            .iter()
            .filter(|e| e.id >= start && e.id < end)
            .cloned()
            .collect()
    })
}

/// The lineage index entry of a target node: ids of every retained event
/// that targets it, oldest first.
pub fn lineage_of(target: u64) -> Vec<EventId> {
    with_journal(|j| j.lineage.get(&target).cloned().unwrap_or_default())
}

/// Retained events targeting a node, oldest first (index-backed).
pub fn events_for(target: u64) -> Vec<Event> {
    with_journal(|j| {
        let Some(ids) = j.lineage.get(&target) else {
            return Vec::new();
        };
        j.buf
            .iter()
            .filter(|e| ids.contains(&e.id))
            .cloned()
            .collect()
    })
}

/// Aggregate counts for the profile embedding.
pub fn summary() -> Summary {
    with_journal(|j| j.summary())
}

/// Every retained event as one compact JSON line (the exportable form).
pub fn to_jsonl() -> String {
    let mut out = String::new();
    for e in events() {
        out.push_str(&e.to_json().to_string());
        out.push('\n');
    }
    out
}

/// Convenience constructor so call sites stay one expression.
pub fn event(stage: &'static str, outcome: Outcome) -> Event {
    Event {
        id: 0,
        stage,
        mapping: None,
        binding_fp: None,
        target: None,
        outcome,
        detail: None,
    }
}

impl Event {
    /// Builder: attach the mapping context.
    pub fn mapping(mut self, name: impl std::fmt::Display) -> Self {
        self.mapping = Some(name.to_string());
        self
    }

    /// Builder: attach the source binding fingerprint (a grouping label —
    /// see [`Event::binding_fp`] for why collisions are benign).
    pub fn binding(mut self, fp: u64) -> Self {
        self.binding_fp = Some(fp);
        self
    }

    /// Builder: attach the target node.
    pub fn target(mut self, node: u64) -> Self {
        self.target = Some(node);
        self
    }

    /// Builder: attach free-form detail.
    pub fn detail(mut self, d: impl Into<String>) -> Self {
        self.detail = Some(d.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        crate::test_guard()
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _guard = guard();
        set_enabled(false);
        reset();
        record(event("exchange.insert_row", Outcome::Inserted).target(7));
        assert!(events().is_empty());
        assert_eq!(next_event_id(), 0);
        assert!(lineage_of(7).is_empty());
    }

    #[test]
    fn forced_binding_fp_collision_keeps_events_distinct() {
        let _guard = guard();
        set_enabled(true);
        reset();
        // Two different decisions sharing a binding fingerprint must stay
        // two events: identity is the unique `id`, never the fingerprint.
        record(
            event("exchange.insert_row", Outcome::Inserted)
                .binding(0xdead_beef)
                .target(1),
        );
        record(
            event("exchange.insert_row", Outcome::PnfMerged { into: 9 })
                .binding(0xdead_beef)
                .target(2),
        );
        set_enabled(false);
        let evs = events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].binding_fp, Some(0xdead_beef));
        assert_eq!(evs[1].binding_fp, Some(0xdead_beef));
        assert_ne!(evs[0].id, evs[1].id);
        assert_ne!(evs[0].outcome, evs[1].outcome);
    }

    #[test]
    fn ring_bound_evicts_oldest_and_prunes_lineage() {
        let _guard = guard();
        set_enabled(true);
        reset();
        set_cap(4);
        for i in 0..10u64 {
            record(event("exchange.insert_row", Outcome::Inserted).target(i % 2));
        }
        set_enabled(false);
        let evs = events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs.first().unwrap().id, 6);
        assert_eq!(evs.last().unwrap().id, 9);
        // Evicted events left the index; retained ones are findable.
        assert_eq!(lineage_of(0), vec![6, 8]);
        assert_eq!(lineage_of(1), vec![7, 9]);
        let s = summary();
        assert_eq!(s.recorded, 10);
        assert_eq!(s.retained, 4);
        assert_eq!(s.dropped, 6);
        assert_eq!(s.cap, 4);
        assert_eq!(s.by_outcome, vec![("inserted".to_string(), 4)]);
        // The recorded tally is not pruned by eviction.
        assert_eq!(s.recorded_by_outcome, vec![("inserted".to_string(), 10)]);
    }

    #[test]
    fn recorded_tally_survives_eviction_of_rare_outcomes() {
        let _guard = guard();
        set_enabled(true);
        reset();
        set_cap(4);
        // Two rare outcomes first...
        record(event(
            "exchange.insert_row",
            Outcome::CollisionSplit {
                fingerprint: 0xfeed,
            },
        ));
        record(event(
            "exchange.run_mapping",
            Outcome::GuardAbort { resource: "rows" },
        ));
        // ...then enough bulk traffic to evict them from the ring.
        for _ in 0..8u64 {
            record(event("exchange.insert_row", Outcome::Inserted));
        }
        set_enabled(false);
        let s = summary();
        assert_eq!(s.recorded, 10);
        assert_eq!(s.dropped, 6);
        // The retained view has lost the rare outcomes entirely...
        assert_eq!(s.by_outcome, vec![("inserted".to_string(), 4)]);
        // ...but the recorded tally still counts them.
        assert_eq!(
            s.recorded_by_outcome,
            vec![
                ("collision_split".to_string(), 1),
                ("guard_abort".to_string(), 1),
                ("inserted".to_string(), 8),
            ]
        );
    }

    #[test]
    fn event_windows_slice_without_scanning() {
        let _guard = guard();
        set_enabled(true);
        reset();
        let start = next_event_id();
        record(event("exchange.insert_row", Outcome::Inserted).mapping("m1"));
        record(
            event("exchange.insert_row", Outcome::PnfMerged { into: 3 })
                .mapping("m1")
                .target(3),
        );
        let end = next_event_id();
        record(event("exchange.insert_row", Outcome::Inserted).mapping("m2"));
        set_enabled(false);
        let window = events_in(start, end);
        assert_eq!(window.len(), 2);
        assert!(window.iter().all(|e| e.mapping.as_deref() == Some("m1")));
    }

    #[test]
    fn jsonl_lines_parse_and_carry_the_schema() {
        let _guard = guard();
        set_enabled(true);
        reset();
        record(
            event("exchange.insert_row", Outcome::Inserted)
                .mapping("m2")
                .binding(0xdead_beef)
                .target(42),
        );
        record(event(
            "exchange.annotate",
            Outcome::AnnotationSuppressed {
                reason: "already-present",
            },
        ));
        record(
            event(
                "mxql.translate",
                Outcome::TranslateStep {
                    rule: "expand-predicate",
                },
            )
            .detail("<e -> m -> e'> => Correspondence join"),
        );
        set_enabled(false);
        let jsonl = to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(
            first.get("stage").and_then(Value::as_str),
            Some("exchange.insert_row")
        );
        assert_eq!(first.get("mapping").and_then(Value::as_str), Some("m2"));
        assert_eq!(
            first.get("binding_fp").and_then(Value::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(first.get("target").and_then(Value::as_u64), Some(42));
        assert_eq!(
            first.get("outcome").and_then(Value::as_str),
            Some("inserted")
        );
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(
            second.get("reason").and_then(Value::as_str),
            Some("already-present")
        );
        let third: Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(
            third.get("rule").and_then(Value::as_str),
            Some("expand-predicate")
        );
        assert!(third.get("detail").is_some());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = Summary {
            recorded: 100,
            retained: 64,
            dropped: 36,
            cap: 64,
            by_outcome: vec![("inserted".to_string(), 40), ("pnf_merged".to_string(), 24)],
            recorded_by_outcome: vec![
                ("guard_abort".to_string(), 2),
                ("inserted".to_string(), 70),
                ("pnf_merged".to_string(), 28),
            ],
        };
        let round = Summary::from_json(&s.to_json()).unwrap();
        assert_eq!(round, s);
        assert!(Summary::from_json(&serde_json::json!({})).is_err());
        // Pre-stats JSON without the recorded tally still parses.
        let mut legacy = Map::new();
        if let Some(obj) = s.to_json().as_object() {
            for (k, v) in obj.iter() {
                if k != "recorded_by_outcome" {
                    legacy.insert(k.clone(), v.clone());
                }
            }
        }
        let parsed = Summary::from_json(&Value::Object(legacy)).unwrap();
        assert!(parsed.recorded_by_outcome.is_empty());
    }
}
