//! The type system of the nested relational model (Section 4.1).
//!
//! The model extends the relational model with union (choice) types, nested
//! records and sets, mirroring the common model used by the data exchange
//! literature. Three extra atomic types — [`AtomicType::Database`],
//! [`AtomicType::Mapping`] and [`AtomicType::Element`] — are introduced in
//! Section 5 so that meta-data can flow through queries as regular values.

use crate::label::Label;
use std::fmt;

/// Atomic (scalar) types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicType {
    /// Character data. The paper's examples use `String` almost exclusively.
    String,
    /// 64-bit signed integers.
    Integer,
    /// 64-bit floating point numbers.
    Float,
    /// Booleans.
    Boolean,
    /// Meta-data: the name of a data source (Section 5).
    Database,
    /// Meta-data: the identity of a mapping (Section 5).
    Mapping,
    /// Meta-data: a schema element, denoted by its canonical path (Section 5).
    Element,
}

impl AtomicType {
    /// Short lowercase name used in schema dumps and the metastore `type`
    /// column (Figure 5 abbreviates `String` as `Str`).
    pub fn name(self) -> &'static str {
        match self {
            AtomicType::String => "Str",
            AtomicType::Integer => "Int",
            AtomicType::Float => "Float",
            AtomicType::Boolean => "Bool",
            AtomicType::Database => "Database",
            AtomicType::Mapping => "Mapping",
            AtomicType::Element => "Element",
        }
    }

    /// Parses the name produced by [`AtomicType::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "Str" | "String" => AtomicType::String,
            "Int" | "Integer" => AtomicType::Integer,
            "Float" => AtomicType::Float,
            "Bool" | "Boolean" => AtomicType::Boolean,
            "Database" => AtomicType::Database,
            "Mapping" => AtomicType::Mapping,
            "Element" => AtomicType::Element,
            _ => return None,
        })
    }

    /// True for the three meta-data types introduced by Section 5.
    pub fn is_meta(self) -> bool {
        matches!(
            self,
            AtomicType::Database | AtomicType::Mapping | AtomicType::Element
        )
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A type of the nested relational model.
///
/// `Rcd[A1:t1, ..., Ak:tk]`, `Choice[A1:t1, ..., Ak:tk]` and `Set of t`
/// follow the grammar of Section 4.1 exactly. A schema is a list of root
/// elements, each a `(Label, Type)` pair — see [`crate::schema::Schema`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// An atomic type.
    Atomic(AtomicType),
    /// `Rcd[A1:t1, ..., Ak:tk]` — a tuple of labelled fields.
    Record(Vec<(Label, Type)>),
    /// `Choice[A1:t1, ..., Ak:tk]` — a tagged union; a value carries exactly
    /// one of the alternatives.
    Choice(Vec<(Label, Type)>),
    /// `Set of t` — a repeatable element; `t` must be a complex type in the
    /// paper, which we do not enforce structurally but validate in
    /// [`Type::validate`].
    Set(Box<Type>),
}

impl Type {
    /// Shorthand for `Type::Atomic(AtomicType::String)`.
    pub fn string() -> Type {
        Type::Atomic(AtomicType::String)
    }

    /// Shorthand for `Type::Atomic(AtomicType::Integer)`.
    pub fn integer() -> Type {
        Type::Atomic(AtomicType::Integer)
    }

    /// Shorthand for `Type::Atomic(AtomicType::Float)`.
    pub fn float() -> Type {
        Type::Atomic(AtomicType::Float)
    }

    /// Builds a record type from `(label, type)` pairs.
    pub fn record<L: Into<Label>>(fields: Vec<(L, Type)>) -> Type {
        Type::Record(fields.into_iter().map(|(l, t)| (l.into(), t)).collect())
    }

    /// Builds a choice type from `(label, type)` pairs.
    pub fn choice<L: Into<Label>>(alts: Vec<(L, Type)>) -> Type {
        Type::Choice(alts.into_iter().map(|(l, t)| (l.into(), t)).collect())
    }

    /// Builds a set type.
    pub fn set(inner: Type) -> Type {
        Type::Set(Box::new(inner))
    }

    /// A `Set of Rcd[...]` with atomic fields — the paper's notion of a
    /// *relation* (Section 4.1).
    pub fn relation<L: Into<Label>>(fields: Vec<(L, AtomicType)>) -> Type {
        Type::set(Type::record(
            fields
                .into_iter()
                .map(|(l, t)| (l, Type::Atomic(t)))
                .collect(),
        ))
    }

    /// True if the type is atomic.
    pub fn is_atomic(&self) -> bool {
        matches!(self, Type::Atomic(_))
    }

    /// Returns the atomic type if this is one.
    pub fn as_atomic(&self) -> Option<AtomicType> {
        match self {
            Type::Atomic(a) => Some(*a),
            _ => None,
        }
    }

    /// True if the type is `Set of Rcd[..atomic..]`, i.e. a relation.
    pub fn is_relation(&self) -> bool {
        match self {
            Type::Set(inner) => match &**inner {
                Type::Record(fields) => fields.iter().all(|(_, t)| t.is_atomic()),
                _ => false,
            },
            _ => false,
        }
    }

    /// Validates the structural well-formedness constraints of Section 4.1:
    /// record/choice attribute labels must be distinct and non-`*`, and the
    /// element type of a set must be a complex type.
    pub fn validate(&self) -> Result<(), TypeError> {
        match self {
            Type::Atomic(_) => Ok(()),
            Type::Record(fields) | Type::Choice(fields) => {
                let mut seen: Vec<&str> = Vec::with_capacity(fields.len());
                for (label, ty) in fields {
                    if label.is_star() {
                        return Err(TypeError::StarAttribute);
                    }
                    if seen.contains(&label.as_str()) {
                        return Err(TypeError::DuplicateAttribute(label.clone()));
                    }
                    seen.push(label.as_str());
                    ty.validate()?;
                }
                Ok(())
            }
            Type::Set(inner) => {
                if inner.is_atomic() {
                    return Err(TypeError::AtomicSetElement);
                }
                inner.validate()
            }
        }
    }

    /// The types *directly used* in this type (Section 4.1): the field types
    /// of a record/choice or the element type of a set.
    pub fn directly_used(&self) -> Vec<(Label, &Type)> {
        match self {
            Type::Atomic(_) => Vec::new(),
            Type::Record(fields) | Type::Choice(fields) => {
                fields.iter().map(|(l, t)| (l.clone(), t)).collect()
            }
            Type::Set(inner) => vec![(Label::star(), &**inner)],
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Atomic(a) => write!(f, "{a}"),
            Type::Record(fields) => {
                f.write_str("Rcd[")?;
                for (i, (l, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{l}:{t}")?;
                }
                f.write_str("]")
            }
            Type::Choice(fields) => {
                f.write_str("Choice[")?;
                for (i, (l, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{l}:{t}")?;
                }
                f.write_str("]")
            }
            Type::Set(inner) => write!(f, "Set of {inner}"),
        }
    }
}

/// Structural well-formedness violations of the type grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeError {
    /// A record or choice declared the same attribute twice.
    DuplicateAttribute(Label),
    /// A record or choice used the reserved `*` attribute name.
    StarAttribute,
    /// A `Set of t` where `t` is atomic; the paper requires complex element
    /// types.
    AtomicSetElement,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateAttribute(l) => {
                write!(f, "duplicate attribute label `{l}` in complex type")
            }
            TypeError::StarAttribute => {
                write!(f, "`*` is reserved for implicit set-member labels")
            }
            TypeError::AtomicSetElement => {
                write!(f, "the element type of a Set must be a complex type")
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn estates_type() -> Type {
        // Portal.estates of Figure 1.
        Type::relation(vec![
            ("hid", AtomicType::String),
            ("stories", AtomicType::String),
            ("value", AtomicType::String),
            ("contact", AtomicType::String),
        ])
    }

    #[test]
    fn relation_shape() {
        let t = estates_type();
        assert!(t.is_relation());
        assert!(t.validate().is_ok());
        assert_eq!(
            t.to_string(),
            "Set of Rcd[hid:Str, stories:Str, value:Str, contact:Str]"
        );
    }

    #[test]
    fn choice_display_and_validation() {
        // agents.title of Figure 1: Choice of name | firm.
        let t = Type::choice(vec![("name", Type::string()), ("firm", Type::string())]);
        assert_eq!(t.to_string(), "Choice[name:Str, firm:Str]");
        assert!(t.validate().is_ok());
        assert!(!t.is_relation());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let t = Type::record(vec![("a", Type::string()), ("a", Type::integer())]);
        assert_eq!(
            t.validate(),
            Err(TypeError::DuplicateAttribute(Label::new("a")))
        );
    }

    #[test]
    fn star_attribute_rejected() {
        let t = Type::record(vec![("*", Type::string())]);
        assert_eq!(t.validate(), Err(TypeError::StarAttribute));
    }

    #[test]
    fn atomic_set_rejected() {
        let t = Type::set(Type::string());
        assert_eq!(t.validate(), Err(TypeError::AtomicSetElement));
    }

    #[test]
    fn nested_validation_recurses() {
        let bad = Type::record(vec![("inner", Type::set(Type::integer()))]);
        assert_eq!(bad.validate(), Err(TypeError::AtomicSetElement));
    }

    #[test]
    fn directly_used_of_set_is_star() {
        let t = estates_type();
        let used = t.directly_used();
        assert_eq!(used.len(), 1);
        assert!(used[0].0.is_star());
    }

    #[test]
    fn atomic_type_names_round_trip() {
        for a in [
            AtomicType::String,
            AtomicType::Integer,
            AtomicType::Float,
            AtomicType::Boolean,
            AtomicType::Database,
            AtomicType::Mapping,
            AtomicType::Element,
        ] {
            assert_eq!(AtomicType::parse(a.name()), Some(a));
        }
        assert_eq!(AtomicType::parse("Rcd"), None);
        assert!(AtomicType::Mapping.is_meta());
        assert!(!AtomicType::String.is_meta());
    }
}
