//! Human-readable tree renderings of instances, in the spirit of Figure 3.

use crate::instance::{Instance, NodeData, NodeId};
use crate::schema::Schema;
use std::fmt::Write;

/// Options for [`render_instance`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RenderOptions {
    /// Show the element annotation (`<eN>`) next to each value, as in
    /// Figure 3's angle-bracket annotations.
    pub show_elements: bool,
    /// Show the mapping annotation (`{m2,m3}`) next to each value, as in
    /// Figure 3's curly-bracket annotations.
    pub show_mappings: bool,
}

impl RenderOptions {
    /// Show both annotation kinds — the full Figure 3 rendering.
    pub fn annotated() -> Self {
        RenderOptions {
            show_elements: true,
            show_mappings: true,
        }
    }
}

/// Renders the whole instance as an indented tree. When `schema` is given,
/// element annotations are printed with their `eN` names from that schema.
pub fn render_instance(inst: &Instance, schema: Option<&Schema>, opts: RenderOptions) -> String {
    let mut out = String::new();
    for &root in inst.roots() {
        render_node(inst, root, 0, schema, opts, &mut out);
    }
    out
}

fn render_node(
    inst: &Instance,
    id: NodeId,
    depth: usize,
    schema: Option<&Schema>,
    opts: RenderOptions,
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let node = inst.node(id);
    match &node.data {
        NodeData::Atomic(v) => {
            let _ = write!(out, "{}: \"{}\"", node.label, v);
        }
        NodeData::Record(_) => {
            let _ = write!(out, "{}", node.label);
        }
        NodeData::Choice(_) => {
            let _ = write!(out, "{} (choice)", node.label);
        }
        NodeData::Set(kids) => {
            let _ = write!(out, "{} ({} members)", node.label, kids.len());
        }
    }
    let annot = inst.annotation(id);
    if opts.show_elements {
        if let Some(e) = annot.element {
            // With a schema, annotate with the canonical path as well as
            // the Figure 3-style `<eN>` id.
            match schema {
                Some(s) => {
                    let _ = write!(out, "  <{e} {}>", s.path(e));
                }
                None => {
                    let _ = write!(out, "  <{e}>");
                }
            }
        }
    }
    if opts.show_mappings && !annot.mappings.is_empty() {
        let names: Vec<&str> = annot.mappings.iter().map(|m| m.as_str()).collect();
        let _ = write!(out, "  {{{}}}", names.join(","));
    }
    out.push('\n');
    for &c in inst.children(id) {
        render_node(inst, c, depth + 1, schema, opts, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Value;
    use crate::value::MappingName;

    #[test]
    fn render_shows_structure_and_annotations() {
        let mut inst = Instance::new("Pdb");
        let root = inst.install_root(
            "contacts",
            Value::set(vec![Value::record(vec![
                ("title", Value::str("HomeGain")),
                ("phone", Value::str("18009468501")),
            ])]),
        );
        let member = inst.set_members(root).unwrap()[0];
        let title = inst.child_by_label(member, "title").unwrap();
        inst.add_mapping(title, MappingName::new("m2"));
        inst.add_mapping(title, MappingName::new("m3"));

        let plain = render_instance(&inst, None, RenderOptions::default());
        assert!(plain.contains("contacts (1 members)"));
        assert!(plain.contains("title: \"HomeGain\""));
        assert!(!plain.contains("{m2,m3}"));

        let annotated = render_instance(&inst, None, RenderOptions::annotated());
        assert!(annotated.contains("{m2,m3}"));
    }

    #[test]
    fn render_with_schema_shows_paths() {
        use crate::schema::Schema;
        use crate::types::{AtomicType, Type};
        let schema = Schema::build(
            "Pdb",
            vec![(
                "contacts",
                Type::relation(vec![
                    ("title", AtomicType::String),
                    ("phone", AtomicType::String),
                ]),
            )],
        )
        .unwrap();
        let mut inst = Instance::new("Pdb");
        inst.install_root(
            "contacts",
            Value::set(vec![Value::record(vec![
                ("title", Value::str("HomeGain")),
                ("phone", Value::str("1")),
            ])]),
        );
        inst.annotate_elements(&schema).unwrap();
        let s = render_instance(&inst, Some(&schema), RenderOptions::annotated());
        assert!(s.contains("/contacts/title"), "{s}");
        assert!(s.contains("<e0 "), "{s}");
    }

    #[test]
    fn render_indents_by_depth() {
        let mut inst = Instance::new("X");
        inst.install_root(
            "a",
            Value::record(vec![("b", Value::record(vec![("c", Value::str("v"))]))]),
        );
        let s = render_instance(&inst, None, RenderOptions::default());
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("  b"));
        assert!(lines[2].starts_with("    c"));
    }
}
