//! Schemas as element trees (Definition 4.1).
//!
//! A schema is a pair `<E, f_parent>`: a set of label-type pairs (the
//! *schema elements*) and a total parent function. Because types nest, a
//! schema is a forest whose roots are the schema's root elements; we store it
//! as an arena of [`Element`] nodes addressed by [`ElementId`].
//!
//! Every schema belongs to a named data source (database), mirroring the
//! paper's convention that "each data source has an instance and a schema ...
//! each has a unique name assigned".

use crate::label::Label;
use crate::types::{AtomicType, Type, TypeError};
use std::collections::HashMap;
use std::fmt;

/// Index of a schema element inside its [`Schema`] arena.
///
/// The paper's figures name elements `e0, e1, ...`; [`ElementId::name`]
/// renders that spelling.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub u32);

impl ElementId {
    /// Arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The `eN` spelling used in the paper's figures.
    pub fn name(self) -> String {
        format!("e{}", self.0)
    }
}

impl fmt::Debug for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The structural kind of a schema element. This is the "type" column of the
/// metastore's `Element` relation (Figure 5): `Rcd`, `Choice`, `Set` or an
/// atomic type name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// Atomic leaf element.
    Atomic(AtomicType),
    /// Record element; children are its fields.
    Record,
    /// Choice (union) element; children are its alternatives.
    Choice,
    /// Set element; single child is the `*` member element.
    Set,
}

impl ElementKind {
    /// Name used in schema dumps and the metastore.
    pub fn name(self) -> &'static str {
        match self {
            ElementKind::Atomic(a) => a.name(),
            ElementKind::Record => "Rcd",
            ElementKind::Choice => "Choice",
            ElementKind::Set => "Set",
        }
    }

    /// Parses the output of [`ElementKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "Rcd" => ElementKind::Record,
            "Choice" => ElementKind::Choice,
            "Set" => ElementKind::Set,
            other => ElementKind::Atomic(AtomicType::parse(other)?),
        })
    }
}

impl fmt::Display for ElementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A schema element: a label-kind pair plus its position in the tree.
#[derive(Clone, Debug)]
pub struct Element {
    /// The element's label (attribute name, or `*` for set members).
    pub label: Label,
    /// Structural kind.
    pub kind: ElementKind,
    /// Parent element, or `None` for root elements (`f_parent(e) = null`).
    pub parent: Option<ElementId>,
    /// Child elements in declaration order.
    pub children: Vec<ElementId>,
}

/// A schema: a named forest of elements.
#[derive(Clone, Debug)]
pub struct Schema {
    name: String,
    elements: Vec<Element>,
    roots: Vec<ElementId>,
}

impl Schema {
    /// Builds a schema for database `name` from root `(label, type)` pairs.
    ///
    /// Validates each root type per Section 4.1 and rejects duplicate root
    /// labels.
    pub fn build<L: Into<Label>>(
        name: impl Into<String>,
        roots: Vec<(L, Type)>,
    ) -> Result<Schema, SchemaError> {
        let mut schema = Schema {
            name: name.into(),
            elements: Vec::new(),
            roots: Vec::new(),
        };
        let mut seen_roots: Vec<Label> = Vec::new();
        for (label, ty) in roots {
            let label = label.into();
            if seen_roots.contains(&label) {
                return Err(SchemaError::DuplicateRoot(label));
            }
            ty.validate().map_err(SchemaError::Type)?;
            seen_roots.push(label.clone());
            let id = schema.add_subtree(label, &ty, None);
            schema.roots.push(id);
        }
        Ok(schema)
    }

    fn add_subtree(&mut self, label: Label, ty: &Type, parent: Option<ElementId>) -> ElementId {
        let kind = match ty {
            Type::Atomic(a) => ElementKind::Atomic(*a),
            Type::Record(_) => ElementKind::Record,
            Type::Choice(_) => ElementKind::Choice,
            Type::Set(_) => ElementKind::Set,
        };
        let id = ElementId(self.elements.len() as u32);
        self.elements.push(Element {
            label,
            kind,
            parent,
            children: Vec::new(),
        });
        for (child_label, child_ty) in ty.directly_used() {
            let child_id = self.add_subtree(child_label, child_ty, Some(id));
            self.elements[id.index()].children.push(child_id);
        }
        id
    }

    /// The database name this schema belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Root element ids.
    pub fn roots(&self) -> &[ElementId] {
        &self.roots
    }

    /// Number of schema elements (the paper reports source schemas of ~55
    /// elements and a 135-element portal schema).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the schema has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Access an element by id. Panics on a foreign id; use
    /// [`Schema::get`] for a fallible lookup.
    pub fn element(&self, id: ElementId) -> &Element {
        &self.elements[id.index()]
    }

    /// Fallible element lookup.
    pub fn get(&self, id: ElementId) -> Option<&Element> {
        self.elements.get(id.index())
    }

    /// Iterates over `(id, element)` pairs in id order.
    pub fn elements(&self) -> impl Iterator<Item = (ElementId, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, e)| (ElementId(i as u32), e))
    }

    /// `f_parent` of Definition 4.1.
    pub fn parent(&self, id: ElementId) -> Option<ElementId> {
        self.element(id).parent
    }

    /// The child of `id` with the given label, if any. For set elements the
    /// single child has label `*`.
    pub fn child(&self, id: ElementId, label: &str) -> Option<ElementId> {
        self.element(id)
            .children
            .iter()
            .copied()
            .find(|&c| self.element(c).label == label)
    }

    /// The `*` member element of a set element.
    pub fn set_member(&self, id: ElementId) -> Option<ElementId> {
        if self.element(id).kind != ElementKind::Set {
            return None;
        }
        self.element(id).children.first().copied()
    }

    /// Finds a root element by label.
    pub fn root(&self, label: &str) -> Option<ElementId> {
        self.roots
            .iter()
            .copied()
            .find(|&r| self.element(r).label == label)
    }

    /// The canonical slash path of an element, omitting implicit `*`
    /// segments: e.g. `/Portal/estates/value` for element `e35` of Figure 2.
    pub fn path(&self, id: ElementId) -> String {
        let mut segments: Vec<&str> = Vec::new();
        let mut cur = Some(id);
        while let Some(e) = cur {
            let el = self.element(e);
            if !el.label.is_star() {
                segments.push(el.label.as_str());
            }
            cur = el.parent;
        }
        segments.reverse();
        let mut out = String::with_capacity(segments.iter().map(|s| s.len() + 1).sum());
        for s in segments {
            out.push('/');
            out.push_str(s);
        }
        out
    }

    /// Resolves a slash path to an element.
    ///
    /// Accepts both the canonical `*`-free spelling and spellings that name
    /// an extra segment under a set element (the paper writes both
    /// `/Portal/estates/stories` and `/Portal/estates/estate/stories`): when
    /// descending from a set element, the implicit `*` member is traversed
    /// transparently, and a segment that fails to match a child of a set
    /// member's record is retried as a "documentation" segment and skipped.
    pub fn resolve_path(&self, path: &str) -> Option<ElementId> {
        let segments: Vec<&str> = path
            .split('/')
            .filter(|s| !s.is_empty() && *s != "*")
            .collect();
        let (first, rest) = segments.split_first()?;
        let root = self.root(first)?;
        self.resolve_from(root, rest)
    }

    fn resolve_from(&self, mut cur: ElementId, segs: &[&str]) -> Option<ElementId> {
        let Some((first, rest)) = segs.split_first() else {
            return Some(cur);
        };
        // Transparently descend through set members.
        while self.element(cur).kind == ElementKind::Set {
            cur = self.set_member(cur)?;
        }
        if let Some(c) = self.child(cur, first) {
            if let Some(r) = self.resolve_from(c, rest) {
                return Some(r);
            }
        }
        // Tolerate a documentation segment that names the record under a set
        // (the `estate` in Example 5.6's `/Portal/estates/estate/stories`):
        // at a `*`-labelled record a non-matching segment is skipped —
        // but only mid-path, so that a bogus trailing segment still fails.
        if self.element(cur).label.is_star() && !rest.is_empty() {
            return self.resolve_from(cur, rest);
        }
        None
    }

    /// Reconstructs the [`Type`] of an element from the arena.
    pub fn type_of(&self, id: ElementId) -> Type {
        let el = self.element(id);
        match el.kind {
            ElementKind::Atomic(a) => Type::Atomic(a),
            ElementKind::Record => Type::Record(
                el.children
                    .iter()
                    .map(|&c| (self.element(c).label.clone(), self.type_of(c)))
                    .collect(),
            ),
            ElementKind::Choice => Type::Choice(
                el.children
                    .iter()
                    .map(|&c| (self.element(c).label.clone(), self.type_of(c)))
                    .collect(),
            ),
            ElementKind::Set => {
                let member = el.children.first().expect("set element has a member");
                Type::Set(Box::new(self.type_of(*member)))
            }
        }
    }

    /// True if the element is a *relation* in the paper's sense: a
    /// `Set of Rcd[..atomic..]`.
    pub fn is_relation(&self, id: ElementId) -> bool {
        self.type_of(id).is_relation()
    }

    /// All atomic (leaf) elements.
    pub fn atomic_elements(&self) -> Vec<ElementId> {
        self.elements()
            .filter(|(_, e)| matches!(e.kind, ElementKind::Atomic(_)))
            .map(|(id, _)| id)
            .collect()
    }

    /// Depth of an element (roots have depth 0).
    pub fn depth(&self, id: ElementId) -> usize {
        let mut d = 0;
        let mut cur = self.element(id).parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.element(p).parent;
        }
        d
    }

    /// Emits a Graphviz `dot` rendering of the schema forest — the shape of
    /// Figure 2 in the paper.
    pub fn to_graphviz(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n  rankdir=TB;\n", self.name));
        for (id, el) in self.elements() {
            out.push_str(&format!(
                "  {} [label=\"{}\\n{}:{}\"];\n",
                id.name(),
                id.name(),
                el.label,
                el.kind
            ));
        }
        for (id, el) in self.elements() {
            for &c in &el.children {
                out.push_str(&format!("  {} -> {};\n", id.name(), c.name()));
            }
        }
        out.push_str("}\n");
        out
    }

    /// A map from canonical path to element id, useful for bulk lookups.
    pub fn path_index(&self) -> HashMap<String, ElementId> {
        let mut map = HashMap::with_capacity(self.elements.len());
        for (id, _) in self.elements() {
            map.insert(self.path(id), id);
        }
        map
    }
}

/// Errors raised while constructing a schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// Two roots with the same label.
    DuplicateRoot(Label),
    /// A root type failed structural validation.
    Type(TypeError),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateRoot(l) => write!(f, "duplicate schema root `{l}`"),
            SchemaError::Type(e) => write!(f, "invalid type: {e}"),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Pdb portal schema of Figures 1-2.
    fn portal_schema() -> Schema {
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    #[test]
    fn portal_element_count_matches_figure_2() {
        // Figure 2 shows Pdb as elements e30..e40 - eleven elements.
        let s = portal_schema();
        assert_eq!(s.len(), 11);
        assert_eq!(s.roots().len(), 1);
        assert_eq!(s.element(s.roots()[0]).label, "Portal");
    }

    #[test]
    fn parent_function_total() {
        let s = portal_schema();
        let root = s.roots()[0];
        assert_eq!(s.parent(root), None);
        for (id, _) in s.elements() {
            if id != root {
                assert!(s.parent(id).is_some());
            }
        }
    }

    #[test]
    fn canonical_paths() {
        let s = portal_schema();
        let estates = s.child(s.roots()[0], "estates").unwrap();
        assert_eq!(s.path(estates), "/Portal/estates");
        let member = s.set_member(estates).unwrap();
        // `*` segments are omitted from canonical paths.
        assert_eq!(s.path(member), "/Portal/estates");
        let value = s.child(member, "value").unwrap();
        assert_eq!(s.path(value), "/Portal/estates/value");
    }

    #[test]
    fn resolve_path_canonical_and_paper_spelling() {
        let s = portal_schema();
        let canonical = s.resolve_path("/Portal/estates/stories").unwrap();
        // Example 5.6 writes `/Portal/estates/estate/stories`.
        let paper = s.resolve_path("/Portal/estates/estate/stories").unwrap();
        assert_eq!(canonical, paper);
        assert_eq!(s.element(canonical).label, "stories");
        assert!(s.resolve_path("/Portal/none").is_none());
        assert!(s.resolve_path("/Nope").is_none());
    }

    #[test]
    fn resolve_path_with_explicit_star() {
        let s = portal_schema();
        let a = s.resolve_path("/Portal/estates/*/value").unwrap();
        let b = s.resolve_path("/Portal/estates/value").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn type_round_trip() {
        let s = portal_schema();
        let root = s.roots()[0];
        let t = s.type_of(root);
        let rebuilt = Schema::build("Pdb", vec![("Portal", t)]).unwrap();
        assert_eq!(rebuilt.len(), s.len());
        for (id, el) in s.elements() {
            let r = rebuilt.element(id);
            assert_eq!(r.label, el.label);
            assert_eq!(r.kind, el.kind);
        }
    }

    #[test]
    fn relations_detected() {
        let s = portal_schema();
        let estates = s.resolve_path("/Portal/estates").unwrap();
        assert!(s.is_relation(estates));
        assert!(!s.is_relation(s.roots()[0]));
    }

    #[test]
    fn duplicate_root_rejected() {
        let err =
            Schema::build("X", vec![("A", Type::string()), ("A", Type::integer())]).unwrap_err();
        assert_eq!(err, SchemaError::DuplicateRoot(Label::new("A")));
    }

    #[test]
    fn graphviz_contains_all_elements() {
        let s = portal_schema();
        let dot = s.to_graphviz();
        assert!(dot.contains("digraph \"Pdb\""));
        for (id, _) in s.elements() {
            assert!(dot.contains(&id.name()));
        }
    }

    #[test]
    fn depth_and_path_index() {
        let s = portal_schema();
        let root = s.roots()[0];
        assert_eq!(s.depth(root), 0);
        let value = s.resolve_path("/Portal/estates/value").unwrap();
        assert_eq!(s.depth(value), 3); // Portal / estates / * / value
        let idx = s.path_index();
        assert_eq!(idx.get("/Portal/estates/value"), Some(&value));
    }

    #[test]
    fn choice_elements() {
        // USdb agents.title : Choice of name | firm (Figure 1).
        let s = Schema::build(
            "USdb",
            vec![(
                "US",
                Type::record(vec![(
                    "agents",
                    Type::set(Type::record(vec![
                        ("aid", Type::string()),
                        (
                            "title",
                            Type::choice(vec![("name", Type::string()), ("firm", Type::string())]),
                        ),
                        ("phone", Type::string()),
                    ])),
                )]),
            )],
        )
        .unwrap();
        let firm = s.resolve_path("/US/agents/title/firm").unwrap();
        assert_eq!(s.element(firm).label, "firm");
        let title = s.parent(firm).unwrap();
        assert_eq!(s.element(title).kind, ElementKind::Choice);
    }

    #[test]
    fn element_kind_name_round_trip() {
        for k in [
            ElementKind::Record,
            ElementKind::Choice,
            ElementKind::Set,
            ElementKind::Atomic(AtomicType::String),
        ] {
            assert_eq!(ElementKind::parse(k.name()), Some(k));
        }
        assert_eq!(ElementKind::parse("Bogus"), None);
    }
}
