//! Atomic values, including the meta-data values of Section 5.
//!
//! Besides ordinary scalars, MXQL queries manipulate values of the three
//! meta-data types: `Database` (a source name), `Mapping` (a mapping
//! identity) and `Element` (a schema element, denoted `db` + canonical path).

use crate::types::AtomicType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The identity of a mapping, e.g. `m1` in Figure 1. Mapping names are
/// unique within a mapping setting.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MappingName(pub String);

impl MappingName {
    /// Creates a mapping name.
    pub fn new(s: impl Into<String>) -> Self {
        MappingName(s.into())
    }

    /// Name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MappingName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for MappingName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MappingName({})", self.0)
    }
}

impl From<&str> for MappingName {
    fn from(s: &str) -> Self {
        MappingName::new(s)
    }
}

/// A value of type `Element`: a schema element identified by its database
/// name and canonical slash path, e.g. `USdb : /US/agents/title/firm`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ElementRef {
    /// The data source the element belongs to.
    pub db: String,
    /// Canonical slash path (no `*` segments, leading `/`).
    pub path: String,
}

impl ElementRef {
    /// Creates an element reference, canonicalizing the path to carry a
    /// leading slash and no `*` segments.
    pub fn new(db: impl Into<String>, path: impl AsRef<str>) -> Self {
        ElementRef {
            db: db.into(),
            path: canonical_path(path.as_ref()),
        }
    }
}

/// Canonicalizes a slash path: ensures a leading `/`, strips `*` segments
/// and empty segments.
pub fn canonical_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len() + 1);
    for seg in path.split('/') {
        if seg.is_empty() || seg == "*" {
            continue;
        }
        out.push('/');
        out.push_str(seg);
    }
    out
}

impl fmt::Display for ElementRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.db, self.path)
    }
}

/// An atomic value.
#[derive(Clone, Debug)]
pub enum AtomicValue {
    /// String value.
    Str(String),
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// Meta-data: a database name (Section 5).
    Db(String),
    /// Meta-data: a mapping identity (Section 5).
    Map(MappingName),
    /// Meta-data: a schema element (Section 5).
    Elem(ElementRef),
}

impl AtomicValue {
    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Self {
        AtomicValue::Str(s.into())
    }

    /// The dynamic type of the value.
    pub fn atomic_type(&self) -> AtomicType {
        match self {
            AtomicValue::Str(_) => AtomicType::String,
            AtomicValue::Int(_) => AtomicType::Integer,
            AtomicValue::Float(_) => AtomicType::Float,
            AtomicValue::Bool(_) => AtomicType::Boolean,
            AtomicValue::Db(_) => AtomicType::Database,
            AtomicValue::Map(_) => AtomicType::Mapping,
            AtomicValue::Elem(_) => AtomicType::Element,
        }
    }

    /// True if the value is assignable to the given declared type.
    ///
    /// Integers are accepted where floats are expected (the usual numeric
    /// widening); everything else must match exactly.
    pub fn conforms_to(&self, ty: AtomicType) -> bool {
        self.atomic_type() == ty
            || (ty == AtomicType::Float && self.atomic_type() == AtomicType::Integer)
    }

    /// Returns the string content if this is a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AtomicValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AtomicValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Compares two atomic values for query predicates (`<`, `>`, `≤`, `≥`,
    /// `=` — Section 4.2). Values of incomparable types return `None`.
    pub fn compare(&self, other: &AtomicValue) -> Option<Ordering> {
        use AtomicValue::*;
        match (self, other) {
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Db(a), Db(b)) => Some(a.cmp(b)),
            (Map(a), Map(b)) => Some(a.cmp(b)),
            (Elem(a), Elem(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Renders the value the way the paper's examples print constants:
    /// strings (and meta-values) in single quotes, numbers bare.
    pub fn display_quoted(&self) -> String {
        match self {
            AtomicValue::Str(s) => format!("'{s}'"),
            AtomicValue::Int(i) => i.to_string(),
            AtomicValue::Float(x) => x.to_string(),
            AtomicValue::Bool(b) => b.to_string(),
            AtomicValue::Db(d) => format!("'{d}'"),
            AtomicValue::Map(m) => format!("'{m}'"),
            AtomicValue::Elem(e) => format!("'{}':'{}'", e.db, e.path),
        }
    }
}

impl PartialEq for AtomicValue {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

impl Eq for AtomicValue {}

impl Hash for AtomicValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            AtomicValue::Str(s) => {
                0u8.hash(state);
                s.hash(state);
            }
            // Int and Float that are numerically equal may still hash
            // differently only if they compare unequal; hash ints as floats
            // when they fit losslessly so that `1 == 1.0` implies equal
            // hashes.
            AtomicValue::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            AtomicValue::Float(x) => {
                1u8.hash(state);
                x.to_bits().hash(state);
            }
            AtomicValue::Bool(b) => {
                2u8.hash(state);
                b.hash(state);
            }
            AtomicValue::Db(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            AtomicValue::Map(m) => {
                4u8.hash(state);
                m.hash(state);
            }
            AtomicValue::Elem(e) => {
                5u8.hash(state);
                e.hash(state);
            }
        }
    }
}

impl fmt::Display for AtomicValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicValue::Str(s) => f.write_str(s),
            AtomicValue::Int(i) => write!(f, "{i}"),
            AtomicValue::Float(x) => write!(f, "{x}"),
            AtomicValue::Bool(b) => write!(f, "{b}"),
            AtomicValue::Db(d) => f.write_str(d),
            AtomicValue::Map(m) => write!(f, "{m}"),
            AtomicValue::Elem(e) => write!(f, "{e}"),
        }
    }
}

impl From<&str> for AtomicValue {
    fn from(s: &str) -> Self {
        AtomicValue::Str(s.to_owned())
    }
}

impl From<String> for AtomicValue {
    fn from(s: String) -> Self {
        AtomicValue::Str(s)
    }
}

impl From<i64> for AtomicValue {
    fn from(i: i64) -> Self {
        AtomicValue::Int(i)
    }
}

impl From<f64> for AtomicValue {
    fn from(x: f64) -> Self {
        AtomicValue::Float(x)
    }
}

impl From<bool> for AtomicValue {
    fn from(b: bool) -> Self {
        AtomicValue::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &AtomicValue) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn string_comparison() {
        let a = AtomicValue::str("H522");
        let b = AtomicValue::str("H523");
        assert_eq!(a.compare(&b), Some(Ordering::Less));
        assert_eq!(a, AtomicValue::str("H522"));
    }

    #[test]
    fn numeric_widening() {
        assert_eq!(AtomicValue::Int(500), AtomicValue::Float(500.0));
        assert_eq!(
            AtomicValue::Int(500).compare(&AtomicValue::Float(500.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            hash_of(&AtomicValue::Int(7)),
            hash_of(&AtomicValue::Float(7.0))
        );
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(AtomicValue::str("1").compare(&AtomicValue::Int(1)), None);
        assert_ne!(AtomicValue::str("1"), AtomicValue::Int(1));
    }

    #[test]
    fn meta_values() {
        let e = AtomicValue::Elem(ElementRef::new("USdb", "US/agents/title/firm"));
        assert_eq!(e.atomic_type(), AtomicType::Element);
        assert_eq!(e.to_string(), "USdb:/US/agents/title/firm");
        let m = AtomicValue::Map(MappingName::new("m2"));
        assert_eq!(m.atomic_type(), AtomicType::Mapping);
        assert_eq!(m.display_quoted(), "'m2'");
    }

    #[test]
    fn canonical_path_normalization() {
        assert_eq!(canonical_path("US/agents"), "/US/agents");
        assert_eq!(canonical_path("/US/agents/"), "/US/agents");
        assert_eq!(
            canonical_path("/Portal/estates/*/value"),
            "/Portal/estates/value"
        );
        assert_eq!(
            ElementRef::new("Pdb", "Portal/estates/*/value").path,
            "/Portal/estates/value"
        );
    }

    #[test]
    fn conforms_to_widening() {
        assert!(AtomicValue::Int(3).conforms_to(AtomicType::Float));
        assert!(!AtomicValue::Float(3.0).conforms_to(AtomicType::Integer));
        assert!(AtomicValue::str("x").conforms_to(AtomicType::String));
    }

    #[test]
    fn from_impls() {
        assert_eq!(AtomicValue::from("x"), AtomicValue::str("x"));
        assert_eq!(AtomicValue::from(3i64), AtomicValue::Int(3));
        assert_eq!(AtomicValue::from(true), AtomicValue::Bool(true));
    }

    #[test]
    fn nan_is_self_equal_under_total_cmp() {
        let nan = AtomicValue::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
    }
}
