//! Interned-ish label names.
//!
//! Labels are the attribute names of record and choice types and the names of
//! schema roots (Section 4.1 of the paper). They are immutable and cloned
//! freely throughout the engine, so they are backed by a reference-counted
//! string slice: cloning a [`Label`] is a pointer copy plus a refcount bump.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// The implicit label carried by the members of a set value, written `*` in
/// the paper (Section 4.1: "Types within set types ... are assumed to have
/// the implicit and usually omitted label `*`").
pub const STAR: &str = "*";

/// An immutable attribute / element name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(Arc<str>);

impl Label {
    /// Creates a label from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Label(Arc::from(name.as_ref()))
    }

    /// The label used for anonymous set members.
    pub fn star() -> Self {
        Label::new(STAR)
    }

    /// Returns the label as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if this is the implicit `*` label of set members.
    pub fn is_star(&self) -> bool {
        &*self.0 == STAR
    }
}

impl Deref for Label {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::new(s)
    }
}

impl From<&Label> for Label {
    fn from(l: &Label) -> Self {
        l.clone()
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:?})", &*self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn label_round_trip() {
        let l = Label::new("estates");
        assert_eq!(l.as_str(), "estates");
        assert_eq!(l.to_string(), "estates");
        assert_eq!(l, "estates");
    }

    #[test]
    fn star_label() {
        assert!(Label::star().is_star());
        assert!(!Label::new("stories").is_star());
        assert_eq!(Label::star().as_str(), STAR);
    }

    #[test]
    fn labels_hash_like_strings() {
        let mut set = HashSet::new();
        set.insert(Label::new("hid"));
        assert!(set.contains("hid"));
        assert!(!set.contains("aid"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Label::new("contact");
        let b = a.clone();
        assert_eq!(a, b);
        // Same backing allocation.
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Label::new("b"), Label::new("a"), Label::new("c")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|l| l.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
