//! Instances as trees of labelled values (Definition 4.2), with the
//! annotation slots of the *tagged instance* model (Definition 5.2).
//!
//! An instance is a set of label-value pairs conforming to a schema. As in
//! the paper we represent an instance as a tree: one node per value, edges
//! from complex values to their attributes, set members labelled `*`.
//!
//! Every node carries an [`Annotation`] — the element annotation `f_el(v)`
//! and the mapping annotation `f_mp(v)` of Definition 5.2 (the angle-bracket
//! and curly-bracket annotations of Figure 3). Nodes that were not produced
//! by a mapping simply have an empty mapping set, and element annotations
//! can be recomputed from a schema at any time with
//! [`Instance::annotate_elements`].

use crate::label::Label;
use crate::schema::{ElementId, ElementKind, Schema};
use crate::value::{AtomicValue, MappingName};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Index of a node inside an [`Instance`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The payload of an instance node.
#[derive(Clone, Debug)]
pub enum NodeData {
    /// An atomic leaf value.
    Atomic(AtomicValue),
    /// A record value; children are its fields in declaration order.
    Record(Vec<NodeId>),
    /// A choice value; exactly one alternative is present once built.
    Choice(Option<NodeId>),
    /// A set value; children are its `*`-labelled members.
    Set(Vec<NodeId>),
}

/// One node of the instance tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// The label of the label-value pair (attribute name, root name, or `*`).
    pub label: Label,
    /// Parent node, if any.
    pub parent: Option<NodeId>,
    /// Payload.
    pub data: NodeData,
}

/// The per-value annotations of a tagged instance (Definition 5.2):
/// `element` is `f_el(v)` and `mappings` is `f_mp(v)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Annotation {
    /// The schema element whose interpretation this value belongs to.
    pub element: Option<ElementId>,
    /// The mappings that generated this value, kept sorted and deduplicated.
    pub mappings: Vec<MappingName>,
}

impl Annotation {
    /// Adds a mapping to the annotation set, preserving order/uniqueness.
    /// Returns `true` if the name was newly written, `false` if it was
    /// already present (a *suppressed* annotation in profiling terms).
    pub fn add_mapping(&mut self, m: MappingName) -> bool {
        match self.mappings.binary_search(&m) {
            Err(pos) => {
                self.mappings.insert(pos, m);
                true
            }
            Ok(_) => false,
        }
    }

    /// True if this value was generated (also) by mapping `m`.
    pub fn has_mapping(&self, m: &MappingName) -> bool {
        self.mappings.binary_search(m).is_ok()
    }

    /// Removes a mapping from the annotation set. Returns `true` if the
    /// name was present (used when rolling back an aborted mapping).
    pub fn remove_mapping(&mut self, m: &MappingName) -> bool {
        match self.mappings.binary_search(m) {
            Ok(pos) => {
                self.mappings.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

/// An owned value tree, convenient for construction and deep comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Atomic leaf.
    Atomic(AtomicValue),
    /// Record with labelled fields.
    Record(Vec<(Label, Value)>),
    /// Choice with the selected alternative.
    Choice(Label, Box<Value>),
    /// Set of members.
    Set(Vec<Value>),
}

impl Value {
    /// Shorthand for an atomic string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Atomic(AtomicValue::Str(s.into()))
    }

    /// Shorthand for an atomic integer value.
    pub fn int(i: i64) -> Value {
        Value::Atomic(AtomicValue::Int(i))
    }

    /// Builds a record value.
    pub fn record<L: Into<Label>>(fields: Vec<(L, Value)>) -> Value {
        Value::Record(fields.into_iter().map(|(l, v)| (l.into(), v)).collect())
    }

    /// Builds a choice value.
    pub fn choice<L: Into<Label>>(label: L, v: Value) -> Value {
        Value::Choice(label.into(), Box::new(v))
    }

    /// Builds a set value.
    pub fn set(members: Vec<Value>) -> Value {
        Value::Set(members)
    }
}

impl From<AtomicValue> for Value {
    fn from(v: AtomicValue) -> Value {
        Value::Atomic(v)
    }
}

/// An instance: a named arena of value nodes plus per-node annotations.
#[derive(Clone, Debug)]
pub struct Instance {
    db: String,
    nodes: Vec<Node>,
    annots: Vec<Annotation>,
    roots: Vec<NodeId>,
}

impl Instance {
    /// Creates an empty instance for database `db`.
    pub fn new(db: impl Into<String>) -> Instance {
        Instance {
            db: db.into(),
            nodes: Vec::new(),
            annots: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// The database name this instance belongs to.
    pub fn db(&self) -> &str {
        &self.db
    }

    /// Number of nodes (values) in the instance.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the instance holds no values.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root node ids.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Finds a root by label.
    pub fn root(&self, label: &str) -> Option<NodeId> {
        self.roots
            .iter()
            .copied()
            .find(|&r| self.node(r).label == label)
    }

    fn push_node(&mut self, label: Label, parent: Option<NodeId>, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            label,
            parent,
            data,
        });
        self.annots.push(Annotation::default());
        id
    }

    /// Low-level node insertion for incremental builders (the PNF
    /// normalizer and the data exchange engine). Most callers should prefer
    /// [`Instance::install_root`] / [`Instance::push_set_member`].
    pub fn push_raw(
        &mut self,
        label: Label,
        parent: Option<NodeId>,
        data: NodeData,
        is_root: bool,
    ) -> NodeId {
        let id = self.push_node(label, parent, data);
        if is_root {
            self.roots.push(id);
        }
        id
    }

    /// Replaces the children of a complex node, re-parenting them. Used by
    /// incremental builders together with [`Instance::push_raw`].
    ///
    /// # Panics
    /// Panics if `id` is atomic, or if a choice node is given more than one
    /// child.
    pub fn replace_children(&mut self, id: NodeId, kids: Vec<NodeId>) {
        for &k in &kids {
            self.nodes[k.index()].parent = Some(id);
        }
        match &mut self.nodes[id.index()].data {
            NodeData::Record(c) | NodeData::Set(c) => *c = kids,
            NodeData::Choice(c) => {
                assert!(kids.len() <= 1, "choice node takes at most one child");
                *c = kids.into_iter().next();
            }
            NodeData::Atomic(_) => panic!("cannot set children of an atomic node"),
        }
    }

    /// Access a node. Panics on an out-of-range id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The label of a node.
    pub fn label(&self, id: NodeId) -> &Label {
        &self.nodes[id.index()].label
    }

    /// The parent of a node.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The annotation of a node.
    pub fn annotation(&self, id: NodeId) -> &Annotation {
        &self.annots[id.index()]
    }

    /// Mutable annotation access.
    pub fn annotation_mut(&mut self, id: NodeId) -> &mut Annotation {
        &mut self.annots[id.index()]
    }

    /// Sets the element annotation (`f_el`).
    pub fn set_element(&mut self, id: NodeId, e: ElementId) {
        self.annots[id.index()].element = Some(e);
    }

    /// Adds `m` to the mapping annotation (`f_mp`). Returns `true` if the
    /// name was newly written, `false` if already present.
    pub fn add_mapping(&mut self, id: NodeId, m: MappingName) -> bool {
        self.annots[id.index()].add_mapping(m)
    }

    /// Removes `m` from the mapping annotation (`f_mp`). Returns `true` if
    /// the name was present. Used when rolling back an aborted mapping.
    pub fn remove_mapping(&mut self, id: NodeId, m: &MappingName) -> bool {
        self.annots[id.index()].remove_mapping(m)
    }

    /// Rolls the arena back to its first `len` nodes, discarding every node
    /// (and its annotation) created at position `len` or later: surviving
    /// complex nodes drop pruned children, pruned roots are forgotten, and
    /// a choice whose selection was pruned becomes unselected.
    ///
    /// Because the arena is append-only, a prefix of it is exactly "the
    /// instance as it was" when `len == instance.len()` was captured —
    /// this is the data-exchange abort path: a mapping either completes
    /// atomically or its inserts are truncated away.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.nodes.len() {
            return;
        }
        self.nodes.truncate(len);
        self.annots.truncate(len);
        self.roots.retain(|r| r.index() < len);
        for node in &mut self.nodes {
            match &mut node.data {
                NodeData::Record(kids) | NodeData::Set(kids) => kids.retain(|k| k.index() < len),
                NodeData::Choice(kid) => {
                    if matches!(kid, Some(k) if k.index() >= len) {
                        *kid = None;
                    }
                }
                NodeData::Atomic(_) => {}
            }
        }
    }

    /// Children of a node: record fields, set members, or the selected
    /// choice alternative. Atomic nodes have no children.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id.index()].data {
            NodeData::Atomic(_) => &[],
            NodeData::Record(c) | NodeData::Set(c) => c,
            NodeData::Choice(c) => c.as_slice(),
        }
    }

    /// The field of a record (or the alternative of a choice) with the given
    /// label.
    pub fn child_by_label(&self, id: NodeId, label: &str) -> Option<NodeId> {
        self.children(id)
            .iter()
            .copied()
            .find(|&c| self.node(c).label == label)
    }

    /// The members of a set node; `None` if the node is not a set.
    pub fn set_members(&self, id: NodeId) -> Option<&[NodeId]> {
        match &self.nodes[id.index()].data {
            NodeData::Set(c) => Some(c),
            _ => None,
        }
    }

    /// The atomic value of a leaf node; `None` for complex nodes.
    pub fn atomic(&self, id: NodeId) -> Option<&AtomicValue> {
        match &self.nodes[id.index()].data {
            NodeData::Atomic(v) => Some(v),
            _ => None,
        }
    }

    /// The selected alternative of a choice node, with its label.
    pub fn choice_selection(&self, id: NodeId) -> Option<(Label, NodeId)> {
        match &self.nodes[id.index()].data {
            NodeData::Choice(Some(c)) => Some((self.node(*c).label.clone(), *c)),
            _ => None,
        }
    }

    /// Installs an owned [`Value`] tree as a new root.
    pub fn install_root(&mut self, label: impl Into<Label>, v: Value) -> NodeId {
        let id = self.install(label.into(), v, None);
        self.roots.push(id);
        id
    }

    fn install(&mut self, label: Label, v: Value, parent: Option<NodeId>) -> NodeId {
        match v {
            Value::Atomic(a) => self.push_node(label, parent, NodeData::Atomic(a)),
            Value::Record(fields) => {
                let id = self.push_node(label, parent, NodeData::Record(Vec::new()));
                let kids: Vec<NodeId> = fields
                    .into_iter()
                    .map(|(l, v)| self.install(l, v, Some(id)))
                    .collect();
                if let NodeData::Record(c) = &mut self.nodes[id.index()].data {
                    *c = kids;
                }
                id
            }
            Value::Choice(alt, inner) => {
                let id = self.push_node(label, parent, NodeData::Choice(None));
                let kid = self.install(alt, *inner, Some(id));
                if let NodeData::Choice(c) = &mut self.nodes[id.index()].data {
                    *c = Some(kid);
                }
                id
            }
            Value::Set(members) => {
                let id = self.push_node(label, parent, NodeData::Set(Vec::new()));
                let kids: Vec<NodeId> = members
                    .into_iter()
                    .map(|v| self.install(Label::star(), v, Some(id)))
                    .collect();
                if let NodeData::Set(c) = &mut self.nodes[id.index()].data {
                    *c = kids;
                }
                id
            }
        }
    }

    /// Appends a new member to a set node and returns its id.
    ///
    /// # Panics
    /// Panics if `set` is not a set node.
    pub fn push_set_member(&mut self, set: NodeId, v: Value) -> NodeId {
        assert!(
            matches!(self.nodes[set.index()].data, NodeData::Set(_)),
            "push_set_member target must be a set node"
        );
        let kid = self.install(Label::star(), v, Some(set));
        if let NodeData::Set(c) = &mut self.nodes[set.index()].data {
            c.push(kid);
        }
        kid
    }

    /// Removes `member` from the member list of `set` without reclaiming
    /// arena storage (the arena is append-only; the subtree becomes
    /// unreachable garbage). Returns `true` if the member was present.
    ///
    /// Detached subtrees keep their annotations — callers that care about
    /// [`Instance::interpretation`] (which scans every arena slot) should
    /// follow up with [`Instance::strip_annotations`]. Used by the
    /// incremental exchange to retract target rows.
    ///
    /// # Panics
    /// Panics if `set` is not a set node.
    pub fn detach_set_member(&mut self, set: NodeId, member: NodeId) -> bool {
        match &mut self.nodes[set.index()].data {
            NodeData::Set(c) => {
                let before = c.len();
                c.retain(|&k| k != member);
                before != c.len()
            }
            _ => panic!("detach_set_member target must be a set node"),
        }
    }

    /// Clears every annotation (`f_el` and `f_mp`) in the subtree rooted at
    /// `id`. Used after [`Instance::detach_set_member`] so unreachable
    /// garbage never surfaces through element interpretations.
    pub fn strip_annotations(&mut self, id: NodeId) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            self.annots[n.index()] = Annotation::default();
            stack.extend_from_slice(self.children(n));
        }
    }

    /// Extracts the owned [`Value`] tree rooted at `id`.
    pub fn to_value(&self, id: NodeId) -> Value {
        match &self.nodes[id.index()].data {
            NodeData::Atomic(a) => Value::Atomic(a.clone()),
            NodeData::Record(kids) => Value::Record(
                kids.iter()
                    .map(|&k| (self.node(k).label.clone(), self.to_value(k)))
                    .collect(),
            ),
            NodeData::Choice(kid) => {
                let k = kid.expect("choice node must have a selection");
                Value::Choice(self.node(k).label.clone(), Box::new(self.to_value(k)))
            }
            NodeData::Set(kids) => Value::Set(kids.iter().map(|&k| self.to_value(k)).collect()),
        }
    }

    /// Pre-order traversal of all nodes reachable from the roots.
    pub fn walk(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.children(id).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// A structural hash of the value rooted at `id`. Set members contribute
    /// order-insensitively, so two sets with the same members in different
    /// orders hash equal — the identity used by PNF merging.
    pub fn deep_hash(&self, id: NodeId) -> u64 {
        let mut h = DefaultHasher::new();
        self.hash_into(id, &mut h);
        h.finish()
    }

    fn hash_into(&self, id: NodeId, h: &mut DefaultHasher) {
        let node = &self.nodes[id.index()];
        node.label.hash(h);
        match &node.data {
            NodeData::Atomic(a) => {
                0u8.hash(h);
                a.hash(h);
            }
            NodeData::Record(kids) => {
                1u8.hash(h);
                for &k in kids {
                    self.hash_into(k, h);
                }
            }
            NodeData::Choice(kid) => {
                2u8.hash(h);
                if let Some(k) = kid {
                    self.hash_into(*k, h);
                }
            }
            NodeData::Set(kids) => {
                3u8.hash(h);
                let mut hashes: Vec<u64> = kids.iter().map(|&k| self.deep_hash(k)).collect();
                hashes.sort_unstable();
                hashes.hash(h);
            }
        }
    }

    /// Structural equality of the values rooted at `a` and `b`, with sets
    /// compared as multisets (order-insensitive).
    pub fn deep_eq(&self, a: NodeId, b: NodeId) -> bool {
        let (na, nb) = (&self.nodes[a.index()], &self.nodes[b.index()]);
        if na.label != nb.label {
            return false;
        }
        match (&na.data, &nb.data) {
            (NodeData::Atomic(x), NodeData::Atomic(y)) => x == y,
            (NodeData::Record(xs), NodeData::Record(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(&x, &y)| self.deep_eq(x, y))
            }
            (NodeData::Choice(x), NodeData::Choice(y)) => match (x, y) {
                (Some(x), Some(y)) => self.deep_eq(*x, *y),
                (None, None) => true,
                _ => false,
            },
            (NodeData::Set(xs), NodeData::Set(ys)) => {
                if xs.len() != ys.len() {
                    return false;
                }
                let mut used = vec![false; ys.len()];
                'outer: for &x in xs {
                    for (i, &y) in ys.iter().enumerate() {
                        if !used[i] && self.deep_eq(x, y) {
                            used[i] = true;
                            continue 'outer;
                        }
                    }
                    return false;
                }
                true
            }
            _ => false,
        }
    }

    /// Checks conformance against `schema` (Definition 4.2) and fills in the
    /// element annotation (`f_el`) of every node: the total injective
    /// `elementOf` function exists exactly when this returns `Ok`.
    pub fn annotate_elements(&mut self, schema: &Schema) -> Result<(), ConformanceError> {
        let roots = self.roots.clone();
        for root in roots {
            let label = self.node(root).label.clone();
            let se = schema.root(&label).ok_or_else(|| ConformanceError {
                node: root,
                reason: format!("no schema root named `{label}` in `{}`", schema.name()),
            })?;
            self.annotate_rec(root, se, schema)?;
        }
        Ok(())
    }

    fn annotate_rec(
        &mut self,
        id: NodeId,
        se: ElementId,
        schema: &Schema,
    ) -> Result<(), ConformanceError> {
        let kind = schema.element(se).kind;
        let ok = match (&self.nodes[id.index()].data, kind) {
            (NodeData::Atomic(v), ElementKind::Atomic(t)) => v.conforms_to(t),
            (NodeData::Record(_), ElementKind::Record) => true,
            (NodeData::Choice(_), ElementKind::Choice) => true,
            (NodeData::Set(_), ElementKind::Set) => true,
            _ => false,
        };
        if !ok {
            return Err(ConformanceError {
                node: id,
                reason: format!(
                    "value labelled `{}` does not conform to schema element {} ({}:{})",
                    self.nodes[id.index()].label,
                    se,
                    schema.element(se).label,
                    kind
                ),
            });
        }
        self.annots[id.index()].element = Some(se);
        let kids: Vec<NodeId> = self.children(id).to_vec();
        match kind {
            ElementKind::Atomic(_) => {}
            ElementKind::Set => {
                let member = schema.set_member(se).expect("set element has a member");
                for k in kids {
                    self.annotate_rec(k, member, schema)?;
                }
            }
            ElementKind::Record | ElementKind::Choice => {
                for k in kids {
                    let kl = self.node(k).label.clone();
                    let ke = schema.child(se, &kl).ok_or_else(|| ConformanceError {
                        node: k,
                        reason: format!(
                            "schema element {se} ({}) has no child labelled `{kl}`",
                            schema.element(se).label
                        ),
                    })?;
                    self.annotate_rec(k, ke, schema)?;
                }
            }
        }
        Ok(())
    }

    /// The interpretation `I[e]` of a schema element (Definition 4.2): all
    /// nodes annotated with element `e`. Requires element annotations (see
    /// [`Instance::annotate_elements`]).
    pub fn interpretation(&self, e: ElementId) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|id| self.annots[id.index()].element == Some(e))
            .collect()
    }

    /// The subset `I[e]_m` of the interpretation generated by mapping `m`
    /// (Section 5).
    pub fn interpretation_by(&self, e: ElementId, m: &MappingName) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|id| {
                let a = &self.annots[id.index()];
                a.element == Some(e) && a.has_mapping(m)
            })
            .collect()
    }

    /// A human-readable location of a node, e.g. `/Portal/estates[1]/value`.
    pub fn node_path(&self, id: NodeId) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut cur = id;
        loop {
            let node = &self.nodes[cur.index()];
            if node.label.is_star() {
                // Position of this member within the parent set.
                let parent = node.parent.expect("set member has a parent");
                let pos = self
                    .children(parent)
                    .iter()
                    .position(|&c| c == cur)
                    .unwrap_or(0);
                parts.push(format!("[{pos}]"));
            } else {
                parts.push(node.label.to_string());
            }
            match node.parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        parts.reverse();
        let mut out = String::new();
        for p in parts {
            if p.starts_with('[') {
                out.push_str(&p);
            } else {
                out.push('/');
                out.push_str(&p);
            }
        }
        out
    }
}

/// A conformance failure (Definition 4.2): the instance does not conform to
/// the schema.
#[derive(Clone, Debug)]
pub struct ConformanceError {
    /// The offending node.
    pub node: NodeId,
    /// Human-readable description.
    pub reason: String,
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conformance error at {:?}: {}", self.node, self.reason)
    }
}

impl std::error::Error for ConformanceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{AtomicType, Type};

    fn portal_schema() -> Schema {
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn estate(hid: &str, stories: &str, value: &str, contact: &str) -> Value {
        Value::record(vec![
            ("hid", Value::str(hid)),
            ("stories", Value::str(stories)),
            ("value", Value::str(value)),
            ("contact", Value::str(contact)),
        ])
    }

    /// Builds the Figure 3 instance (two estates, one contact).
    fn figure3_instance() -> Instance {
        let mut inst = Instance::new("Pdb");
        inst.install_root(
            "Portal",
            Value::record(vec![
                (
                    "estates",
                    Value::set(vec![
                        estate("H522", "2", "500K", "HomeGain"),
                        estate("H2525", "1", "300K", "HomeGain"),
                    ]),
                ),
                (
                    "contacts",
                    Value::set(vec![Value::record(vec![
                        ("title", Value::str("HomeGain")),
                        ("phone", Value::str("18009468501")),
                    ])]),
                ),
            ]),
        );
        inst
    }

    #[test]
    fn build_and_navigate() {
        let inst = figure3_instance();
        let portal = inst.root("Portal").unwrap();
        let estates = inst.child_by_label(portal, "estates").unwrap();
        let members = inst.set_members(estates).unwrap();
        assert_eq!(members.len(), 2);
        let hid = inst.child_by_label(members[0], "hid").unwrap();
        assert_eq!(inst.atomic(hid).unwrap().as_str(), Some("H522"));
        assert_eq!(inst.parent(hid), Some(members[0]));
    }

    #[test]
    fn conformance_and_interpretation() {
        let schema = portal_schema();
        let mut inst = figure3_instance();
        inst.annotate_elements(&schema).unwrap();
        let value_elem = schema.resolve_path("/Portal/estates/value").unwrap();
        let interp = inst.interpretation(value_elem);
        assert_eq!(interp.len(), 2);
        let texts: Vec<&str> = interp
            .iter()
            .map(|&n| inst.atomic(n).unwrap().as_str().unwrap())
            .collect();
        assert!(texts.contains(&"500K") && texts.contains(&"300K"));
    }

    #[test]
    fn conformance_rejects_bad_label() {
        let schema = portal_schema();
        let mut inst = Instance::new("Pdb");
        inst.install_root("Portal", Value::record(vec![("bogus", Value::str("x"))]));
        assert!(inst.annotate_elements(&schema).is_err());
    }

    #[test]
    fn conformance_rejects_bad_root() {
        let schema = portal_schema();
        let mut inst = Instance::new("Pdb");
        inst.install_root("Elsewhere", Value::str("x"));
        assert!(inst.annotate_elements(&schema).is_err());
    }

    #[test]
    fn mapping_annotations_union() {
        let mut inst = figure3_instance();
        let portal = inst.root("Portal").unwrap();
        inst.add_mapping(portal, MappingName::new("m3"));
        inst.add_mapping(portal, MappingName::new("m2"));
        inst.add_mapping(portal, MappingName::new("m2"));
        let names: Vec<&str> = inst
            .annotation(portal)
            .mappings
            .iter()
            .map(|m| m.as_str())
            .collect();
        assert_eq!(names, ["m2", "m3"]);
        assert!(inst.annotation(portal).has_mapping(&MappingName::new("m3")));
        assert!(!inst.annotation(portal).has_mapping(&MappingName::new("m1")));
    }

    #[test]
    fn interpretation_by_mapping() {
        let schema = portal_schema();
        let mut inst = figure3_instance();
        inst.annotate_elements(&schema).unwrap();
        let value_elem = schema.resolve_path("/Portal/estates/value").unwrap();
        let interp = inst.interpretation(value_elem);
        inst.add_mapping(interp[0], MappingName::new("m2"));
        inst.add_mapping(interp[1], MappingName::new("m3"));
        assert_eq!(
            inst.interpretation_by(value_elem, &MappingName::new("m2")),
            vec![interp[0]]
        );
    }

    #[test]
    fn deep_eq_is_set_order_insensitive() {
        let mut inst = Instance::new("X");
        let a = inst.install_root(
            "A",
            Value::set(vec![estate("1", "a", "b", "c"), estate("2", "d", "e", "f")]),
        );
        let b = inst.install_root(
            "A",
            Value::set(vec![estate("2", "d", "e", "f"), estate("1", "a", "b", "c")]),
        );
        assert!(inst.deep_eq(a, b));
        assert_eq!(inst.deep_hash(a), inst.deep_hash(b));
    }

    #[test]
    fn deep_eq_detects_difference() {
        let mut inst = Instance::new("X");
        let a = inst.install_root("A", estate("1", "a", "b", "c"));
        let b = inst.install_root("A", estate("1", "a", "b", "d"));
        assert!(!inst.deep_eq(a, b));
    }

    #[test]
    fn to_value_round_trip() {
        let inst = figure3_instance();
        let portal = inst.root("Portal").unwrap();
        let v = inst.to_value(portal);
        let mut inst2 = Instance::new("Pdb");
        let r2 = inst2.install_root("Portal", v);
        // Compare by re-extracting.
        assert_eq!(inst.to_value(portal), inst2.to_value(r2));
    }

    #[test]
    fn push_set_member_appends() {
        let mut inst = figure3_instance();
        let portal = inst.root("Portal").unwrap();
        let estates = inst.child_by_label(portal, "estates").unwrap();
        inst.push_set_member(estates, estate("H9", "3", "700K", "Acme"));
        assert_eq!(inst.set_members(estates).unwrap().len(), 3);
    }

    #[test]
    fn walk_visits_everything_once() {
        let inst = figure3_instance();
        let order = inst.walk();
        assert_eq!(order.len(), inst.len());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), inst.len());
    }

    #[test]
    fn node_path_rendering() {
        let inst = figure3_instance();
        let portal = inst.root("Portal").unwrap();
        let estates = inst.child_by_label(portal, "estates").unwrap();
        let m1 = inst.set_members(estates).unwrap()[1];
        let hid = inst.child_by_label(m1, "hid").unwrap();
        assert_eq!(inst.node_path(hid), "/Portal/estates[1]/hid");
    }

    #[test]
    fn truncate_rolls_back_to_a_prefix() {
        let mut inst = figure3_instance();
        let snapshot_len = inst.len();
        let snapshot = inst.to_value(inst.root("Portal").unwrap());
        // Simulate a partially-applied mapping: new member, new root, and a
        // mapping annotation on a surviving node.
        let portal = inst.root("Portal").unwrap();
        let estates = inst.child_by_label(portal, "estates").unwrap();
        inst.push_set_member(estates, estate("H9", "3", "700K", "Acme"));
        inst.install_root("Stray", Value::str("x"));
        inst.add_mapping(estates, MappingName::new("m9"));
        inst.truncate(snapshot_len);
        inst.remove_mapping(estates, &MappingName::new("m9"));
        assert_eq!(inst.len(), snapshot_len);
        assert_eq!(inst.roots().len(), 1);
        assert_eq!(inst.set_members(estates).unwrap().len(), 2);
        assert!(!inst
            .annotation(estates)
            .has_mapping(&MappingName::new("m9")));
        assert_eq!(inst.to_value(inst.root("Portal").unwrap()), snapshot);
    }

    #[test]
    fn truncate_unselects_pruned_choice() {
        let mut inst = Instance::new("X");
        let root = inst.push_raw("title".into(), None, NodeData::Choice(None), true);
        let len_before = inst.len();
        let kid = inst.push_raw(
            "firm".into(),
            Some(root),
            NodeData::Atomic(AtomicValue::Str("HomeGain".into())),
            false,
        );
        inst.replace_children(root, vec![kid]);
        inst.truncate(len_before);
        assert!(inst.choice_selection(root).is_none());
        assert!(inst.children(root).is_empty());
    }

    #[test]
    fn truncate_past_end_is_a_no_op() {
        let mut inst = figure3_instance();
        let len = inst.len();
        inst.truncate(len + 100);
        inst.truncate(len);
        assert_eq!(inst.len(), len);
    }

    #[test]
    fn choice_nodes() {
        let mut inst = Instance::new("USdb");
        let root = inst.install_root("title", Value::choice("firm", Value::str("HomeGain")));
        let (label, kid) = inst.choice_selection(root).unwrap();
        assert_eq!(label, "firm");
        assert_eq!(inst.atomic(kid).unwrap().as_str(), Some("HomeGain"));
        assert_eq!(inst.children(root), &[kid]);
    }
}
