//! Partition Normal Form (PNF).
//!
//! The data exchange methodology the paper builds on (reference \[21\], "Translating Web
//! Data") produces instances in PNF: within any set, no two members agree on
//! all of their non-set content (atomic fields, choice selections). Members
//! that do agree are merged, their nested sets unioned and — crucially for
//! the tagged-instance experiments of Section 8 — their mapping annotations
//! unioned. Figure 3's `title:"HomeGain"` node annotated `{m2, m3}` is the
//! result of exactly such a merge.

use crate::instance::{Instance, NodeData, NodeId};
use crate::label::Label;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The *non-set fingerprint* of a node: a structural hash over its labels,
/// atomic values and choice selections, treating nested sets as opaque
/// (only their labels contribute). Two set members merge under PNF iff
/// their non-set fingerprints (and contents) coincide.
pub fn non_set_fingerprint(inst: &Instance, id: NodeId) -> u64 {
    let mut h = DefaultHasher::new();
    fp(inst, id, &mut h);
    h.finish()
}

fn fp(inst: &Instance, id: NodeId, h: &mut DefaultHasher) {
    let node = inst.node(id);
    node.label.hash(h);
    match &node.data {
        NodeData::Atomic(v) => {
            0u8.hash(h);
            v.hash(h);
        }
        NodeData::Record(kids) => {
            1u8.hash(h);
            for &k in kids {
                fp(inst, k, h);
            }
        }
        NodeData::Choice(kid) => {
            2u8.hash(h);
            if let Some(k) = kid {
                fp(inst, *k, h);
            }
        }
        NodeData::Set(_) => {
            // Opaque: set contents do not prevent a merge.
            3u8.hash(h);
        }
    }
}

/// Structural equality on the PNF identity: labels, atomic values and
/// choice selections, with nested sets opaque — the relation
/// [`non_set_fingerprint`] approximates. Used to confirm fingerprint
/// matches, so a 64-bit collision can never merge distinct members.
pub fn non_set_eq(inst: &Instance, a: NodeId, b: NodeId) -> bool {
    if a == b {
        return true;
    }
    let na = inst.node(a);
    let nb = inst.node(b);
    if na.label != nb.label {
        return false;
    }
    match (&na.data, &nb.data) {
        (NodeData::Atomic(x), NodeData::Atomic(y)) => x == y,
        (NodeData::Record(xs), NodeData::Record(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(&x, &y)| non_set_eq(inst, x, y))
        }
        (NodeData::Choice(x), NodeData::Choice(y)) => match (x, y) {
            (Some(x), Some(y)) => non_set_eq(inst, *x, *y),
            (None, None) => true,
            _ => false,
        },
        // Opaque: set contents do not separate members.
        (NodeData::Set(_), NodeData::Set(_)) => true,
        _ => false,
    }
}

/// True if every set in the instance is duplicate-free under the PNF
/// identity. Fingerprints only bucket the members; duplicates are
/// confirmed structurally, so colliding-but-distinct members do not make
/// a normalized instance look denormalized (or vice versa).
pub fn is_pnf(inst: &Instance) -> bool {
    inst.walk()
        .into_iter()
        .all(|id| match inst.set_members(id) {
            None => true,
            Some(members) => {
                let mut seen: HashMap<u64, Vec<NodeId>> = HashMap::with_capacity(members.len());
                for &m in members {
                    let f = non_set_fingerprint(inst, m);
                    let bucket = seen.entry(f).or_default();
                    if bucket.iter().any(|&other| non_set_eq(inst, other, m)) {
                        return false;
                    }
                    bucket.push(m);
                }
                true
            }
        })
}

/// Rebuilds `inst` in Partition Normal Form.
///
/// Within every set, members that agree on all non-set content are merged:
/// atomic content is kept once, nested sets are unioned (and recursively
/// normalized), element annotations are preserved, and mapping annotations
/// are unioned across the merged copies.
///
/// ```
/// use dtr_model::prelude::*;
///
/// let mut inst = Instance::new("Pdb");
/// let dup = Value::record(vec![("title", Value::str("HomeGain"))]);
/// inst.install_root("contacts", Value::set(vec![dup.clone(), dup]));
/// assert!(!is_pnf(&inst));
///
/// let norm = to_pnf(&inst);
/// assert!(is_pnf(&norm));
/// let root = norm.root("contacts").unwrap();
/// assert_eq!(norm.set_members(root).unwrap().len(), 1);
/// ```
pub fn to_pnf(inst: &Instance) -> Instance {
    to_pnf_with(inst, &non_set_fingerprint)
}

/// Like [`to_pnf`], but with an injectable fingerprint function.
///
/// The fingerprint only *buckets* candidate members; every merge is
/// confirmed with [`non_set_eq`], so a weaker — even constant — hasher
/// must never change the result, only the bucketing cost. The conformance
/// tests force total collisions through this entry point.
pub fn to_pnf_with(inst: &Instance, fp_of: &dyn Fn(&Instance, NodeId) -> u64) -> Instance {
    let span = dtr_obs::span("model.to_pnf").field("nodes_in", inst.len());
    let mut dst = Instance::new(inst.db().to_string());
    for &root in inst.roots() {
        let label = inst.node(root).label.clone();
        merge_group(inst, &[root], &mut dst, label, None, true, fp_of);
    }
    span.record("nodes_out", dst.len());
    dst
}

/// Merges a group of source nodes (pairwise equal on non-set content) into a
/// single node of `dst`. Returns the new node id.
fn merge_group(
    src: &Instance,
    group: &[NodeId],
    dst: &mut Instance,
    label: Label,
    parent: Option<NodeId>,
    is_root: bool,
    fp_of: &dyn Fn(&Instance, NodeId) -> u64,
) -> NodeId {
    debug_assert!(!group.is_empty());
    let rep = group[0];
    let new_id = match &src.node(rep).data {
        NodeData::Atomic(v) => raw_node(dst, label, parent, NodeData::Atomic(v.clone()), is_root),
        NodeData::Record(rep_kids) => {
            let id = raw_node(dst, label, parent, NodeData::Record(Vec::new()), is_root);
            // One label→child map per group member, computed once, so each
            // field lookup is O(1) instead of a linear scan over every
            // member's children.
            let child_maps: Vec<HashMap<&Label, NodeId>> = group
                .iter()
                .map(|&g| match &src.node(g).data {
                    NodeData::Record(kids) => {
                        let mut map = HashMap::with_capacity(kids.len());
                        for &k in kids {
                            map.entry(&src.node(k).label).or_insert(k);
                        }
                        map
                    }
                    _ => HashMap::new(),
                })
                .collect();
            let mut new_kids = Vec::with_capacity(rep_kids.len());
            for &rk in rep_kids {
                let kl = src.node(rk).label.clone();
                // Corresponding field in every group member.
                let field_group: Vec<NodeId> = child_maps
                    .iter()
                    .filter_map(|m| m.get(&kl).copied())
                    .collect();
                new_kids.push(merge_group(
                    src,
                    &field_group,
                    dst,
                    kl,
                    Some(id),
                    false,
                    fp_of,
                ));
            }
            set_children(dst, id, new_kids);
            id
        }
        NodeData::Choice(_) => {
            let id = raw_node(dst, label, parent, NodeData::Choice(None), is_root);
            let sel_group: Vec<NodeId> = group
                .iter()
                .filter_map(|&g| src.choice_selection(g).map(|(_, k)| k))
                .collect();
            if let Some(&first) = sel_group.first() {
                let kl = src.node(first).label.clone();
                let kid = merge_group(src, &sel_group, dst, kl, Some(id), false, fp_of);
                set_choice(dst, id, kid);
            }
            id
        }
        NodeData::Set(_) => {
            let id = raw_node(dst, label, parent, NodeData::Set(Vec::new()), is_root);
            // Union all members of all copies, bucket by fingerprint, then
            // confirm structurally: members that share a fingerprint but
            // differ on non-set content (a collision) split into separate
            // merge classes instead of being silently collapsed.
            let mut classes: Vec<(u64, Vec<NodeId>)> = Vec::new();
            let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
            for &g in group {
                for &m in src.set_members(g).unwrap_or(&[]) {
                    let f = fp_of(src, m);
                    let slots = index.entry(f).or_default();
                    let found = slots
                        .iter()
                        .copied()
                        .find(|&i| non_set_eq(src, classes[i].1[0], m));
                    match found {
                        Some(i) => classes[i].1.push(m),
                        None => {
                            if !slots.is_empty() && dtr_obs::journal::enabled() {
                                dtr_obs::journal::record(
                                    dtr_obs::journal::event(
                                        "model.pnf.merge",
                                        dtr_obs::journal::Outcome::CollisionSplit {
                                            fingerprint: f,
                                        },
                                    )
                                    .binding(f)
                                    .detail(format!(
                                        "{} distinct member(s) already hold this fingerprint",
                                        slots.len()
                                    )),
                                );
                            }
                            slots.push(classes.len());
                            classes.push((f, vec![m]));
                        }
                    }
                }
            }
            let mut new_kids = Vec::with_capacity(classes.len());
            for (f, class) in classes {
                let merged = merge_group(src, &class, dst, Label::star(), Some(id), false, fp_of);
                if class.len() > 1 && dtr_obs::journal::enabled() {
                    dtr_obs::journal::record(
                        dtr_obs::journal::event(
                            "model.pnf.merge",
                            dtr_obs::journal::Outcome::PnfMerged {
                                into: u64::from(merged.0),
                            },
                        )
                        .binding(f)
                        .target(u64::from(merged.0))
                        .detail(format!("{} copies share one fingerprint", class.len())),
                    );
                }
                new_kids.push(merged);
            }
            set_children(dst, id, new_kids);
            id
        }
    };
    // Element annotation from the representative; mapping annotations
    // unioned over the whole group.
    let rep_annot = src.annotation(rep).clone();
    if let Some(e) = rep_annot.element {
        dst.set_element(new_id, e);
    }
    for &g in group {
        for m in &src.annotation(g).mappings {
            dst.add_mapping(new_id, m.clone());
        }
    }
    new_id
}

/// In-place partition-renormalization of a single set node: members of
/// `set` that agree on all non-set content are re-merged — nested sets
/// unioned into the first such member, mapping annotations unioned, the
/// duplicates detached as arena garbage (annotations stripped). Only `set`
/// and the merged members' subtrees are touched. Returns the number of
/// members merged away (0 when the set was already in PNF).
///
/// This is the targeted counterpart of [`to_pnf`] used by the incremental
/// exchange: a retraction that rewrites members of one affected set can
/// violate PNF locally, and renormalizing just that set restores it
/// without a whole-instance rebuild.
pub fn renormalize_set(inst: &mut Instance, set: NodeId) -> usize {
    renormalize_set_with(inst, set, &non_set_fingerprint)
}

/// Like [`renormalize_set`], with an injectable fingerprint function (see
/// [`to_pnf_with`] for the collision-safety contract: fingerprints only
/// bucket, every merge is confirmed with [`non_set_eq`]).
pub fn renormalize_set_with(
    inst: &mut Instance,
    set: NodeId,
    fp_of: &dyn Fn(&Instance, NodeId) -> u64,
) -> usize {
    let members: Vec<NodeId> = match inst.set_members(set) {
        Some(m) => m.to_vec(),
        None => return 0,
    };
    let mut keepers: Vec<NodeId> = Vec::new();
    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut merged = 0usize;
    for m in members {
        let f = fp_of(inst, m);
        let slots = index.entry(f).or_default();
        let found = slots
            .iter()
            .copied()
            .find(|&i| non_set_eq(inst, keepers[i], m));
        match found {
            Some(i) => {
                let keeper = keepers[i];
                union_into(inst, keeper, m, fp_of);
                inst.strip_annotations(m);
                if dtr_obs::journal::enabled() {
                    dtr_obs::journal::record(
                        dtr_obs::journal::event(
                            "model.pnf.renormalize",
                            dtr_obs::journal::Outcome::PnfMerged {
                                into: u64::from(keeper.0),
                            },
                        )
                        .binding(f)
                        .target(u64::from(keeper.0)),
                    );
                }
                merged += 1;
            }
            None => {
                slots.push(keepers.len());
                keepers.push(m);
            }
        }
    }
    if merged > 0 {
        inst.replace_children(set, keepers);
    }
    merged
}

/// Merges the subtree of `dup` into the structurally equal (on non-set
/// content) subtree of `keeper`: mapping annotations union at every paired
/// node, nested-set members of `dup` either recurse into an equal member of
/// the keeper's set or are *moved* (reparented) into it.
fn union_into(
    inst: &mut Instance,
    keeper: NodeId,
    dup: NodeId,
    fp_of: &dyn Fn(&Instance, NodeId) -> u64,
) {
    if keeper == dup {
        return;
    }
    let dup_maps = inst.annotation(dup).mappings.clone();
    for m in dup_maps {
        inst.add_mapping(keeper, m);
    }
    match inst.node(dup).data.clone() {
        NodeData::Atomic(_) | NodeData::Choice(None) => {}
        NodeData::Record(dup_kids) => {
            for dk in dup_kids {
                let lbl = inst.node(dk).label.clone();
                if let Some(kk) = inst.child_by_label(keeper, &lbl) {
                    union_into(inst, kk, dk, fp_of);
                }
            }
        }
        NodeData::Choice(Some(dk)) => {
            if let Some((_, kk)) = inst.choice_selection(keeper) {
                union_into(inst, kk, dk, fp_of);
            }
        }
        NodeData::Set(dup_members) => {
            // Fingerprint pool of the keeper's current members; grows as
            // dup members are moved in, so later dup members can still
            // merge against them.
            let mut pool: Vec<(u64, NodeId)> = inst
                .set_members(keeper)
                .unwrap_or(&[])
                .to_vec()
                .into_iter()
                .map(|k| (fp_of(inst, k), k))
                .collect();
            for dm in dup_members {
                let f = fp_of(inst, dm);
                let found = pool
                    .iter()
                    .copied()
                    .find(|&(pf, pk)| pf == f && non_set_eq(inst, pk, dm))
                    .map(|(_, pk)| pk);
                match found {
                    Some(pk) => union_into(inst, pk, dm, fp_of),
                    None => {
                        inst.detach_set_member(dup, dm);
                        let mut kids: Vec<NodeId> =
                            inst.set_members(keeper).unwrap_or(&[]).to_vec();
                        kids.push(dm);
                        inst.replace_children(keeper, kids);
                        pool.push((f, dm));
                    }
                }
            }
        }
    }
}

// The Instance API installs whole Value trees; PNF needs incremental
// construction, so these helpers poke nodes in directly via the public
// building blocks.
fn raw_node(
    dst: &mut Instance,
    label: Label,
    parent: Option<NodeId>,
    data: NodeData,
    is_root: bool,
) -> NodeId {
    dst.push_raw(label, parent, data, is_root)
}

fn set_children(dst: &mut Instance, id: NodeId, kids: Vec<NodeId>) {
    dst.replace_children(id, kids);
}

fn set_choice(dst: &mut Instance, id: NodeId, kid: NodeId) {
    dst.replace_children(id, vec![kid]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Value;
    use crate::value::MappingName;

    fn contact(title: &str, phone: &str) -> Value {
        Value::record(vec![
            ("title", Value::str(title)),
            ("phone", Value::str(phone)),
        ])
    }

    #[test]
    fn duplicate_members_merge() {
        let mut inst = Instance::new("Pdb");
        let root = inst.install_root(
            "contacts",
            Value::set(vec![
                contact("HomeGain", "18009468501"),
                contact("HomeGain", "18009468501"),
                contact("Acme", "5551234"),
            ]),
        );
        let members = inst.set_members(root).unwrap().to_vec();
        inst.add_mapping(members[0], MappingName::new("m2"));
        inst.add_mapping(members[1], MappingName::new("m3"));
        assert!(!is_pnf(&inst));

        let pnf = to_pnf(&inst);
        assert!(is_pnf(&pnf));
        let root2 = pnf.root("contacts").unwrap();
        let members2 = pnf.set_members(root2).unwrap();
        assert_eq!(members2.len(), 2);
        // The merged HomeGain member carries the union {m2, m3} - the
        // behaviour Figure 3 illustrates.
        let homegain = members2
            .iter()
            .copied()
            .find(|&m| {
                pnf.child_by_label(m, "title")
                    .and_then(|t| pnf.atomic(t))
                    .and_then(|v| v.as_str())
                    == Some("HomeGain")
            })
            .unwrap();
        let ms: Vec<&str> = pnf
            .annotation(homegain)
            .mappings
            .iter()
            .map(|m| m.as_str())
            .collect();
        assert_eq!(ms, ["m2", "m3"]);
    }

    #[test]
    fn nested_sets_union_recursively() {
        // Two `posting` members equal on hid, each with one distinct agent:
        // after PNF the posting merges and holds both agents.
        let posting = |hid: &str, agent: &str| {
            Value::record(vec![
                ("hid", Value::str(hid)),
                (
                    "agents",
                    Value::set(vec![Value::record(vec![("agentName", Value::str(agent))])]),
                ),
            ])
        };
        let mut inst = Instance::new("EUdb");
        inst.install_root(
            "postings",
            Value::set(vec![posting("H1", "alice"), posting("H1", "bob")]),
        );
        let pnf = to_pnf(&inst);
        let root = pnf.root("postings").unwrap();
        let members = pnf.set_members(root).unwrap();
        assert_eq!(members.len(), 1);
        let agents = pnf.child_by_label(members[0], "agents").unwrap();
        assert_eq!(pnf.set_members(agents).unwrap().len(), 2);
        assert!(is_pnf(&pnf));
    }

    #[test]
    fn renormalize_set_remerges_in_place() {
        // Two postings equal on hid, distinct agents, distinct mapping
        // annotations: renormalizing just the postings set merges them,
        // unions the nested agents set and the f_mp annotations, and
        // strips the detached duplicate so it never pollutes
        // interpretations.
        let posting = |agent: &str| {
            Value::record(vec![
                ("hid", Value::str("H1")),
                (
                    "agents",
                    Value::set(vec![Value::record(vec![("agentName", Value::str(agent))])]),
                ),
            ])
        };
        let mut inst = Instance::new("EUdb");
        let root = inst.install_root(
            "postings",
            Value::set(vec![posting("alice"), posting("bob"), posting("alice")]),
        );
        let members = inst.set_members(root).unwrap().to_vec();
        inst.add_mapping(members[0], MappingName::new("m1"));
        inst.add_mapping(members[1], MappingName::new("m2"));
        inst.add_mapping(members[2], MappingName::new("m3"));
        assert!(!is_pnf(&inst));

        let merged = renormalize_set(&mut inst, root);
        assert_eq!(merged, 2);
        assert!(is_pnf(&inst));
        let keepers = inst.set_members(root).unwrap().to_vec();
        assert_eq!(keepers.len(), 1);
        let ms: Vec<&str> = inst
            .annotation(keepers[0])
            .mappings
            .iter()
            .map(|m| m.as_str())
            .collect();
        assert_eq!(ms, ["m1", "m2", "m3"]);
        // Nested agents unioned and deduplicated: alice once, bob once.
        let agents = inst.child_by_label(keepers[0], "agents").unwrap();
        assert_eq!(inst.set_members(agents).unwrap().len(), 2);
        // The detached duplicates carry no annotations any more.
        assert!(inst.annotation(members[1]).mappings.is_empty());
        assert!(inst.annotation(members[2]).mappings.is_empty());
        // Idempotent once in PNF.
        assert_eq!(renormalize_set(&mut inst, root), 0);
    }

    #[test]
    fn members_differing_on_atomics_do_not_merge() {
        let mut inst = Instance::new("Pdb");
        inst.install_root(
            "contacts",
            Value::set(vec![contact("A", "1"), contact("A", "2")]),
        );
        assert!(is_pnf(&inst));
        let pnf = to_pnf(&inst);
        let root = pnf.root("contacts").unwrap();
        assert_eq!(pnf.set_members(root).unwrap().len(), 2);
    }

    #[test]
    fn duplicate_nested_members_dedup() {
        // Same agent appearing under both copies merges away.
        let posting = |agent: &str| {
            Value::record(vec![
                ("hid", Value::str("H1")),
                (
                    "agents",
                    Value::set(vec![Value::record(vec![("agentName", Value::str(agent))])]),
                ),
            ])
        };
        let mut inst = Instance::new("EUdb");
        inst.install_root(
            "postings",
            Value::set(vec![posting("alice"), posting("alice")]),
        );
        let pnf = to_pnf(&inst);
        let root = pnf.root("postings").unwrap();
        let members = pnf.set_members(root).unwrap();
        assert_eq!(members.len(), 1);
        let agents = pnf.child_by_label(members[0], "agents").unwrap();
        assert_eq!(pnf.set_members(agents).unwrap().len(), 1);
    }

    #[test]
    fn choice_members_merge_only_on_same_selection() {
        let ch =
            |alt: &str, v: &str| Value::record(vec![("title", Value::choice(alt, Value::str(v)))]);
        let mut inst = Instance::new("USdb");
        inst.install_root(
            "agents",
            Value::set(vec![
                ch("name", "Smith"),
                ch("firm", "Smith"),
                ch("name", "Smith"),
            ]),
        );
        let pnf = to_pnf(&inst);
        let root = pnf.root("agents").unwrap();
        // name:Smith merges with name:Smith; firm:Smith stays separate.
        assert_eq!(pnf.set_members(root).unwrap().len(), 2);
    }

    #[test]
    fn forced_fingerprint_collision_does_not_merge() {
        // Regression: with a constant "hasher" every member lands in one
        // fingerprint bucket, which the old code merged wholesale. The
        // structural confirmation must keep distinct members apart while
        // still merging true duplicates (and unioning their annotations).
        let mut inst = Instance::new("Pdb");
        let root = inst.install_root(
            "contacts",
            Value::set(vec![
                contact("HomeGain", "18009468501"),
                contact("HomeGain", "18009468501"),
                contact("Acme", "5551234"),
            ]),
        );
        let members = inst.set_members(root).unwrap().to_vec();
        inst.add_mapping(members[0], MappingName::new("m2"));
        inst.add_mapping(members[1], MappingName::new("m3"));

        let collide_all = |_: &Instance, _: NodeId| 0u64;
        let pnf = to_pnf_with(&inst, &collide_all);
        assert!(is_pnf(&pnf));
        let root2 = pnf.root("contacts").unwrap();
        let members2 = pnf.set_members(root2).unwrap().to_vec();
        assert_eq!(members2.len(), 2, "distinct members must survive");
        let title = |m: NodeId| {
            pnf.child_by_label(m, "title")
                .and_then(|t| pnf.atomic(t))
                .and_then(|v| v.as_str())
                .map(str::to_owned)
        };
        let titles: Vec<_> = members2.iter().filter_map(|&m| title(m)).collect();
        assert_eq!(titles, ["HomeGain", "Acme"]);
        let ms: Vec<&str> = pnf
            .annotation(members2[0])
            .mappings
            .iter()
            .map(|m| m.as_str())
            .collect();
        assert_eq!(ms, ["m2", "m3"], "true duplicates still merge");
        // And the result agrees with the real hasher's result.
        let reference = to_pnf(&inst);
        let ref_root = reference.root("contacts").unwrap();
        assert_eq!(reference.set_members(ref_root).unwrap().len(), 2);
    }

    #[test]
    fn non_set_eq_treats_sets_as_opaque() {
        let posting = |agent: &str| {
            Value::record(vec![
                ("hid", Value::str("H1")),
                (
                    "agents",
                    Value::set(vec![Value::record(vec![("agentName", Value::str(agent))])]),
                ),
            ])
        };
        let mut inst = Instance::new("EUdb");
        let root = inst.install_root(
            "postings",
            Value::set(vec![posting("alice"), posting("bob")]),
        );
        let members = inst.set_members(root).unwrap().to_vec();
        // Different nested-set contents, same non-set content: equal under
        // the PNF identity (they merge), and their fingerprints agree.
        assert!(non_set_eq(&inst, members[0], members[1]));
        assert_eq!(
            non_set_fingerprint(&inst, members[0]),
            non_set_fingerprint(&inst, members[1])
        );
    }

    #[test]
    fn element_annotations_survive_pnf() {
        use crate::schema::Schema;
        use crate::types::{AtomicType, Type};
        let schema = Schema::build(
            "Pdb",
            vec![(
                "contacts",
                Type::relation(vec![
                    ("title", AtomicType::String),
                    ("phone", AtomicType::String),
                ]),
            )],
        )
        .unwrap();
        let mut inst = Instance::new("Pdb");
        inst.install_root(
            "contacts",
            Value::set(vec![contact("A", "1"), contact("A", "1")]),
        );
        inst.annotate_elements(&schema).unwrap();
        let pnf = to_pnf(&inst);
        let title_elem = schema.resolve_path("/contacts/title").unwrap();
        assert_eq!(pnf.interpretation(title_elem).len(), 1);
    }
}
