//! # dtr-model — the nested relational data model
//!
//! The data model of *Representing and Querying Data Transformations*
//! (Velegrakis, Miller, Mylopoulos — ICDE 2005), Section 4: a relational
//! model extended with union (choice) types and nested structures, used as
//! the common model for heterogeneous integrated data.
//!
//! * [`types`] — atomic, record, choice and set types (Section 4.1).
//! * [`schema`] — schemas as element forests `<E, f_parent>` (Definition 4.1).
//! * [`value`] — atomic values, including the `Database` / `Mapping` /
//!   `Element` meta-values of Section 5.
//! * [`instance`] — instances as value trees (Definition 4.2) with the
//!   annotation slots of tagged instances (Definition 5.2).
//! * [`pnf`] — Partition Normal Form merging, the normal form produced by
//!   the data exchange methodology and exploited by Section 8's annotation
//!   compression.
//! * [`display`] — Figure 3-style tree renderings.
//!
//! ```
//! use dtr_model::prelude::*;
//!
//! let schema = Schema::build(
//!     "Pdb",
//!     vec![(
//!         "contacts",
//!         Type::relation(vec![
//!             ("title", AtomicType::String),
//!             ("phone", AtomicType::String),
//!         ]),
//!     )],
//! )
//! .unwrap();
//!
//! let mut inst = Instance::new("Pdb");
//! inst.install_root(
//!     "contacts",
//!     Value::set(vec![Value::record(vec![
//!         ("title", Value::str("HomeGain")),
//!         ("phone", Value::str("18009468501")),
//!     ])]),
//! );
//! inst.annotate_elements(&schema).unwrap();
//! let title = schema.resolve_path("/contacts/title").unwrap();
//! assert_eq!(inst.interpretation(title).len(), 1);
//! ```

#![warn(missing_docs)]

pub mod display;
pub mod instance;
pub mod label;
pub mod pnf;
pub mod schema;
pub mod types;
pub mod value;

/// Convenient glob-import of the most used names.
pub mod prelude {
    pub use crate::display::{render_instance, RenderOptions};
    pub use crate::instance::{Annotation, Instance, Node, NodeData, NodeId, Value};
    pub use crate::label::Label;
    pub use crate::pnf::{is_pnf, non_set_eq, non_set_fingerprint, to_pnf, to_pnf_with};
    pub use crate::schema::{Element, ElementId, ElementKind, Schema};
    pub use crate::types::{AtomicType, Type};
    pub use crate::value::{AtomicValue, ElementRef, MappingName};
}

pub use prelude::*;
