//! End-to-end checks of the `dtr-obs` instrumentation: per-mapping exchange
//! statistics, the global counter registry, the aggregated span tree, and
//! the profile's JSON round trip.
//!
//! The span collector is thread-local but the enable gate and the counter
//! registry are global, so every test here takes `GUARD` to serialize.

use dtr_core::tagged::{MappingSetting, TaggedInstance};
use dtr_core::testkit;
use dtr_obs::PipelineProfile;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

/// A two-mapping setting: m2 (US firms) and m3 (EU postings). Both emit the
/// HomeGain contact, so m3 — running second — merges it into m2's row (the
/// Figure 3 PNF merge).
fn two_mapping_tagged() -> TaggedInstance {
    let setting = MappingSetting::new(
        vec![testkit::us_schema(), testkit::eu_schema()],
        testkit::portal_schema(),
        vec![testkit::m2(), testkit::m3()],
    )
    .expect("the two-mapping setting validates");
    TaggedInstance::exchange(
        setting,
        vec![testkit::us_instance(), testkit::eu_instance()],
    )
    .expect("the two-mapping exchange succeeds")
}

#[test]
fn two_mapping_exchange_stats_spans_and_counters() {
    let _guard = GUARD.lock().unwrap();
    dtr_obs::set_enabled(true);
    dtr_obs::profile_reset();

    let tagged = two_mapping_tagged();
    let profile = dtr_obs::profile_snapshot();
    dtr_obs::set_enabled(false);

    // Per-mapping report stats: one entry per mapping, and every merge
    // decision is either an insert or a PNF merge.
    let report = tagged.report();
    assert_eq!(report.per_mapping.len(), 2);
    for stats in &report.per_mapping {
        assert!(stats.tuples > 0, "{stats:?}");
        assert!(stats.bindings > 0, "{stats:?}");
        assert_eq!(
            stats.bindings,
            stats.rows_inserted + stats.rows_merged,
            "{stats:?}"
        );
        assert!(stats.annotations_written > 0, "{stats:?}");
    }
    // m2 runs first into an empty target and inserts everything; m3 emits
    // the same HomeGain contact, which must PNF-merge rather than insert.
    let m2 = report.stats_for("m2").expect("m2 stats present");
    assert_eq!(m2.rows_merged, 0);
    let m3 = report.stats_for("m3").expect("m3 stats present");
    assert!(m3.rows_merged > 0, "{m3:?}");

    // The global counters agree with the report totals.
    let totals = report.totals();
    assert_eq!(
        profile.counter("exchange.rows_inserted"),
        Some(totals.rows_inserted as u64)
    );
    assert_eq!(
        profile.counter("exchange.rows_merged"),
        Some(totals.rows_merged as u64)
    );
    assert_eq!(
        profile.counter("exchange.annotations_written"),
        Some(totals.annotations_written as u64)
    );
    assert_eq!(
        profile.counter("exchange.annotations_suppressed"),
        Some(totals.annotations_suppressed as u64)
    );

    // The span tree aggregates both mappings under one run_mapping node.
    let tagged_stage = profile
        .stages
        .iter()
        .find(|s| s.name == "exchange.tagged_instance")
        .expect("tagged_instance stage recorded");
    let execute = tagged_stage
        .children
        .iter()
        .find(|c| c.name == "exchange.execute_mappings")
        .expect("execute_mappings child recorded");
    let run = execute
        .children
        .iter()
        .find(|c| c.name == "exchange.run_mapping")
        .expect("run_mapping child recorded");
    assert_eq!(run.count, 2);
    assert!(run.total_ns >= run.min_ns + run.max_ns - run.total_ns.min(1));
    // insert_row runs once per foreach tuple (each call walks every
    // exists-clause binding of that tuple).
    let insert = run
        .children
        .iter()
        .find(|c| c.name == "exchange.insert_row")
        .expect("insert_row child recorded");
    assert_eq!(insert.count, totals.tuples as u64);
}

#[test]
fn exchange_profile_round_trips_through_serde_json() {
    let _guard = GUARD.lock().unwrap();
    dtr_obs::set_enabled(true);
    dtr_obs::profile_reset();

    let tagged = two_mapping_tagged();
    let _ = tagged
        .query("select x.hid, m from Portal.estates x, x.value@map m")
        .expect("MXQL query runs");
    let profile = dtr_obs::profile_snapshot();
    dtr_obs::set_enabled(false);

    assert!(profile.counter("eval.tuples_scanned").unwrap_or(0) > 0);
    assert!(profile.counter("eval.bindings_enumerated").unwrap_or(0) > 0);

    let text = serde_json::to_string_pretty(&profile.to_json()).expect("serializes");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("parses back");
    let round = PipelineProfile::from_json(&parsed).expect("valid profile JSON");
    assert_eq!(round, profile);

    // The compact form round-trips too.
    let compact: serde_json::Value =
        serde_json::from_str(&profile.to_json_string()).expect("compact parses");
    assert_eq!(PipelineProfile::from_json(&compact).unwrap(), profile);
}

#[test]
fn disabled_profiling_records_nothing() {
    let _guard = GUARD.lock().unwrap();
    dtr_obs::set_enabled(false);
    // The counter registry also ticks while the flight recorder is live
    // (so `DTR_FLIGHT=1` alone yields counter samples); park it so this
    // test observes the fully-disabled path even under that env.
    let flight_was_on = dtr_obs::recorder::enabled();
    dtr_obs::recorder::set_enabled(false);
    dtr_obs::profile_reset();

    let tagged = two_mapping_tagged();
    // Local report stats are always on (plain integer bumps)...
    assert!(tagged.report().totals().bindings > 0);
    // ...but no spans or counters were recorded globally.
    let profile = dtr_obs::profile_snapshot();
    assert!(profile.stages.is_empty());
    assert_eq!(profile.counter("exchange.rows_inserted"), Some(0));
    assert_eq!(profile.counter("eval.tuples_scanned"), Some(0));

    // EvalStats on QueryResult are always populated as well.
    let r = tagged
        .query("select x.hid from Portal.estates x")
        .expect("query runs");
    assert!(r.stats.tuples_scanned > 0);
    assert!(r.stats.bindings_enumerated > 0);
    dtr_obs::recorder::set_enabled(flight_was_on);
}
