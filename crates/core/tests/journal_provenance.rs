//! Cross-checks the `dtr-journal` event stream against the Section 6
//! provenance machinery: every `Inserted` event recorded during a
//! two-mapping exchange must correspond to a real foreach binding (same
//! fingerprint when the foreach query is replayed), and where-provenance of
//! the inserted values must land inside exactly that journaled binding.
//!
//! The journal gate is global, so every test here takes `GUARD` to
//! serialize (the `dtr-obs` crate's own guard is crate-private).

use dtr_core::provenance::{check_theorem_6_1, check_theorem_6_4, provenance_of, ProvenanceKind};
use dtr_core::tagged::{MappingSetting, TaggedInstance};
use dtr_core::testkit;
use dtr_mapping::exchange::row_fingerprint;
use dtr_model::instance::NodeId;
use dtr_model::value::MappingName;
use dtr_obs::journal::{self, Outcome};
use dtr_query::eval::Evaluator;
use std::collections::HashMap;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

/// The Figure 3 two-mapping setting: m2 (US firms) and m3 (EU postings)
/// both emit the HomeGain contact, so m3 PNF-merges into m2's row.
fn two_mapping_tagged() -> TaggedInstance {
    let setting = MappingSetting::new(
        vec![testkit::us_schema(), testkit::eu_schema()],
        testkit::portal_schema(),
        vec![testkit::m2(), testkit::m3()],
    )
    .expect("the two-mapping setting validates");
    TaggedInstance::exchange(
        setting,
        vec![testkit::us_instance(), testkit::eu_instance()],
    )
    .expect("the two-mapping exchange succeeds")
}

/// Replays every mapping's foreach query over the sources and returns, per
/// mapping name, the fingerprints of its binding rows together with the
/// rows themselves.
#[allow(clippy::type_complexity)]
fn replay_foreach(
    tagged: &TaggedInstance,
) -> HashMap<String, Vec<(u64, Vec<dtr_model::value::AtomicValue>)>> {
    let catalog = tagged.source_catalog();
    let mut out = HashMap::new();
    for m in tagged.setting().mappings() {
        let rows = Evaluator::new(&catalog, tagged.functions())
            .run(&m.foreach)
            .expect("foreach replays")
            .tuples();
        out.insert(
            m.name.to_string(),
            rows.into_iter()
                .map(|r| (row_fingerprint(&r), r))
                .collect::<Vec<_>>(),
        );
    }
    out
}

/// All atomic descendants of `root` (including `root` itself).
fn atomic_descendants(tagged: &TaggedInstance, root: NodeId) -> Vec<NodeId> {
    let inst = tagged.target();
    let mut stack = vec![root];
    let mut out = Vec::new();
    while let Some(n) = stack.pop() {
        if inst.atomic(n).is_some() {
            out.push(n);
        }
        stack.extend(inst.children(n).iter().copied());
    }
    out
}

#[test]
fn inserted_events_replay_to_real_foreach_bindings() {
    let _guard = GUARD.lock().unwrap();
    dtr_obs::set_enabled(false);
    journal::set_enabled(true);
    journal::reset();

    let tagged = two_mapping_tagged();
    let events = journal::events();
    journal::set_enabled(false);

    let bindings = replay_foreach(&tagged);
    let mut inserted = 0usize;
    for e in events.iter().filter(|e| e.stage == "exchange.insert_row") {
        assert!(
            matches!(e.outcome, Outcome::Inserted | Outcome::PnfMerged { .. }),
            "insert_row events are inserts or merges: {e:?}"
        );
        let mapping = e.mapping.as_deref().expect("insert events name a mapping");
        let fp = e.binding_fp.expect("insert events carry a binding");
        let rows = bindings.get(mapping).expect("mapping exists");
        assert!(
            rows.iter().any(|(rfp, _)| *rfp == fp),
            "event #{} fingerprint {fp:016x} is not a binding of {mapping}",
            e.id
        );
        if matches!(e.outcome, Outcome::Inserted) {
            inserted += 1;
        }
    }
    assert!(inserted > 0, "the exchange journals at least one insert");

    // The report totals agree with the event stream.
    let totals = tagged.report().totals();
    assert_eq!(inserted, totals.rows_inserted);
    let merged = events
        .iter()
        .filter(|e| {
            e.stage == "exchange.insert_row" && matches!(e.outcome, Outcome::PnfMerged { .. })
        })
        .count();
    assert_eq!(merged, totals.rows_merged);
}

#[test]
fn where_provenance_reaches_the_journaled_binding() {
    let _guard = GUARD.lock().unwrap();
    dtr_obs::set_enabled(false);
    journal::set_enabled(true);
    journal::reset();

    let tagged = two_mapping_tagged();
    let events = journal::events();
    journal::set_enabled(false);

    let bindings = replay_foreach(&tagged);
    let mut checked = 0usize;
    for e in events
        .iter()
        .filter(|e| e.stage == "exchange.insert_row" && matches!(e.outcome, Outcome::Inserted))
    {
        let mapping = MappingName::new(e.mapping.as_deref().unwrap());
        let target = NodeId(u32::try_from(e.target.expect("insert has target")).unwrap());
        let fp = e.binding_fp.unwrap();

        // The lineage index knows this event produced this node.
        assert!(
            journal::lineage_of(u64::from(target.0)).contains(&e.id),
            "lineage index misses event #{} for node {}",
            e.id,
            target.0
        );

        // The journaled fingerprint identifies one replayed foreach row.
        let row = bindings[mapping.0.as_str()]
            .iter()
            .find(|(rfp, _)| *rfp == fp)
            .map(|(_, r)| r.clone())
            .expect("journaled binding replays");

        // Every atomic value under the inserted node that this mapping
        // annotated must have where-provenance, and every where-provenance
        // fact must be drawn from the journaled binding row.
        for leaf in atomic_descendants(&tagged, target) {
            if !tagged.mappings_of(leaf).contains(&mapping) {
                continue;
            }
            let Ok(p) = provenance_of(&tagged, ProvenanceKind::Where, &mapping, leaf) else {
                // The mapping annotates skeleton ancestors it does not
                // populate (no select position) — those have no
                // where-provenance to check.
                continue;
            };
            assert!(
                !p.facts.is_empty(),
                "no where-provenance for node {} via {mapping}",
                leaf.0
            );
            let journaled = p
                .facts
                .tuples()
                .iter()
                .any(|fact| fact.iter().all(|v| row.contains(v)));
            assert!(
                journaled,
                "where-provenance of node {} via {mapping} never lands in \
                 the journaled binding {fp:016x}",
                leaf.0
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "the cross-check exercised at least one value");
}

#[test]
fn theorems_6_1_and_6_4_hold_with_the_journal_enabled() {
    let _guard = GUARD.lock().unwrap();
    dtr_obs::set_enabled(false);
    journal::set_enabled(true);
    journal::reset();

    let tagged = two_mapping_tagged();
    for name in ["m2", "m3"] {
        let m = MappingName::new(name);
        assert_eq!(
            check_theorem_6_1(&tagged, &m).expect("6.1 check runs"),
            None,
            "Theorem 6.1 fails for {name} with the journal on"
        );
        assert_eq!(
            check_theorem_6_4(&tagged, &m).expect("6.4 check runs"),
            None,
            "Theorem 6.4 fails for {name} with the journal on"
        );
    }
    journal::set_enabled(false);
}

#[test]
fn event_windows_slice_the_journal_per_mapping() {
    let _guard = GUARD.lock().unwrap();
    dtr_obs::set_enabled(false);
    journal::set_enabled(true);
    journal::reset();

    let tagged = two_mapping_tagged();
    journal::set_enabled(false);

    let report = tagged.report();
    let overall = report.event_window().expect("exchange recorded events");
    for stats in &report.per_mapping {
        let (start, end) = stats
            .event_window()
            .expect("each mapping recorded at least one event");
        assert!(start >= overall.0 && end <= overall.1);
        let window = journal::events_in(start, end);
        assert!(!window.is_empty(), "window of {} is empty", stats.mapping);
        // Every named event inside a mapping's window belongs to it (PNF
        // merge events from the model layer carry no mapping name).
        for e in &window {
            if let Some(name) = e.mapping.as_deref() {
                assert_eq!(
                    name,
                    stats.mapping.0.as_str(),
                    "event #{} from {} leaked into the window of {}",
                    e.id,
                    name,
                    stats.mapping
                );
            }
        }
        // The per-mapping insert/merge counts are recoverable by slicing.
        let inserts = window
            .iter()
            .filter(|e| e.stage == "exchange.insert_row" && matches!(e.outcome, Outcome::Inserted))
            .count();
        let merges = window
            .iter()
            .filter(|e| {
                e.stage == "exchange.insert_row" && matches!(e.outcome, Outcome::PnfMerged { .. })
            })
            .count();
        assert_eq!(inserts, stats.rows_inserted, "{}", stats.mapping);
        assert_eq!(merges, stats.rows_merged, "{}", stats.mapping);
    }
}

#[test]
fn disabled_journal_records_nothing_during_exchange() {
    let _guard = GUARD.lock().unwrap();
    dtr_obs::set_enabled(false);
    journal::set_enabled(false);
    journal::reset();

    let tagged = two_mapping_tagged();
    assert!(tagged.report().totals().bindings > 0);
    assert!(journal::events().is_empty());
    assert_eq!(journal::summary().recorded, 0);
    assert_eq!(tagged.report().event_window(), None);
}
