//! Concurrency soak for the epoch snapshot store and the WAL-then-publish
//! commit protocol: pinned epochs must stay byte-identical while the
//! writer advances the head, and a writer crash between the WAL commit
//! and the epoch publish must recover to exactly one of the two adjacent
//! epochs.

use dtr_core::store::{DurableOptions, DurableSession};
use dtr_core::testkit::{figure1_setting, figure1_sources};
use dtr_mapping::delta::SourceDelta;
use dtr_mapping::durable::{MemVfs, Vfs};
use dtr_model::instance::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn house(hid: &str) -> Value {
    Value::record(vec![
        ("hid", Value::str(hid)),
        ("floors", Value::str("3")),
        ("price", Value::str("600K")),
        ("aid", Value::str("a1")),
    ])
}

fn session(vfs: Arc<dyn Vfs>) -> DurableSession {
    DurableSession::create(
        figure1_setting(),
        figure1_sources(),
        None,
        vfs,
        "wal",
        DurableOptions {
            checkpoint_every: 0,
            backoff_ms: 0,
            ..DurableOptions::default()
        },
    )
    .unwrap()
}

/// N reader threads continuously pin the head and re-query it while one
/// writer commits batches. Every pinned epoch must answer queries from a
/// frozen state: its canonical bytes never change, its row count matches
/// what that epoch's batch implies, and head ids observed by each reader
/// are monotone.
#[test]
fn readers_keep_pinned_epochs_while_writer_advances() {
    const READERS: usize = 4;
    const BATCHES: usize = 20;
    let vfs = Arc::new(MemVfs::new());
    let mut writer = session(vfs);
    let snapshots = writer.snapshots();
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let snapshots = snapshots.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last_id = 0u64;
                let mut checks = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let epoch = snapshots.pin();
                    assert!(epoch.id >= last_id, "head id went backwards");
                    last_id = epoch.id;
                    // The pinned snapshot is frozen: re-reading its
                    // canonical form and re-running a query must agree
                    // with itself no matter how far the writer has moved.
                    let before = epoch.canonical().to_string();
                    let rows = epoch
                        .tagged()
                        .query("select x.hid from Portal.estates x")
                        .unwrap();
                    std::thread::yield_now();
                    assert_eq!(epoch.canonical(), before, "pinned epoch bytes changed");
                    let again = epoch
                        .tagged()
                        .query("select x.hid from Portal.estates x")
                        .unwrap();
                    assert_eq!(rows.len(), again.len(), "pinned epoch answers drifted");
                    checks += 1;
                }
                checks
            })
        })
        .collect();

    // One insert per batch: row count at batch b is 3 + b, so any reader
    // holding an old epoch sees a smaller, internally consistent count.
    let first = writer.pin();
    for b in 0..BATCHES {
        writer
            .apply(&SourceDelta::new().insert("US.houses", house(&format!("H{b:03}"))))
            .unwrap();
    }
    let head = writer.pin();
    stop.store(true, Ordering::Release);
    let total_checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_checks > 0, "readers never got to pin an epoch");

    // The epoch pinned before any batch is still byte-identical to its
    // original state even though the head moved BATCHES epochs ahead.
    assert_eq!(first.id + BATCHES as u64, head.id);
    let rows = first
        .tagged()
        .query("select x.hid from Portal.estates x")
        .unwrap();
    assert_eq!(rows.len(), 3, "the pre-write epoch grew new rows");
    let rows = head
        .tagged()
        .query("select x.hid from Portal.estates x")
        .unwrap();
    assert_eq!(rows.len(), 3 + BATCHES);
}

/// Simulates the writer dying between the WAL fsync (commit point) and
/// the epoch publish: the disk image carries the committed frame, but no
/// reader ever saw the post-delta epoch. Recovery must converge to the
/// post-delta state (the frame is durable) — and if the frame had been
/// torn instead, to the pre-delta state. Never anything in between.
#[test]
fn writer_crash_between_wal_commit_and_publish_recovers_adjacent_epoch() {
    let vfs = Arc::new(MemVfs::new());
    let mut writer = session(vfs.clone());
    writer
        .apply(&SourceDelta::new().insert("US.houses", house("H100")))
        .unwrap();
    let pre = writer.pin().canonical().to_string();
    let pre_len = writer.wal_committed_len();

    // The next apply commits to the WAL and publishes; the publish is
    // memory-only, so the disk image right after the apply is exactly the
    // image a crash-between-commit-and-publish leaves behind.
    writer
        .apply(&SourceDelta::new().insert("US.houses", house("H101")))
        .unwrap();
    let post = writer.pin().canonical().to_string();
    let post_len = writer.wal_committed_len();
    let crashed = vfs.clone_files();
    drop(writer);

    let (recovered, report) =
        DurableSession::open(Arc::new(crashed), "wal", DurableOptions::default()).unwrap();
    assert_eq!(report.replayed, 2);
    let got = recovered.pin().canonical().to_string();
    assert_eq!(got, post, "durable frame must recover the post-delta epoch");

    // The adjacent alternative: the same crash with the frame torn at any
    // byte recovers the pre-delta epoch instead — one of the two, always.
    for cut in [pre_len + 1, (pre_len + post_len) / 2, post_len - 1] {
        let torn = vfs.clone_files();
        torn.truncate("wal/wal-000001.log", cut).unwrap();
        let (recovered, report) =
            DurableSession::open(Arc::new(torn), "wal", DurableOptions::default()).unwrap();
        assert_eq!(report.replayed, 1, "torn frame at byte {cut} replayed");
        let got = recovered.pin().canonical().to_string();
        assert_eq!(
            got, pre,
            "torn frame at byte {cut} must recover the pre-delta epoch"
        );
        assert_ne!(got, post);
    }
}
