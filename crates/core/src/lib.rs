//! # dtr-core — tagged instances, MXQL, and schema-level provenance
//!
//! The primary contribution of *Representing and Querying Data
//! Transformations* (Velegrakis, Miller, Mylopoulos — ICDE 2005): schemas
//! and mappings elevated to first-class citizens, data values annotated
//! with their schema element (`f_el`) and generating mappings (`f_mp`), and
//! the **MXQL** query language that manipulates data and meta-data
//! uniformly.
//!
//! * [`tagged`] — mapping settings (Definition 5.1) and tagged instances
//!   (Definition 5.2), with direct MXQL evaluation (Section 5).
//! * [`mod@translate`] — the MXQL → plain-query translation over the metastore
//!   (Section 7.3).
//! * [`runner`] — the translated execution pipeline (encode + view + run).
//! * [`provenance`] — where/what/why-provenance and the Theorem 6.1 / 6.4
//!   characterizations (Section 6).
//! * [`inclusion`] — element inclusion between queries (Definition 6.3).
//! * [`incremental`] — continuous-ingest sessions over the delta-driven
//!   exchange engine.
//! * [`mod@virtualize`] — virtual integration by query rewriting (the
//!   conclusion's future work).
//! * [`whatif`] — impact analysis for sources and mappings (the
//!   introduction's "what-if" scenarios).
//! * [`testkit`] — the paper's running example (Figures 1–3), ready-made.
//!
//! ```
//! use dtr_core::testkit::figure1;
//!
//! // Example 5.4: which transformation generated each price?
//! let tagged = figure1();
//! let result = tagged
//!     .query("select x.hid, x.value, m from Portal.estates x, x.value@map m")
//!     .unwrap();
//! assert_eq!(result.len(), 3);
//! ```

#![warn(missing_docs)]

pub mod inclusion;
pub mod incremental;
pub mod provenance;
pub mod runner;
pub mod store;
pub mod tagged;
pub mod testkit;
pub mod translate;
pub mod virtualize;
pub mod whatif;

/// Convenient glob-import of the most used names.
pub mod prelude {
    pub use crate::inclusion::element_included;
    pub use crate::incremental::IncrementalSession;
    pub use crate::provenance::{
        check_theorem_6_1, check_theorem_6_4, provenance_of, provenance_query, Provenance,
        ProvenanceKind,
    };
    pub use crate::runner::{canonical_rows, MetaRunner};
    pub use crate::tagged::{MappingSetting, MxqlError, TaggedInstance};
    pub use crate::translate::{translate, translate_explained, TranslateError};
    pub use crate::virtualize::{answer_virtually, virtualize};
    pub use crate::whatif::{impact_of_mappings, impact_of_source, Impact};
}

pub use prelude::*;
