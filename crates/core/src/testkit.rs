//! The paper's running example (Figures 1–3) as a ready-made scenario.
//!
//! Three data sources appear throughout the paper: the American site
//! `USdb` (houses + agents with a name/firm choice), the European site
//! `EUdb` (postings with nested agents), and the integrated portal `Pdb`.
//! Mappings `m1`, `m2`, `m3` populate the portal. The sample instances are
//! chosen so that the exchange reproduces Figure 3 exactly: the `H522`
//! estate comes from the HomeGain firm (mapping `m2`), the `H2525` estate
//! from the European posting (mapping `m3`), and the shared `HomeGain`
//! contact carries the union annotation `{m2, m3}`.
//!
//! This module doubles as the repository's canonical quick-start fixture;
//! `dtr-portal` builds its large-scale scenarios in the same style.

use crate::tagged::{MappingSetting, TaggedInstance};
use dtr_mapping::glav::Mapping;
use dtr_model::instance::{Instance, Value};
use dtr_model::schema::Schema;
use dtr_model::types::{AtomicType, Type};

/// The USdb schema of Figure 1.
pub fn us_schema() -> Schema {
    Schema::build(
        "USdb",
        vec![(
            "US",
            Type::record(vec![
                (
                    "houses",
                    Type::relation(vec![
                        ("hid", AtomicType::String),
                        ("floors", AtomicType::String),
                        ("price", AtomicType::String),
                        ("pool", AtomicType::String),
                        ("aid", AtomicType::String),
                    ]),
                ),
                (
                    "agents",
                    Type::set(Type::record(vec![
                        ("aid", Type::string()),
                        (
                            "title",
                            Type::choice(vec![("name", Type::string()), ("firm", Type::string())]),
                        ),
                        ("phone", Type::string()),
                    ])),
                ),
            ]),
        )],
    )
    .expect("USdb schema is valid")
}

/// The EUdb schema of Figures 1–2 (elements e0..e9).
pub fn eu_schema() -> Schema {
    Schema::build(
        "EUdb",
        vec![(
            "EU",
            Type::record(vec![(
                "postings",
                Type::set(Type::record(vec![
                    ("hid", Type::string()),
                    ("levels", Type::string()),
                    ("totalVal", Type::string()),
                    (
                        "agents",
                        Type::set(Type::record(vec![
                            ("agentName", Type::string()),
                            ("agentPhone", Type::string()),
                        ])),
                    ),
                ])),
            )]),
        )],
    )
    .expect("EUdb schema is valid")
}

/// The Pdb portal schema of Figures 1–2 (elements e30..e40).
pub fn portal_schema() -> Schema {
    Schema::build(
        "Pdb",
        vec![(
            "Portal",
            Type::record(vec![
                (
                    "estates",
                    Type::relation(vec![
                        ("hid", AtomicType::String),
                        ("stories", AtomicType::String),
                        ("value", AtomicType::String),
                        ("contact", AtomicType::String),
                    ]),
                ),
                (
                    "contacts",
                    Type::relation(vec![
                        ("title", AtomicType::String),
                        ("phone", AtomicType::String),
                    ]),
                ),
            ]),
        )],
    )
    .expect("Pdb schema is valid")
}

/// Mapping `m1` of Figure 1: US houses with *independent agents*.
pub fn m1() -> Mapping {
    Mapping::parse(
        "m1",
        "foreach
           select h.hid, h.floors, h.price, n, a.phone
           from US.houses h, US.agents a, a.title->name n
           where h.aid = a.aid
         exists
           select e.hid, e.stories, e.value, c.title, c.phone
           from Portal.estates e, Portal.contacts c
           where e.contact = c.title",
    )
    .expect("m1 parses")
}

/// Mapping `m2` of Figure 1: US houses with *firms*.
pub fn m2() -> Mapping {
    Mapping::parse(
        "m2",
        "foreach
           select h.hid, h.floors, h.price, f, a.phone
           from US.houses h, US.agents a, a.title->firm f
           where h.aid = a.aid
         exists
           select e.hid, e.stories, e.value, c.title, c.phone
           from Portal.estates e, Portal.contacts c
           where e.contact = c.title",
    )
    .expect("m2 parses")
}

/// Mapping `m3` of Figure 1: the European postings.
pub fn m3() -> Mapping {
    Mapping::parse(
        "m3",
        "foreach
           select p.hid, p.levels, p.totalVal, a.agentName, a.agentPhone
           from EU.postings p, p.agents a
         exists
           select e.hid, e.stories, e.value, c.title, c.phone
           from Portal.estates e, Portal.contacts c
           where e.contact = c.title",
    )
    .expect("m3 parses")
}

/// The sample USdb instance: `H522` (the Figure 3 estate, listed by the
/// HomeGain firm) and `H7` (listed by the independent agent Smith).
pub fn us_instance() -> Instance {
    let mut inst = Instance::new("USdb");
    let house = |hid: &str, floors: &str, price: &str, pool: &str, aid: &str| {
        Value::record(vec![
            ("hid", Value::str(hid)),
            ("floors", Value::str(floors)),
            ("price", Value::str(price)),
            ("pool", Value::str(pool)),
            ("aid", Value::str(aid)),
        ])
    };
    let agent = |aid: &str, alt: &str, title: &str, phone: &str| {
        Value::record(vec![
            ("aid", Value::str(aid)),
            ("title", Value::choice(alt, Value::str(title))),
            ("phone", Value::str(phone)),
        ])
    };
    inst.install_root(
        "US",
        Value::record(vec![
            (
                "houses",
                Value::set(vec![
                    house("H522", "2", "500K", "no", "a2"),
                    house("H7", "1", "250K", "yes", "a1"),
                ]),
            ),
            (
                "agents",
                Value::set(vec![
                    agent("a1", "name", "Smith", "555-1111"),
                    agent("a2", "firm", "HomeGain", "18009468501"),
                ]),
            ),
        ]),
    );
    inst
}

/// The sample EUdb instance: the `H2525` posting handled by the HomeGain
/// agency (whose contact merges with `m2`'s in Figure 3).
pub fn eu_instance() -> Instance {
    let mut inst = Instance::new("EUdb");
    inst.install_root(
        "EU",
        Value::record(vec![(
            "postings",
            Value::set(vec![Value::record(vec![
                ("hid", Value::str("H2525")),
                ("levels", Value::str("1")),
                ("totalVal", Value::str("300K")),
                (
                    "agents",
                    Value::set(vec![Value::record(vec![
                        ("agentName", Value::str("HomeGain")),
                        ("agentPhone", Value::str("18009468501")),
                    ])]),
                ),
            ])]),
        )]),
    );
    inst
}

/// The Figure 1 mapping setting `<{USdb, EUdb}, Pdb, {m1, m2, m3}>`.
pub fn figure1_setting() -> MappingSetting {
    MappingSetting::new(
        vec![us_schema(), eu_schema()],
        portal_schema(),
        vec![m1(), m2(), m3()],
    )
    .expect("the Figure 1 setting validates")
}

/// The source instances, in setting order (USdb, EUdb).
pub fn figure1_sources() -> Vec<Instance> {
    vec![us_instance(), eu_instance()]
}

/// Runs the exchange and returns the full tagged instance — the Figure 3
/// state of the running example.
pub fn figure1() -> TaggedInstance {
    TaggedInstance::exchange(figure1_setting(), figure1_sources())
        .expect("the Figure 1 exchange succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_element_counts_match_figure_2() {
        assert_eq!(eu_schema().len(), 10); // e0..e9
        assert_eq!(portal_schema().len(), 11); // e30..e40
    }

    #[test]
    fn setting_validates() {
        let s = figure1_setting();
        assert_eq!(s.mappings().len(), 3);
        assert_eq!(s.source_schemas().len(), 2);
        assert_eq!(s.target_schema().name(), "Pdb");
    }
}
