//! Executing translated MXQL queries over the metastore (the full
//! Section 7 pipeline).
//!
//! [`MetaRunner`] encodes a mapping setting's schemas and mappings into the
//! metastore once, materializes the nested-relational view, and then runs
//! translated queries against *data instance + meta instance* with the
//! ordinary evaluator — exactly the execution strategy the paper describes:
//! "the user does not need to be aware of the details of the meta-data
//! storage schema".

use crate::tagged::{MappingSetting, MxqlError, TaggedInstance};
use crate::translate::{translate_budgeted, TranslateError};
use dtr_metastore::store::{MetaStore, StoreError};
use dtr_metastore::view::{meta_instance, meta_schema};
use dtr_model::instance::Instance;
use dtr_model::schema::Schema;
use dtr_obs::guard::Budget;
use dtr_query::ast::Query;
use dtr_query::eval::{EvalOptions, Evaluator, QueryResult, Source};
use dtr_query::parser::parse_query;

impl From<TranslateError> for MxqlError {
    fn from(e: TranslateError) -> Self {
        match e {
            TranslateError::Guard(g) => MxqlError::Guard(g),
            other => MxqlError::Other(other.to_string()),
        }
    }
}

fn store_err(e: StoreError) -> MxqlError {
    match e {
        StoreError::Guard(g) => MxqlError::Guard(g),
        other => MxqlError::Other(other.to_string()),
    }
}

/// A prepared metastore for one mapping setting.
pub struct MetaRunner {
    store: MetaStore,
    meta_schema: Schema,
    meta_inst: Instance,
}

impl MetaRunner {
    /// Encodes the setting's schemas and mappings (Section 7.1) and builds
    /// the queryable view.
    pub fn new(setting: &MappingSetting) -> Result<Self, MxqlError> {
        Self::new_budgeted(setting, &Budget::unlimited())
    }

    /// [`MetaRunner::new`] under a resource budget: the metastore encoding
    /// charges each stored row against `max_rows` and polls the deadline
    /// and cancellation flag. On a guard trip the partially built store is
    /// dropped — no half-encoded runner escapes.
    pub fn new_budgeted(setting: &MappingSetting, budget: &Budget) -> Result<Self, MxqlError> {
        let _span = dtr_obs::span("mxql.metastore_build")
            .field("schemas", setting.source_schemas().len() + 1)
            .field("mappings", setting.mappings().len());
        let mut meter = budget.meter("metastore.encode");
        let mut store = MetaStore::new();
        for s in setting.source_schemas() {
            store
                .add_schema_budgeted(s, &mut meter)
                .map_err(store_err)?;
        }
        store
            .add_schema_budgeted(setting.target_schema(), &mut meter)
            .map_err(store_err)?;
        let refs: Vec<&Schema> = setting.source_schemas().iter().collect();
        for m in setting.mappings() {
            store
                .add_mapping_budgeted(m, &refs, setting.target_schema(), &mut meter)
                .map_err(store_err)?;
        }
        let schema = meta_schema();
        let inst = meta_instance(&store, &schema);
        Ok(MetaRunner {
            store,
            meta_schema: schema,
            meta_inst: inst,
        })
    }

    /// The underlying relational store (for inspection / Figure 5 dumps).
    pub fn store(&self) -> &MetaStore {
        &self.store
    }

    /// The metastore as a queryable source.
    pub fn meta_source(&self) -> Source<'_> {
        Source {
            schema: &self.meta_schema,
            instance: &self.meta_inst,
        }
    }

    /// Translates an MXQL query (Section 7.3) and runs every branch of the
    /// resulting union over the tagged instance plus the metastore,
    /// concatenating and de-duplicating rows.
    pub fn run(&self, tagged: &TaggedInstance, q: &Query) -> Result<QueryResult, MxqlError> {
        self.run_budgeted(tagged, q, &Budget::unlimited())
    }

    /// [`MetaRunner::run`] under a resource budget: translation, every
    /// branch evaluation, and the union/de-duplication loop all observe the
    /// same budget, so `max_rows`, a deadline, or cancellation aborts the
    /// translated pipeline with a structured guard error.
    pub fn run_budgeted(
        &self,
        tagged: &TaggedInstance,
        q: &Query,
        budget: &Budget,
    ) -> Result<QueryResult, MxqlError> {
        if !dtr_obs::audit::enabled() {
            return self.run_translated(tagged, q, budget);
        }
        let request = q.to_string();
        let started = std::time::Instant::now();
        let result = self.run_translated(tagged, q, budget);
        crate::tagged::audit_query("translate", request, started, result.as_ref());
        result
    }

    fn run_translated(
        &self,
        tagged: &TaggedInstance,
        q: &Query,
        budget: &Budget,
    ) -> Result<QueryResult, MxqlError> {
        let q = tagged.setting().normalize_query(q);
        // Order/limit (the extension tail) apply to the whole union; each
        // order key must be one of the select expressions so the sort can
        // run on the projected columns.
        let mut key_columns: Vec<(usize, bool)> = Vec::new();
        for k in &q.order_by {
            let Some(col) = q.select.iter().position(|e| *e == k.expr) else {
                return Err(MxqlError::Other(format!(
                    "translated execution requires order-by keys to appear in the                      select clause; `{}` does not",
                    k.expr
                )));
            };
            key_columns.push((col, k.descending));
        }
        let branches = translate_budgeted(&q, tagged.target().db(), budget)?;
        let span = dtr_obs::span("mxql.run_translated").field("branches", branches.len());
        let mut meter = budget.meter("mxql.run_translated");
        let mut catalog = tagged.catalog();
        catalog.push(self.meta_source());
        let mut out = QueryResult::default();
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (i, branch) in branches.iter().enumerate() {
            meter.poll()?;
            let r = Evaluator::new(&catalog, tagged.functions())
                .with_options(EvalOptions {
                    budget: budget.clone(),
                    ..Default::default()
                })
                .run(branch)?;
            if i == 0 {
                out.columns = r.columns.clone();
            }
            out.stats.tuples_scanned += r.stats.tuples_scanned;
            out.stats.bindings_enumerated += r.stats.bindings_enumerated;
            out.stats.predicate_triples_tested += r.stats.predicate_triples_tested;
            out.stats.eval_ns += r.stats.eval_ns;
            for row in r.rows {
                let key = row
                    .iter()
                    .map(|v| v.value.to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}");
                if seen.insert(key) {
                    // Charge only rows surviving de-duplication: the union
                    // result is what `max_rows` bounds on this path.
                    meter.charge_rows(1)?;
                    out.rows.push(row);
                }
            }
        }
        if !key_columns.is_empty() {
            out.rows.sort_by(|a, b| {
                for &(col, desc) in &key_columns {
                    let ord = dtr_query::eval::coerced_compare(&a[col].value, &b[col].value)
                        .unwrap_or(std::cmp::Ordering::Equal);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = q.limit {
            out.rows.truncate(n);
        }
        span.record("rows_out", out.rows.len());
        Ok(out)
    }

    /// Parses and runs MXQL text through the translation pipeline.
    pub fn query(&self, tagged: &TaggedInstance, text: &str) -> Result<QueryResult, MxqlError> {
        let q = parse_query(text)?;
        self.run(tagged, &q)
    }

    /// [`MetaRunner::query`] under a resource budget.
    pub fn query_budgeted(
        &self,
        tagged: &TaggedInstance,
        text: &str,
        budget: &Budget,
    ) -> Result<QueryResult, MxqlError> {
        let q = parse_query(text)?;
        self.run_budgeted(tagged, &q, budget)
    }
}

/// Renders result rows as sorted strings — the canonical form used to
/// compare the direct (Section 5) and translated (Section 7) execution
/// paths, which agree modulo value *types* (`Mapping` values come back as
/// `mid` strings from the metastore).
pub fn canonical_rows(r: &QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = r
        .rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| v.value.to_string())
                .collect::<Vec<_>>()
                .join(" | ")
        })
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1, figure1_setting};

    fn agree(text: &str) {
        let tagged = figure1();
        let runner = MetaRunner::new(tagged.setting()).unwrap();
        let direct = tagged.query(text).unwrap();
        let translated = runner.query(&tagged, text).unwrap();
        assert_eq!(
            canonical_rows(&direct),
            canonical_rows(&translated),
            "direct and translated execution disagree for: {text}"
        );
    }

    #[test]
    fn example_5_5_agrees() {
        agree(
            "select s.hid, m
             from Portal.estates s, Portal.contacts c, c.title@map m
             where s.contact = c.title and e = c.title@elem
               and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>",
        );
    }

    #[test]
    fn example_5_6_agrees() {
        agree("select e from where <db:e -> m -> 'Pdb':'/Portal/estates/estate/stories'>");
    }

    #[test]
    fn example_5_7_agrees() {
        agree(
            "select c.title, es
             from Portal.estates s, Portal.contacts c, c.title@map m
             where s.contact = c.title and e = c.title@elem
               and <'USdb':es => m => 'Pdb':e>",
        );
    }

    #[test]
    fn example_5_4_agrees() {
        agree("select x.hid, x.value, m from Portal.estates x, x.value@map m");
    }

    #[test]
    fn plain_queries_agree() {
        agree("select e.hid, e.value from Portal.estates e where e.contact = 'HomeGain'");
    }

    #[test]
    fn ordered_mxql_agrees_across_engines() {
        let tagged = figure1();
        let runner = MetaRunner::new(tagged.setting()).unwrap();
        let text = "select x.hid, x.value, m from Portal.estates x, x.value@map m \
                    order by x.hid desc limit 2";
        let q = dtr_query::parser::parse_query(text).unwrap();
        let direct = tagged.run(&q).unwrap();
        let translated = runner.run(&tagged, &q).unwrap();
        // Ordered results compare positionally, not as sorted sets.
        let rows = |r: &dtr_query::eval::QueryResult| {
            r.tuples()
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(rows(&direct), rows(&translated));
        assert_eq!(direct.len(), 2);
        assert_eq!(direct.tuples()[0][0].to_string(), "H7");
        // An order key outside the select clause is rejected on the
        // translated path (documented restriction).
        let q2 =
            dtr_query::parser::parse_query("select x.hid from Portal.estates x order by x.value")
                .unwrap();
        assert!(runner.run(&tagged, &q2).is_err());
        assert!(tagged.run(&q2).is_ok());
    }

    #[test]
    fn figure_5_dump_available() {
        let tagged = figure1();
        let runner = MetaRunner::new(tagged.setting()).unwrap();
        let dump = runner.store().render();
        assert!(dump.contains("Correspondence"));
        assert!(dump.contains("m1 | q0 | q1"));
    }

    #[test]
    fn pure_metadata_query_over_view() {
        // Query the meta instance directly (no annotations involved):
        // the mappings populating /Portal/estates/value.
        let tagged = figure1();
        let runner = MetaRunner::new(tagged.setting()).unwrap();
        let mut catalog = tagged.catalog();
        catalog.push(runner.meta_source());
        let q = dtr_query::parser::parse_query(
            "select o.mid
             from Correspondence o, Element e
             where o.conEid = e.eid and e.path = '/Portal/estates/value'",
        )
        .unwrap();
        let r = dtr_query::eval::Evaluator::new(&catalog, tagged.functions())
            .run(&q)
            .unwrap();
        let mut mids: Vec<String> = r.tuples().into_iter().map(|t| t[0].to_string()).collect();
        mids.sort();
        assert_eq!(mids, ["m1", "m2", "m3"]);
    }

    #[test]
    fn audit_records_exchange_query_and_translate() {
        let was_on = dtr_obs::audit::enabled();
        dtr_obs::audit::set_enabled(true);
        // figure1() performs the exchange while auditing is on, so all
        // three request kinds land in the log.
        let tagged = figure1();
        let marker = "select e.hid, e.value from Portal.estates e where e.contact = 'HomeGain'";
        let direct = tagged.query(marker).unwrap();
        let runner = MetaRunner::new(tagged.setting()).unwrap();
        let translated = runner.query(&tagged, marker).unwrap();
        let records = dtr_obs::audit::records();
        dtr_obs::audit::set_enabled(was_on);
        // Filter by our own request text: the log is global and other
        // tests (or a CI soak with DTR_AUDIT=1) may interleave records.
        let queries: Vec<_> = records
            .iter()
            .filter(|r| r.kind == "query" && r.request.contains("HomeGain"))
            .collect();
        let translates: Vec<_> = records
            .iter()
            .filter(|r| r.kind == "translate" && r.request.contains("HomeGain"))
            .collect();
        let exchanges: Vec<_> = records
            .iter()
            .filter(|r| r.kind == "exchange" && r.request == "m1,m2,m3")
            .collect();
        assert!(!queries.is_empty() && !translates.is_empty() && !exchanges.is_empty());
        let q = queries.last().unwrap();
        assert_eq!(q.rows, direct.rows.len() as u64);
        assert_eq!(q.outcome, "ok");
        assert!(q.wall_ns > 0);
        assert!(q.tuples_scanned > 0);
        assert_eq!(q.fingerprint.len(), 16);
        let t = translates.last().unwrap();
        assert_eq!(t.rows, translated.rows.len() as u64);
        // Direct and translated runs of the same text share a fingerprint,
        // so the two paths join on it in the audit view.
        assert_eq!(q.fingerprint, t.fingerprint);
        let x = exchanges.last().unwrap();
        assert!(x.rows > 0);
    }

    #[test]
    fn audit_records_guard_outcome() {
        let was_on = dtr_obs::audit::enabled();
        dtr_obs::audit::set_enabled(true);
        let tagged = figure1();
        let marker = "select a.hid, b.hid from Portal.estates a, Portal.estates b";
        let q = dtr_query::parser::parse_query(marker).unwrap();
        let budget = Budget {
            max_rows: Some(1),
            ..Budget::default()
        };
        let err = tagged.run_budgeted(&q, &budget).unwrap_err();
        assert!(err.guard().is_some());
        let records = dtr_obs::audit::records();
        dtr_obs::audit::set_enabled(was_on);
        let mine: Vec<_> = records
            .iter()
            .filter(|r| r.request.contains("Portal.estates b"))
            .collect();
        assert!(!mine.is_empty());
        assert!(
            mine.last().unwrap().outcome.starts_with("guard:"),
            "expected guard outcome, got {:?}",
            mine.last().unwrap().outcome
        );
    }

    #[test]
    fn setting_reusable_across_runners() {
        let setting = figure1_setting();
        let r1 = MetaRunner::new(&setting).unwrap();
        let r2 = MetaRunner::new(&setting).unwrap();
        assert_eq!(r1.store().elements.len(), r2.store().elements.len());
    }
}
