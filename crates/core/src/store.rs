//! Durable exchange sessions: an [`IncrementalSession`] whose edit
//! batches are committed to a write-ahead log before they touch the
//! engine, with epoch snapshots published for concurrent readers.
//!
//! The commit protocol is WAL-then-publish: a batch is first framed and
//! fsynced into the log ([`dtr_mapping::durable::Wal`]), then applied to
//! the in-memory exchange, then published as a fresh [`Epoch`] that
//! readers pin via [`SnapshotStore::pin`]. A crash between WAL commit and
//! epoch publish therefore recovers to the *post*-delta state (the frame
//! is durable); a crash during the append recovers to the *pre*-delta
//! state (the torn frame is truncated). Recovery never lands anywhere
//! else — `law_recovery` in dtr-check pins exactly this adjacency.
//!
//! Checkpoints are self-describing: schemas, mappings, annotated source
//! and target instances, and the metastore rendering all ride in the
//! checkpoint frame via their existing textual round-trips, so
//! [`DurableSession::open`] needs no pre-loaded scenario and can verify
//! the rebuilt canonical target byte-for-byte against what was saved.
//!
//! ```
//! use std::sync::Arc;
//! use dtr_core::store::{DurableOptions, DurableSession};
//! use dtr_core::testkit::{figure1_setting, figure1_sources};
//! use dtr_mapping::delta::SourceDelta;
//! use dtr_mapping::durable::MemVfs;
//!
//! let vfs = Arc::new(MemVfs::new());
//! let mut s = DurableSession::create(
//!     figure1_setting(),
//!     figure1_sources(),
//!     None,
//!     vfs.clone(),
//!     "wal",
//!     DurableOptions::default(),
//! )
//! .unwrap();
//! s.apply(&SourceDelta::new().delete("US.houses", 0)).unwrap();
//! drop(s); // crash
//! let (reopened, report) =
//!     DurableSession::open(vfs, "wal", DurableOptions::default()).unwrap();
//! assert_eq!(report.replayed, 1);
//! assert_eq!(reopened.pin().batch, 1);
//! ```

use crate::incremental::IncrementalSession;
use crate::tagged::{MappingSetting, MxqlError, TaggedInstance};
use dtr_mapping::delta::{SourceDelta, TargetDelta};
use dtr_mapping::durable::{Recovered, Vfs, Wal, WalError};
use dtr_mapping::exchange::ExchangeOptions;
use dtr_mapping::glav::Mapping;
use dtr_metastore::store::MetaStore;
use dtr_model::instance::Instance;
use dtr_model::schema::Schema;
use dtr_xml::parser::instance_from_xml;
use dtr_xml::schema_xml::{schema_from_xml, schema_to_xml};
use dtr_xml::writer::{instance_to_xml, WriteOptions};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Version tag of the checkpoint payload layout.
const CHECKPOINT_FORMAT: u64 = 1;

// ---------------------------------------------------------------------------
// Options and reports
// ---------------------------------------------------------------------------

/// Tuning for a [`DurableSession`].
#[derive(Clone, Debug)]
pub struct DurableOptions {
    /// Exchange options for the underlying engine (budgets, stats, ...).
    pub exchange: ExchangeOptions,
    /// Auto-checkpoint (segment rotation) after this many committed
    /// deltas. `0` disables auto-checkpointing; [`DurableSession::checkpoint`]
    /// still rotates on demand.
    pub checkpoint_every: u64,
    /// Transient I/O failures (fsync hiccups) are retried this many times
    /// before the session degrades.
    pub retries: u32,
    /// Base backoff between retries; doubles per attempt.
    pub backoff_ms: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            exchange: ExchangeOptions::default(),
            checkpoint_every: 64,
            retries: 3,
            backoff_ms: 1,
        }
    }
}

/// What [`DurableSession::open`] did to get back to a consistent state.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Committed deltas replayed on top of the checkpoint.
    pub replayed: usize,
    /// Bytes of torn tail truncated from the recovered segment.
    pub truncated_bytes: u64,
    /// Segment number the checkpoint was read from.
    pub segment: u32,
    /// Non-fatal observations: torn tails, discarded half-rotated
    /// segments, metastore render drift.
    pub warnings: Vec<String>,
}

// ---------------------------------------------------------------------------
// Epoch snapshots
// ---------------------------------------------------------------------------

/// One published state of the exchange: an immutable [`TaggedInstance`]
/// plus the canonical annotated-XML rendering of its target. Readers that
/// pinned an epoch keep it alive (and byte-identical) however far the
/// writer advances.
///
/// Publishing is cheap: the writer only clones the instance data (the
/// frozen snapshot); annotation, query indexes, and the canonical XML
/// rendering are built on a reader's first access and cached. An epoch
/// nobody pins costs the writer a memcpy, not a render.
pub struct Epoch {
    /// Monotonic publish counter, starting at 1 for the initial state.
    pub id: u64,
    /// Batches applied since the log was created (checkpoint base plus
    /// replayed plus live applies).
    pub batch: u64,
    /// The raw snapshot, consumed by the first materialization.
    parts: Mutex<Option<EpochParts>>,
    /// Built once from `parts`: the queryable snapshot and the canonical
    /// annotated-XML byte-identity witness.
    materialized: OnceLock<(Arc<TaggedInstance>, String)>,
}

/// The cheap-to-capture snapshot an epoch is published with.
struct EpochParts {
    source_schemas: Vec<Schema>,
    target_schema: Schema,
    mappings: Vec<Mapping>,
    sources: Vec<Instance>,
    target: Instance,
}

impl Epoch {
    fn materialize(&self) -> &(Arc<TaggedInstance>, String) {
        self.materialized.get_or_init(|| {
            let p = self
                .parts
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("epoch parts already consumed");
            let canonical = instance_to_xml(&p.target, WriteOptions::annotated());
            // The parts came out of a session that already validated this
            // exact setting and annotated these exact instances; failure
            // here is a logic bug, not a runtime condition.
            let setting = MappingSetting::new(p.source_schemas, p.target_schema, p.mappings)
                .expect("epoch snapshot setting rebuilds");
            let tagged = TaggedInstance::from_parts(setting, p.sources, p.target)
                .expect("epoch snapshot annotates");
            (Arc::new(tagged), canonical)
        })
    }

    /// The queryable snapshot (built and cached on first access).
    pub fn tagged(&self) -> Arc<TaggedInstance> {
        self.materialize().0.clone()
    }

    /// Annotated XML of the target at publish time — the byte-identity
    /// witness used by recovery verification and the reader soak tests.
    pub fn canonical(&self) -> &str {
        &self.materialize().1
    }
}

/// Epoch head with atomic swap: one writer publishes, any number of
/// readers pin. Dropping the store does not invalidate pinned epochs.
pub struct SnapshotStore {
    head: RwLock<Arc<Epoch>>,
    next_id: AtomicU64,
}

impl SnapshotStore {
    fn new(first: Epoch) -> Arc<SnapshotStore> {
        let id = first.id;
        Arc::new(SnapshotStore {
            head: RwLock::new(Arc::new(first)),
            next_id: AtomicU64::new(id + 1),
        })
    }

    /// The current head epoch, pinned. The returned `Arc` stays valid and
    /// unchanged across later publishes.
    pub fn pin(&self) -> Arc<Epoch> {
        self.head.read().expect("snapshot head lock").clone()
    }

    /// Id of the current head epoch.
    pub fn head_id(&self) -> u64 {
        self.pin().id
    }

    fn publish(&self, mut epoch: Epoch) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        epoch.id = id;
        *self.head.write().expect("snapshot head lock") = Arc::new(epoch);
        dtr_obs::counters().durable_epochs_published.incr();
        id
    }
}

// ---------------------------------------------------------------------------
// Checkpoint payload (self-describing JSON document)
// ---------------------------------------------------------------------------

struct CheckpointDoc {
    batch: u64,
    source_schemas: Vec<Schema>,
    target_schema: Schema,
    mappings: Vec<Mapping>,
    sources: Vec<Instance>,
    target_xml: String,
    metastore_render: Option<String>,
}

fn wal_to_mxql(e: WalError) -> MxqlError {
    match e {
        WalError::Io { path, op, msg } => MxqlError::Io {
            path,
            op: op.to_string(),
            msg,
        },
        other => MxqlError::Other(other.to_string()),
    }
}

fn build_checkpoint(session: &IncrementalSession, batch: u64) -> Vec<u8> {
    let setting = session.setting();
    let doc = serde_json::json!({
        "format": CHECKPOINT_FORMAT,
        "batch": batch,
        "source_schemas": setting
            .source_schemas()
            .iter()
            .map(schema_to_xml)
            .collect::<Vec<_>>(),
        "target_schema": schema_to_xml(setting.target_schema()),
        "mappings": setting
            .mappings()
            .iter()
            .map(|m| {
                serde_json::json!([
                    m.name.as_str(),
                    format!("foreach {} exists {}", m.foreach, m.exists),
                ])
            })
            .collect::<Vec<_>>(),
        "sources": session
            .sources()
            .iter()
            .map(|s| instance_to_xml(s, WriteOptions::annotated()))
            .collect::<Vec<_>>(),
        "target": instance_to_xml(session.target(), WriteOptions::annotated()),
        "metastore": session.store().map(|s| s.render()),
    });
    doc.to_string().into_bytes()
}

fn corrupt(msg: impl Into<String>) -> MxqlError {
    MxqlError::Other(format!("checkpoint corrupt: {}", msg.into()))
}

fn parse_checkpoint(payload: &[u8]) -> Result<CheckpointDoc, MxqlError> {
    let text = std::str::from_utf8(payload).map_err(|e| corrupt(format!("not UTF-8: {e}")))?;
    let doc: serde_json::Value =
        serde_json::from_str(text).map_err(|e| corrupt(format!("not JSON: {e}")))?;
    let obj = doc.as_object().ok_or_else(|| corrupt("not an object"))?;
    let format = obj.get("format").and_then(|v| v.as_u64());
    if format != Some(CHECKPOINT_FORMAT) {
        return Err(corrupt(format!("unsupported format {format:?}")));
    }
    let batch = obj
        .get("batch")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| corrupt("missing batch"))?;
    let str_list = |key: &str| -> Result<Vec<&str>, MxqlError> {
        obj.get(key)
            .and_then(|v| v.as_array())
            .ok_or_else(|| corrupt(format!("missing {key}")))?
            .iter()
            .map(|v| {
                v.as_str()
                    .ok_or_else(|| corrupt(format!("non-string in {key}")))
            })
            .collect()
    };
    let source_schemas = str_list("source_schemas")?
        .into_iter()
        .map(|xml| schema_from_xml(xml).map_err(|e| corrupt(format!("source schema: {e}"))))
        .collect::<Result<Vec<_>, _>>()?;
    let target_schema = obj
        .get("target_schema")
        .and_then(|v| v.as_str())
        .ok_or_else(|| corrupt("missing target_schema"))
        .and_then(|xml| schema_from_xml(xml).map_err(|e| corrupt(format!("target schema: {e}"))))?;
    let mappings = obj
        .get("mappings")
        .and_then(|v| v.as_array())
        .ok_or_else(|| corrupt("missing mappings"))?
        .iter()
        .map(|pair| {
            let pair = pair.as_array().filter(|p| p.len() == 2);
            let (name, body) = match pair.and_then(|p| Some((p[0].as_str()?, p[1].as_str()?))) {
                Some(nb) => nb,
                None => return Err(corrupt("mapping entry is not [name, body]")),
            };
            Mapping::parse(name, body).map_err(|e| corrupt(format!("mapping {name}: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let sources = str_list("sources")?
        .into_iter()
        .zip(&source_schemas)
        .map(|(xml, schema)| {
            instance_from_xml(xml, schema).map_err(|e| corrupt(format!("source instance: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if sources.len() != source_schemas.len() {
        return Err(corrupt("source/schema count mismatch"));
    }
    let target_xml = obj
        .get("target")
        .and_then(|v| v.as_str())
        .ok_or_else(|| corrupt("missing target"))?
        .to_string();
    let metastore_render = obj
        .get("metastore")
        .and_then(|v| v.as_str())
        .map(|s| s.to_string());
    Ok(CheckpointDoc {
        batch,
        source_schemas,
        target_schema,
        mappings,
        sources,
        target_xml,
        metastore_render,
    })
}

// ---------------------------------------------------------------------------
// The durable session
// ---------------------------------------------------------------------------

/// A WAL-backed [`IncrementalSession`] publishing epoch snapshots.
pub struct DurableSession {
    session: IncrementalSession,
    wal: Wal,
    snapshots: Arc<SnapshotStore>,
    opts: DurableOptions,
    /// Batches that landed before this process opened the log.
    batch_base: u64,
    deltas_since_checkpoint: u64,
    read_only: Option<String>,
    /// Wall time spent committing frames to the log across every apply —
    /// serialization, framing, CRC, appends, and sync points.
    wal_commit_nanos: u64,
    /// Wall time spent capturing and publishing epoch snapshots across
    /// every apply (the O(state) clone; annotation and rendering are
    /// deferred to the first reader).
    publish_nanos: u64,
}

impl DurableSession {
    /// Runs the initial full exchange, writes the opening checkpoint to a
    /// fresh log in `dir`, and publishes epoch 1. Fails if `dir` already
    /// holds WAL segments (use [`DurableSession::open`] for those).
    pub fn create(
        setting: MappingSetting,
        sources: Vec<Instance>,
        store: Option<MetaStore>,
        vfs: Arc<dyn Vfs>,
        dir: &str,
        opts: DurableOptions,
    ) -> Result<DurableSession, MxqlError> {
        let started = Instant::now();
        let mut session =
            IncrementalSession::with_options(setting, sources, opts.exchange.clone())?;
        if let Some(store) = store {
            session.attach_store(store);
        }
        let payload = build_checkpoint(&session, 0);
        let bytes = payload.len() as u64;
        let wal = retry(&opts, || {
            // A half-written create leaves segments behind; scrub so the
            // retry starts from an empty directory again.
            if let Ok(nums) = Wal::segment_numbers(vfs.as_ref(), dir) {
                for n in nums {
                    let _ = vfs.remove(&format!("{dir}/wal-{n:06}.log"));
                }
            }
            Wal::create(vfs.clone(), dir, &payload)
        })
        .map_err(wal_to_mxql)?;
        record_checkpoint(bytes, wal.segment(), started.elapsed());
        let snapshots = SnapshotStore::new(epoch_of(&session, 1, 0));
        Ok(DurableSession {
            session,
            wal,
            snapshots,
            opts,
            batch_base: 0,
            deltas_since_checkpoint: 0,
            read_only: None,
            wal_commit_nanos: 0,
            publish_nanos: 0,
        })
    }

    /// Recovers from the log in `dir`: loads the latest intact
    /// checkpoint, rebuilds the exchange from its self-contained scenario,
    /// verifies the rebuilt canonical target byte-for-byte against the
    /// saved one, then replays the committed delta suffix. Torn tails and
    /// half-finished rotations surface as warnings, never as panics.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        dir: &str,
        opts: DurableOptions,
    ) -> Result<(DurableSession, RecoveryReport), MxqlError> {
        let started = Instant::now();
        let (wal, recovered) =
            retry(&opts, || Wal::recover(vfs.clone(), dir)).map_err(wal_to_mxql)?;
        let Recovered {
            checkpoint,
            deltas,
            segment,
            mut warnings,
            truncated_bytes,
        } = recovered;
        let doc = parse_checkpoint(&checkpoint)?;
        let setting = MappingSetting::new(
            doc.source_schemas.clone(),
            doc.target_schema.clone(),
            doc.mappings.clone(),
        )?;
        let mut session =
            IncrementalSession::with_options(setting, doc.sources, opts.exchange.clone())?;
        // The checkpoint target must be reproducible from the checkpoint
        // sources (the incremental≡full law); anything else means the
        // saved state is not self-consistent and must not be served.
        let rebuilt = instance_to_xml(session.target(), WriteOptions::annotated());
        if rebuilt != doc.target_xml {
            return Err(corrupt(
                "rebuilt target differs from checkpointed target bytes",
            ));
        }
        if let Some(saved_render) = &doc.metastore_render {
            let mut store = MetaStore::new();
            for schema in doc.source_schemas.iter().chain([&doc.target_schema]) {
                store
                    .add_schema(schema)
                    .map_err(|e| corrupt(format!("metastore schema: {e}")))?;
            }
            let refs: Vec<&Schema> = doc.source_schemas.iter().collect();
            for m in &doc.mappings {
                store
                    .add_mapping(m, &refs, &doc.target_schema)
                    .map_err(|e| corrupt(format!("metastore mapping: {e}")))?;
            }
            if store.render() != *saved_render {
                warnings.push(
                    "metastore render drifted from checkpoint (rebuilt store kept)".to_string(),
                );
            }
            session.attach_store(store);
        }
        let mut replayed = 0usize;
        for payload in &deltas {
            let text = std::str::from_utf8(payload)
                .map_err(|e| corrupt(format!("delta frame {replayed}: not UTF-8: {e}")))?;
            let value: serde_json::Value = serde_json::from_str(text)
                .map_err(|e| corrupt(format!("delta frame {replayed}: not JSON: {e}")))?;
            let delta = SourceDelta::from_json(&value)
                .ok_or_else(|| corrupt(format!("delta frame {replayed}: malformed")))?;
            session
                .apply(&delta)
                .map_err(|e| corrupt(format!("delta frame {replayed} failed to replay: {e}")))?;
            replayed += 1;
        }
        let batch = doc.batch + replayed as u64;
        let counters = dtr_obs::counters();
        counters.durable_recoveries.incr();
        counters.durable_replayed_deltas.add(replayed as u64);
        if dtr_obs::journal::enabled() {
            dtr_obs::journal::record(dtr_obs::journal::event(
                "durable.recover",
                dtr_obs::journal::Outcome::Recovered {
                    replayed: replayed as u64,
                    truncated: truncated_bytes,
                },
            ));
        }
        if dtr_obs::recorder::enabled() {
            dtr_obs::recorder::record_durable_window(
                "recover",
                checkpoint.len() as u64,
                replayed as u64,
                started.elapsed().as_nanos() as u64,
            );
        }
        let snapshots = SnapshotStore::new(epoch_of(&session, 1, batch));
        let durable = DurableSession {
            session,
            wal,
            snapshots,
            opts,
            batch_base: doc.batch,
            deltas_since_checkpoint: replayed as u64,
            read_only: None,
            wal_commit_nanos: 0,
            publish_nanos: 0,
        };
        let report = RecoveryReport {
            replayed,
            truncated_bytes,
            segment,
            warnings,
        };
        Ok((durable, report))
    }

    /// Commits one batch: WAL-append (the commit point) with
    /// retry-with-backoff, engine apply, epoch publish, then maybe an
    /// auto-checkpoint. A batch the engine rejects is rolled back off the
    /// log so recovery never replays it; a log that can no longer commit
    /// degrades the session to read-only (queries keep working).
    pub fn apply(&mut self, delta: &SourceDelta) -> Result<TargetDelta, MxqlError> {
        if let Some(reason) = &self.read_only {
            return Err(MxqlError::Other(format!("session is read-only: {reason}")));
        }
        let started = Instant::now();
        let payload = delta.to_json().to_string().into_bytes();
        let before = self.wal.committed_len();
        let commit_result = retry(&self.opts, || self.wal.append_delta(&payload));
        self.wal_commit_nanos += started.elapsed().as_nanos() as u64;
        if let Err(e) = commit_result {
            if !e.is_transient() || matches!(e, WalError::Poisoned(_)) {
                self.read_only = Some(e.to_string());
            } else {
                self.read_only = Some(format!("wal commit kept failing: {e}"));
            }
            return Err(wal_to_mxql(e));
        }
        let td = match self.session.apply(delta) {
            Ok(td) => td,
            Err(e) => {
                // The frame is durable but the state rejected it; undo the
                // commit so a reopen converges to the live (pre-delta) state.
                if let Err(undo) = self.wal.rollback_to(before) {
                    self.read_only = Some(format!("rejected batch stuck in log: {undo}"));
                }
                return Err(e);
            }
        };
        let counters = dtr_obs::counters();
        counters.durable_wal_appends.incr();
        counters.durable_wal_bytes.add(payload.len() as u64);
        if dtr_obs::journal::enabled() {
            dtr_obs::journal::record(dtr_obs::journal::event(
                "durable.wal_append",
                dtr_obs::journal::Outcome::WalAppend {
                    bytes: payload.len() as u64,
                    segment: self.wal.segment() as u64,
                },
            ));
        }
        if dtr_obs::recorder::enabled() {
            dtr_obs::recorder::record_durable_window(
                "wal_append",
                payload.len() as u64,
                1,
                started.elapsed().as_nanos() as u64,
            );
        }
        self.deltas_since_checkpoint += 1;
        let batch = self.batch();
        let publish_started = Instant::now();
        self.snapshots.publish(epoch_of(&self.session, 0, batch));
        self.publish_nanos += publish_started.elapsed().as_nanos() as u64;
        if self.opts.checkpoint_every > 0
            && self.deltas_since_checkpoint >= self.opts.checkpoint_every
        {
            if let Err(e) = self.checkpoint() {
                // The committed batch is safe in the old segment; only the
                // rotation failed. Degrade instead of failing the apply.
                self.read_only = Some(format!("auto-checkpoint failed: {e}"));
            }
        }
        Ok(td)
    }

    /// Forces a checkpoint: renormalizes the live state to its canonical
    /// full-exchange form (a rebase — equivalent modulo set order by the
    /// incremental≡full law, and exactly what recovery will rebuild), then
    /// rotates to a fresh segment led by that state, pruning the replay
    /// suffix (and older segments). Publishes a fresh epoch, since the
    /// renormalization may reorder set members.
    pub fn checkpoint(&mut self) -> Result<(), MxqlError> {
        if let Some(reason) = &self.read_only {
            return Err(MxqlError::Other(format!("session is read-only: {reason}")));
        }
        let started = Instant::now();
        let batch = self.batch();
        self.session.rebase()?;
        self.batch_base = batch;
        let payload = build_checkpoint(&self.session, batch);
        let bytes = payload.len() as u64;
        retry(&self.opts, || self.wal.rotate(&payload)).map_err(|e| {
            if matches!(e, WalError::Poisoned(_)) {
                self.read_only = Some(e.to_string());
            }
            wal_to_mxql(e)
        })?;
        self.deltas_since_checkpoint = 0;
        record_checkpoint(bytes, self.wal.segment(), started.elapsed());
        self.snapshots.publish(epoch_of(&self.session, 0, batch));
        Ok(())
    }

    /// Pins the current head epoch (see [`SnapshotStore::pin`]).
    pub fn pin(&self) -> Arc<Epoch> {
        self.snapshots.pin()
    }

    /// The snapshot store, shareable with reader threads.
    pub fn snapshots(&self) -> Arc<SnapshotStore> {
        self.snapshots.clone()
    }

    /// The live underlying session (head state, not a pinned epoch).
    pub fn session(&self) -> &IncrementalSession {
        &self.session
    }

    /// Batches applied since the log was created, across restarts.
    pub fn batch(&self) -> u64 {
        self.batch_base + self.session.batch()
    }

    /// Why the session stopped accepting writes, if it has.
    pub fn read_only(&self) -> Option<&str> {
        self.read_only.as_deref()
    }

    /// Active WAL segment number.
    pub fn wal_segment(&self) -> u32 {
        self.wal.segment()
    }

    /// Committed bytes in the active WAL segment.
    pub fn wal_committed_len(&self) -> u64 {
        self.wal.committed_len()
    }

    /// Cumulative wall time [`DurableSession::apply`] spent committing
    /// frames to the log (serialize + frame + CRC + append + sync). The
    /// cost of durability proper: O(delta) per batch.
    pub fn wal_commit_nanos(&self) -> u64 {
        self.wal_commit_nanos
    }

    /// Cumulative wall time [`DurableSession::apply`] spent publishing
    /// epoch snapshots (the state clone readers pin). O(state) per batch,
    /// independent of the log.
    pub fn publish_nanos(&self) -> u64 {
        self.publish_nanos
    }
}

fn epoch_of(session: &IncrementalSession, id: u64, batch: u64) -> Epoch {
    let setting = session.setting();
    let parts = EpochParts {
        source_schemas: setting.source_schemas().to_vec(),
        target_schema: setting.target_schema().clone(),
        mappings: setting.mappings().to_vec(),
        sources: session.sources().to_vec(),
        target: session.target().clone(),
    };
    Epoch {
        id,
        batch,
        parts: Mutex::new(Some(parts)),
        materialized: OnceLock::new(),
    }
}

fn record_checkpoint(bytes: u64, segment: u32, wall: Duration) {
    dtr_obs::counters().durable_checkpoints.incr();
    if dtr_obs::journal::enabled() {
        dtr_obs::journal::record(dtr_obs::journal::event(
            "durable.checkpoint",
            dtr_obs::journal::Outcome::Checkpoint {
                bytes,
                segment: segment as u64,
            },
        ));
    }
    if dtr_obs::recorder::enabled() {
        dtr_obs::recorder::record_durable_window("checkpoint", bytes, 1, wall.as_nanos() as u64);
    }
}

fn retry<T>(
    opts: &DurableOptions,
    mut attempt: impl FnMut() -> Result<T, WalError>,
) -> Result<T, WalError> {
    let mut tries = 0u32;
    loop {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && tries < opts.retries => {
                tries += 1;
                dtr_obs::counters().durable_io_retries.incr();
                let shift = tries.min(6);
                std::thread::sleep(Duration::from_millis(
                    opts.backoff_ms.saturating_mul(1u64 << shift),
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_setting, figure1_sources};
    use dtr_mapping::durable::{FaultVfs, MemVfs, StorageFault};
    use dtr_model::instance::Value;

    fn house(hid: &str) -> Value {
        Value::record(vec![
            ("hid", Value::str(hid)),
            ("floors", Value::str("2")),
            ("price", Value::str("500K")),
            ("aid", Value::str("a1")),
        ])
    }

    fn fresh(vfs: Arc<dyn Vfs>, dir: &str) -> DurableSession {
        DurableSession::create(
            figure1_setting(),
            figure1_sources(),
            None,
            vfs,
            dir,
            DurableOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn crash_and_reopen_recovers_byte_identical_state() {
        let vfs = Arc::new(MemVfs::new());
        let mut s = fresh(vfs.clone(), "wal");
        s.apply(&SourceDelta::new().insert("US.houses", house("H800")))
            .unwrap();
        s.apply(&SourceDelta::new().delete("US.houses", 0)).unwrap();
        let live = s.pin().canonical().to_string();
        drop(s); // crash: nothing flushed beyond the committed frames
        let (reopened, report) =
            DurableSession::open(vfs, "wal", DurableOptions::default()).unwrap();
        assert_eq!(report.replayed, 2);
        assert_eq!(reopened.pin().canonical(), live);
        assert_eq!(reopened.batch(), 2);
    }

    #[test]
    fn checkpoint_rotates_and_prunes_replay_suffix() {
        let vfs = Arc::new(MemVfs::new());
        let mut s = fresh(vfs.clone(), "wal");
        s.apply(&SourceDelta::new().insert("US.houses", house("H801")))
            .unwrap();
        assert_eq!(s.wal_segment(), 1);
        s.checkpoint().unwrap();
        assert_eq!(s.wal_segment(), 2);
        let live = s.pin().canonical().to_string();
        drop(s);
        let (reopened, report) =
            DurableSession::open(vfs, "wal", DurableOptions::default()).unwrap();
        // The suffix was folded into the checkpoint: nothing to replay.
        assert_eq!(report.replayed, 0);
        assert_eq!(reopened.pin().canonical(), live);
        assert_eq!(reopened.batch(), 1);
    }

    #[test]
    fn auto_checkpoint_fires_on_schedule() {
        let vfs = Arc::new(MemVfs::new());
        let mut s = DurableSession::create(
            figure1_setting(),
            figure1_sources(),
            None,
            vfs,
            "wal",
            DurableOptions {
                checkpoint_every: 2,
                ..DurableOptions::default()
            },
        )
        .unwrap();
        s.apply(&SourceDelta::new().insert("US.houses", house("H802")))
            .unwrap();
        assert_eq!(s.wal_segment(), 1);
        s.apply(&SourceDelta::new().insert("US.houses", house("H803")))
            .unwrap();
        assert_eq!(s.wal_segment(), 2);
    }

    #[test]
    fn torn_frame_recovers_to_pre_delta_state() {
        let vfs = Arc::new(MemVfs::new());
        let mut s = fresh(vfs.clone(), "wal");
        s.apply(&SourceDelta::new().insert("US.houses", house("H804")))
            .unwrap();
        let pre = s.pin().canonical().to_string();
        let pre_len = s.wal_committed_len();
        s.apply(&SourceDelta::new().insert("US.houses", house("H805")))
            .unwrap();
        let post = s.pin().canonical().to_string();
        drop(s);
        // Tear the last frame: keep only 3 bytes of it on "disk".
        let crashed = vfs.clone_files();
        let path = "wal/wal-000001.log";
        let bytes = crashed.read(path).unwrap();
        crashed.truncate(path, pre_len + 3).unwrap();
        assert!(bytes.len() as u64 > pre_len + 3);
        let (reopened, report) =
            DurableSession::open(Arc::new(crashed), "wal", DurableOptions::default()).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.truncated_bytes, 3);
        assert_eq!(reopened.pin().canonical(), pre);
        assert_ne!(reopened.pin().canonical(), post);
    }

    #[test]
    fn rejected_batch_is_rolled_off_the_log() {
        let vfs = Arc::new(MemVfs::new());
        let mut s = fresh(vfs.clone(), "wal");
        let before = s.wal_committed_len();
        let err = s
            .apply(&SourceDelta::new().delete("US.nonexistent", 0))
            .unwrap_err();
        assert!(err.to_string().contains("nonexistent"));
        assert_eq!(s.wal_committed_len(), before);
        // A reopen sees no trace of the rejected batch.
        drop(s);
        let (_, report) = DurableSession::open(vfs, "wal", DurableOptions::default()).unwrap();
        assert_eq!(report.replayed, 0);
    }

    #[test]
    fn transient_fsync_failure_is_retried() {
        let inner = MemVfs::new();
        let vfs = Arc::new(FaultVfs::new(inner));
        // Syncs 0 (create checkpoint) succeed; fail the batch commit's
        // sync once — the retry must land it.
        vfs.schedule(StorageFault::FsyncFail { at: 1, count: 1 });
        let mut s = fresh(vfs.clone(), "wal");
        s.apply(&SourceDelta::new().insert("US.houses", house("H806")))
            .unwrap();
        // The fault fired, yet the commit landed: the retry absorbed it.
        assert!(s.read_only().is_none());
        let fired = vfs.fired();
        assert_eq!(fired.len(), 1, "fired: {fired:?}");
        assert!(fired[0].starts_with("fsync_fail"), "fired: {fired:?}");
    }

    #[test]
    fn unwritable_log_degrades_to_read_only_queries_still_work() {
        let inner = MemVfs::new();
        let vfs = Arc::new(FaultVfs::new(inner));
        let mut s = DurableSession::create(
            figure1_setting(),
            figure1_sources(),
            None,
            vfs.clone(),
            "wal",
            DurableOptions {
                retries: 1,
                backoff_ms: 0,
                ..DurableOptions::default()
            },
        )
        .unwrap();
        // Every sync from now on fails: the next commit cannot land.
        vfs.schedule(StorageFault::FsyncFail {
            at: 1,
            count: u64::MAX,
        });
        let err = s
            .apply(&SourceDelta::new().insert("US.houses", house("H807")))
            .unwrap_err();
        assert!(matches!(err, MxqlError::Io { .. }));
        assert!(s.read_only().is_some());
        // Reads keep working on the last published epoch.
        let rows = s
            .pin()
            .tagged()
            .query("select x.hid from Portal.estates x")
            .unwrap();
        assert_eq!(rows.len(), 3);
        // Further writes are refused, not attempted.
        let err2 = s
            .apply(&SourceDelta::new().delete("US.houses", 0))
            .unwrap_err();
        assert!(err2.to_string().contains("read-only"));
    }

    #[test]
    fn checkpoint_with_metastore_round_trips() {
        let vfs = Arc::new(MemVfs::new());
        let setting = figure1_setting();
        let mut store = MetaStore::new();
        for schema in setting.source_schemas() {
            store.add_schema(schema).unwrap();
        }
        store.add_schema(setting.target_schema()).unwrap();
        let refs: Vec<&Schema> = setting.source_schemas().iter().collect();
        for m in setting.mappings() {
            store
                .add_mapping(m, &refs, setting.target_schema())
                .unwrap();
        }
        let mut s = DurableSession::create(
            setting,
            figure1_sources(),
            Some(store),
            vfs.clone(),
            "wal",
            DurableOptions::default(),
        )
        .unwrap();
        s.apply(&SourceDelta::new().delete("US.houses", 0)).unwrap();
        let render = s.session().store().unwrap().render();
        drop(s);
        let (reopened, report) =
            DurableSession::open(vfs, "wal", DurableOptions::default()).unwrap();
        assert!(
            report.warnings.is_empty(),
            "warnings: {:?}",
            report.warnings
        );
        assert_eq!(reopened.session().store().unwrap().render(), render);
    }

    #[test]
    fn planned_query_does_not_reuse_pre_delta_plan() {
        // Satellite regression: a delta apply bumps the global cardinality
        // version, so a plan compiled before the delta must be evicted —
        // the post-delta lookup compiles fresh against the new stats.
        let vfs = Arc::new(MemVfs::new());
        let mut s = fresh(vfs, "wal");
        let text = "select x.hid, m from Portal.estates x, x.hid@map m";
        let tagged_before = s.pin().tagged();
        let p1 = tagged_before.plan_for(text).unwrap();
        s.apply(&SourceDelta::new().delete("US.houses", 0)).unwrap();
        let p2 = tagged_before.plan_for(text).unwrap();
        assert!(
            p2.stats_version > p1.stats_version,
            "post-delta plan still carries the pre-delta stats version"
        );
        assert!(!Arc::ptr_eq(&p1, &p2), "stale plan was reused after delta");
    }
}
