//! Element inclusion between queries (Definition 6.3).
//!
//! `q1 ⊑ q2` iff there is a total injective renaming `h` from the variables
//! of `q1` to the variables of `q2` such that the from and where clauses of
//! `h(q1)` and `q2` coincide and the (ordered) select list of `h(q1)` is a
//! subset of `q2`'s. Intuitively: `q1(I) = π_X(q2(I))` for every instance.
//!
//! The paper uses this to order the provenance notions:
//! `q_where ⊑ q_what ⊑ q_why`.

use dtr_query::ast::{Comparison, Condition, Expr, MappingPred, PathExpr, PathStart, Query, Term};
use std::collections::HashMap;

/// Checks `q1 ⊑ q2` (element inclusion, Definition 6.3).
///
/// The renaming is constructed positionally over the from clauses, which is
/// complete for queries whose binding lists agree up to variable names (the
/// provenance queries of Section 6 always do — they share the from clause
/// of the mapping's foreach query).
pub fn element_included(q1: &Query, q2: &Query) -> bool {
    if q1.from.len() != q2.from.len() {
        return false;
    }
    // Build h positionally and verify injectivity.
    let mut h: HashMap<&str, &str> = HashMap::new();
    for (b1, b2) in q1.from.iter().zip(&q2.from) {
        if let Some(prev) = h.insert(&b1.var, &b2.var) {
            if prev != b2.var {
                return false;
            }
        }
    }
    let mut targets: Vec<&str> = h.values().copied().collect();
    targets.sort_unstable();
    targets.dedup();
    if targets.len() != h.len() {
        return false; // not injective
    }

    // From clauses must coincide after renaming.
    for (b1, b2) in q1.from.iter().zip(&q2.from) {
        if rename_expr(&b1.source, &h) != b2.source {
            return false;
        }
    }

    // Where clauses must coincide as sets after renaming.
    let c1: Vec<Condition> = q1
        .conditions
        .iter()
        .map(|c| rename_condition(c, &h))
        .collect();
    if c1.len() != q2.conditions.len() {
        return false;
    }
    let mut used = vec![false; q2.conditions.len()];
    'outer: for c in &c1 {
        for (i, c2) in q2.conditions.iter().enumerate() {
            if !used[i] && conditions_equal(c, c2) {
                used[i] = true;
                continue 'outer;
            }
        }
        return false;
    }

    // Select: subset.
    q1.select
        .iter()
        .map(|e| rename_expr(e, &h))
        .all(|e| q2.select.contains(&e))
}

fn conditions_equal(a: &Condition, b: &Condition) -> bool {
    match (a, b) {
        (Condition::Cmp(x), Condition::Cmp(y)) => {
            (x.left == y.left && x.op == y.op && x.right == y.right)
                // Equality is symmetric.
                || (x.op == dtr_query::ast::CmpOp::Eq
                    && y.op == dtr_query::ast::CmpOp::Eq
                    && x.left == y.right
                    && x.right == y.left)
        }
        (Condition::MapPred(x), Condition::MapPred(y)) => x == y,
        _ => false,
    }
}

fn rename_path(p: &PathExpr, h: &HashMap<&str, &str>) -> PathExpr {
    let start = match &p.start {
        PathStart::Var(v) => PathStart::Var(
            h.get(v.as_str())
                .map(|s| (*s).to_owned())
                .unwrap_or_else(|| v.clone()),
        ),
        r => r.clone(),
    };
    PathExpr {
        start,
        steps: p.steps.clone(),
    }
}

fn rename_expr(e: &Expr, h: &HashMap<&str, &str>) -> Expr {
    match e {
        Expr::Path(p) => Expr::Path(rename_path(p, h)),
        Expr::ElemOf(p) => Expr::ElemOf(rename_path(p, h)),
        Expr::MapOf(p) => Expr::MapOf(rename_path(p, h)),
        Expr::Const(c) => Expr::Const(c.clone()),
        Expr::Call(n, args) => {
            Expr::Call(n.clone(), args.iter().map(|a| rename_expr(a, h)).collect())
        }
    }
}

fn rename_term(t: &Term, h: &HashMap<&str, &str>) -> Term {
    match t {
        Term::Var(v) => Term::Var(
            h.get(v.as_str())
                .map(|s| (*s).to_owned())
                .unwrap_or_else(|| v.clone()),
        ),
        c => c.clone(),
    }
}

fn rename_condition(c: &Condition, h: &HashMap<&str, &str>) -> Condition {
    match c {
        Condition::Cmp(cmp) => Condition::Cmp(Comparison {
            left: rename_expr(&cmp.left, h),
            op: cmp.op,
            right: rename_expr(&cmp.right, h),
        }),
        Condition::MapPred(p) => Condition::MapPred(MappingPred {
            src_db: rename_term(&p.src_db, h),
            src_elem: rename_term(&p.src_elem, h),
            mapping: rename_term(&p.mapping, h),
            tgt_db: rename_term(&p.tgt_db, h),
            tgt_elem: rename_term(&p.tgt_elem, h),
            double: p.double,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_query::parser::parse_query;

    #[test]
    fn projection_included() {
        let q1 = parse_query("select h.hid from US.houses h where h.aid = 'a1'").unwrap();
        let q2 = parse_query("select h.hid, h.price from US.houses h where h.aid = 'a1'").unwrap();
        assert!(element_included(&q1, &q2));
        assert!(!element_included(&q2, &q1));
    }

    #[test]
    fn renaming_applies() {
        let q1 = parse_query("select x.hid from US.houses x where x.aid = 'a1'").unwrap();
        let q2 = parse_query("select h.hid, h.price from US.houses h where h.aid = 'a1'").unwrap();
        assert!(element_included(&q1, &q2));
    }

    #[test]
    fn differing_conditions_not_included() {
        let q1 = parse_query("select h.hid from US.houses h where h.aid = 'a1'").unwrap();
        let q2 = parse_query("select h.hid from US.houses h where h.aid = 'a2'").unwrap();
        assert!(!element_included(&q1, &q2));
    }

    #[test]
    fn symmetric_equality_conditions_match() {
        let q1 =
            parse_query("select h.hid from US.houses h, US.agents a where h.aid = a.aid").unwrap();
        let q2 =
            parse_query("select h.hid, a.phone from US.houses h, US.agents a where a.aid = h.aid")
                .unwrap();
        assert!(element_included(&q1, &q2));
    }

    #[test]
    fn differing_from_not_included() {
        let q1 = parse_query("select h.hid from US.houses h").unwrap();
        let q2 = parse_query("select h.hid, a.aid from US.houses h, US.agents a").unwrap();
        assert!(!element_included(&q1, &q2));
    }

    #[test]
    fn reflexive() {
        let q =
            parse_query("select h.hid, a.phone from US.houses h, US.agents a where h.aid = a.aid")
                .unwrap();
        assert!(element_included(&q, &q));
    }
}
