//! Translating MXQL queries to plain queries over the meta-data storage
//! schema (Section 7.3, Examples 7.3–7.5).
//!
//! The translation steps follow the paper:
//!
//! 1. every `e@map` / `e@elem` becomes a `getMapAnnot(e)` / `getElAnnot(e)`
//!    function call;
//! 2. constants inside mapping predicates are replaced by fresh variables
//!    constrained by equality conditions;
//! 3. predicate variables are bound to the `Element` and `Mapping` storage
//!    relations, and references to them are replaced by references to the
//!    identifier attributes (`m` → `m.mid`, `db` → `e.db`, ...);
//! 4. the predicate itself becomes joins against `Correspondence` (single
//!    arrow) or `Correspondence`/`Condition` (double arrow), and is removed.
//!
//! Two engineering deviations from the paper's informal examples, both
//! documented in DESIGN.md:
//!
//! * Example 7.4 compares `e.eid` against the *path* constant
//!   `'US/agents/title/firm'`, silently treating paths as ids. We compare
//!   against the metastore's explicit `path` column instead, which is
//!   well-typed.
//! * The double-arrow predicate requires a *disjunction* (the source
//!   element occurs in the foreach select **or** where clause), which the
//!   conjunctive query language cannot express in one query; the translator
//!   therefore returns a small **union** of conjunctive queries whose
//!   results are concatenated and de-duplicated.

use dtr_model::value::{canonical_path, AtomicValue};
use dtr_obs::guard::{Budget, GuardError};
use dtr_obs::ExplainTrace;
use dtr_query::ast::{
    Binding, CmpOp, Comparison, Condition, Expr, MappingPred, PathExpr, Query, Term,
};
use std::collections::HashMap;
use std::fmt;

/// Errors raised during translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// A construct the translator does not support.
    Unsupported(String),
    /// The translation exceeded its resource budget (branch explosion,
    /// deadline, or cancellation).
    Guard(GuardError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unsupported(m) => write!(f, "untranslatable construct: {m}"),
            TranslateError::Guard(g) => write!(f, "{g}"),
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<GuardError> for TranslateError {
    fn from(g: GuardError) -> Self {
        TranslateError::Guard(g)
    }
}

/// How a variable is handled during rewriting.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Role {
    /// Bound to the `Element` relation.
    Elem,
    /// Bound to the `Mapping` relation.
    Mapping,
    /// A database variable, aliased to `<elem var>.db`.
    DbAlias(String),
}

struct Ctx {
    roles: HashMap<String, Role>,
    target_db: String,
    fresh: usize,
}

impl Ctx {
    fn fresh(&mut self, prefix: &str) -> String {
        let v = format!("_{prefix}{}", self.fresh);
        self.fresh += 1;
        v
    }
}

fn col(var: &str, column: &str) -> Expr {
    Expr::Path(PathExpr::var(var).project(column))
}

fn eq(left: Expr, right: Expr) -> Condition {
    Condition::Cmp(Comparison {
        left,
        op: CmpOp::Eq,
        right,
    })
}

/// One mapping predicate, planned: the variables it binds plus the
/// conditions shared by all branches.
struct PredPlan {
    src_elem: String,
    tgt_elem: String,
    map_var: String,
    shared_conds: Vec<Condition>,
    double: bool,
}

/// Appends one rewrite step to the EXPLAIN trace and mirrors it into the
/// event journal (stage `mxql.translate`).
fn explain_step(trace: &mut ExplainTrace, rule: &'static str, input: String, output: String) {
    if dtr_obs::journal::enabled() {
        dtr_obs::journal::record(
            dtr_obs::journal::event(
                "mxql.translate",
                dtr_obs::journal::Outcome::TranslateStep { rule },
            )
            .detail(format!("{input} => {output}")),
        );
    }
    trace.step(rule, input, output);
}

/// Translates an MXQL query into a union of plain queries over the data
/// instance plus the metastore view (`Element`, `Mapping`,
/// `Correspondence`, `Condition` roots). `target_db` is the database name
/// of the tagged (annotated) instance — needed to constrain `@elem`
/// comparisons.
pub fn translate(q: &Query, target_db: &str) -> Result<Vec<Query>, TranslateError> {
    translate_explained(q, target_db).map(|(queries, _)| queries)
}

/// [`translate`] under a resource [`Budget`]: the rewrite loop polls the
/// budget's deadline/cancellation and trips `max_bindings` on the number of
/// union branches produced, so a pathological double-arrow predicate stack
/// cannot explode unbounded.
pub fn translate_budgeted(
    q: &Query,
    target_db: &str,
    budget: &Budget,
) -> Result<Vec<Query>, TranslateError> {
    translate_explained_budgeted(q, target_db, budget).map(|(queries, _)| queries)
}

/// [`translate`], additionally returning the EXPLAIN trace of every rewrite
/// step (Section 7.3's four steps, one [`dtr_obs::ExplainStep`] per fired
/// rule). The `.explain` REPL meta-command renders this trace.
pub fn translate_explained(
    q: &Query,
    target_db: &str,
) -> Result<(Vec<Query>, ExplainTrace), TranslateError> {
    translate_explained_budgeted(q, target_db, &Budget::unlimited())
}

/// [`translate_explained`] under a resource [`Budget`].
pub fn translate_explained_budgeted(
    q: &Query,
    target_db: &str,
    budget: &Budget,
) -> Result<(Vec<Query>, ExplainTrace), TranslateError> {
    let mut meter = budget.meter("mxql.translate");
    meter.poll()?;
    let span = dtr_obs::span("mxql.translate").field("conditions", q.conditions.len());
    let mut trace = ExplainTrace::default();
    let mut ctx = Ctx {
        roles: HashMap::new(),
        target_db: target_db.to_owned(),
        fresh: 0,
    };

    // ---- Plan the mapping predicates (steps 2 + 3). ----
    let mut preds: Vec<&MappingPred> = Vec::new();
    let mut plans: Vec<PredPlan> = Vec::new();
    for c in &q.conditions {
        let Condition::MapPred(p) = c else { continue };
        meter.poll()?;
        let plan = plan_pred(p, &mut ctx)?;
        let shared = if plan.shared_conds.is_empty() {
            "no constant constraints".to_string()
        } else {
            plan.shared_conds
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" and ")
        };
        explain_step(
            &mut trace,
            "plan-predicate",
            p.to_string(),
            format!(
                "Element vars `{}`/`{}`, Mapping var `{}`; {shared}",
                plan.src_elem, plan.tgt_elem, plan.map_var
            ),
        );
        preds.push(p);
        plans.push(plan);
    }

    // ---- Rewrite the from clause (step 1). ----
    // A from-binding over `@map` whose variable is also a predicate mapping
    // variable is renamed (Example 7.3 renames `m` to `mv` and joins
    // `mv = m.mid`).
    let mut data_from: Vec<Binding> = Vec::new();
    let mut renames: HashMap<String, String> = HashMap::new();
    let mut rename_conds: Vec<Condition> = Vec::new();
    for b in &q.from {
        let source = match &b.source {
            Expr::MapOf(p) => Expr::Call("getMapAnnot".into(), vec![Expr::Path(p.clone())]),
            other => other.clone(),
        };
        let var = if ctx.roles.get(b.var.as_str()) == Some(&Role::Mapping) {
            let mv = ctx.fresh("mv");
            renames.insert(b.var.clone(), mv.clone());
            rename_conds.push(eq(Expr::Path(PathExpr::var(&mv)), col(&b.var, "mid")));
            mv
        } else {
            b.var.clone()
        };
        if matches!(&b.source, Expr::MapOf(_)) {
            explain_step(
                &mut trace,
                "annotation-accessor",
                b.to_string(),
                format!("{source} {var}"),
            );
        }
        data_from.push(Binding { var, source });
    }
    // Bind predicate variables to the storage relations. These (small)
    // bindings are emitted BEFORE the data bindings: the metastore joins
    // are highly selective, and putting them first lets the evaluator
    // resolve the meta side once instead of per data row. Mapping bindings
    // come before the per-branch Correspondence/Condition joins, which in
    // turn come before the Element bindings, so that every join is
    // constrained the moment its binding appears.
    let mut mapping_from: Vec<Binding> = Vec::new();
    let mut elem_from: Vec<Binding> = Vec::new();
    for (var, role) in sorted_roles(&ctx.roles) {
        match role {
            Role::Elem => elem_from.push(Binding {
                var: var.clone(),
                source: Expr::Path(PathExpr::root("Element")),
            }),
            Role::Mapping => mapping_from.push(Binding {
                var: var.clone(),
                source: Expr::Path(PathExpr::root("Mapping")),
            }),
            Role::DbAlias(_) => {}
        }
    }

    // ---- Rewrite select items and plain conditions. ----
    let select: Vec<Expr> = q
        .select
        .iter()
        .map(|e| rewrite_expr(e, &ctx, &renames, true))
        .collect::<Result<_, _>>()?;
    let mut conditions: Vec<Condition> = rename_conds;
    for c in &q.conditions {
        match c {
            Condition::MapPred(_) => {}
            Condition::Cmp(cmp) => {
                let rewritten = rewrite_cmp(cmp, &ctx, &renames)?;
                let out_text = rewritten
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(" and ");
                if out_text != cmp.to_string() {
                    explain_step(&mut trace, "rewrite-comparison", cmp.to_string(), out_text);
                }
                conditions.extend(rewritten);
            }
        }
    }

    // ---- Expand predicates into joins (step 4), branching on the
    // double-arrow disjunction. ----
    let mut branches: Vec<(Vec<Binding>, Vec<Condition>)> = vec![(Vec::new(), Vec::new())];
    for (i, plan) in plans.iter().enumerate() {
        let variants = pred_variants(plan, i, &mut ctx);
        let variant_text = variants
            .iter()
            .map(|(bs, cs)| {
                format!(
                    "[from {} where {}]",
                    bs.iter()
                        .map(|b| b.to_string())
                        .collect::<Vec<_>>()
                        .join(", "),
                    cs.iter()
                        .map(|c| c.to_string())
                        .collect::<Vec<_>>()
                        .join(" and "),
                )
            })
            .collect::<Vec<_>>()
            .join(" or ");
        explain_step(
            &mut trace,
            "expand-predicate",
            preds[i].to_string(),
            format!(
                "{} {} join variant{}: {variant_text}",
                variants.len(),
                if plan.double {
                    "double-arrow"
                } else {
                    "single-arrow"
                },
                if variants.len() == 1 { "" } else { "s" },
            ),
        );
        let mut next = Vec::new();
        for (bs, cs) in &branches {
            for variant in &variants {
                meter.poll()?;
                let mut bs2 = bs.clone();
                let mut cs2 = cs.clone();
                bs2.extend(variant.0.iter().cloned());
                cs2.extend(plan.shared_conds.iter().cloned());
                cs2.extend(variant.1.iter().cloned());
                next.push((bs2, cs2));
            }
        }
        // The union size doubles per double-arrow predicate; count the
        // branches against `max_bindings` so the explosion is bounded.
        meter.check_bindings(next.len() as u64)?;
        branches = next;
    }

    dtr_obs::counters()
        .translate_branches
        .add(branches.len() as u64);
    span.record("branches", branches.len());
    if !plans.is_empty() {
        explain_step(
            &mut trace,
            "union",
            format!("{} mapping predicate(s)", plans.len()),
            format!(
                "{} plain conjunctive quer{} over the metastore relations",
                branches.len(),
                if branches.len() == 1 { "y" } else { "ies" },
            ),
        );
    }
    let queries: Vec<Query> = branches
        .into_iter()
        .map(|(bs, cs)| {
            let mut out = Query {
                select: select.clone(),
                from: mapping_from.clone(),
                conditions: conditions.clone(),
                // The order/limit tail is applied by the runner after the
                // branch union, not per branch.
                ..Default::default()
            };
            out.from.extend(bs);
            out.from.extend(elem_from.clone());
            out.from.extend(data_from.clone());
            out.conditions.extend(cs);
            out
        })
        .collect();
    Ok((queries, trace))
}

fn sorted_roles(roles: &HashMap<String, Role>) -> Vec<(String, Role)> {
    let mut v: Vec<(String, Role)> = roles.iter().map(|(k, r)| (k.clone(), r.clone())).collect();
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

fn plan_pred(p: &MappingPred, ctx: &mut Ctx) -> Result<PredPlan, TranslateError> {
    let mut shared: Vec<Condition> = Vec::new();

    let elem_slot = |term: &Term,
                     ctx: &mut Ctx,
                     shared: &mut Vec<Condition>|
     -> Result<String, TranslateError> {
        match term {
            Term::Var(v) => {
                if let Some(prev) = ctx.roles.get(v.as_str()) {
                    if *prev != Role::Elem {
                        return Err(TranslateError::Unsupported(format!(
                            "variable `{v}` used both as {prev:?} and as an element"
                        )));
                    }
                }
                ctx.roles.insert(v.clone(), Role::Elem);
                Ok(v.clone())
            }
            Term::Const(c) => {
                let v = ctx.fresh("e");
                ctx.roles.insert(v.clone(), Role::Elem);
                shared.push(eq(
                    col(&v, "path"),
                    Expr::Const(AtomicValue::Str(canonical_path(&c.to_string()))),
                ));
                Ok(v)
            }
        }
    };
    let src_elem = elem_slot(&p.src_elem, ctx, &mut shared)?;
    let tgt_elem = elem_slot(&p.tgt_elem, ctx, &mut shared)?;

    let db_slot =
        |term: &Term, elem_var: &str, ctx: &mut Ctx, shared: &mut Vec<Condition>| match term {
            Term::Var(v) => {
                ctx.roles
                    .insert(v.clone(), Role::DbAlias(elem_var.to_owned()));
            }
            Term::Const(c) => {
                shared.push(eq(
                    col(elem_var, "db"),
                    Expr::Const(AtomicValue::Str(c.to_string())),
                ));
            }
        };
    db_slot(&p.src_db, &src_elem, ctx, &mut shared);
    db_slot(&p.tgt_db, &tgt_elem, ctx, &mut shared);

    let map_var = match &p.mapping {
        Term::Var(v) => {
            ctx.roles.insert(v.clone(), Role::Mapping);
            v.clone()
        }
        Term::Const(c) => {
            let v = ctx.fresh("m");
            ctx.roles.insert(v.clone(), Role::Mapping);
            shared.push(eq(
                col(&v, "mid"),
                Expr::Const(AtomicValue::Str(c.to_string())),
            ));
            v
        }
    };

    Ok(PredPlan {
        src_elem,
        tgt_elem,
        map_var,
        shared_conds: shared,
        double: p.double,
    })
}

/// The join variants of one predicate: a single-arrow predicate has one,
/// a double-arrow predicate has three (foreach-select, Condition.eid,
/// Condition.eid2).
fn pred_variants(
    plan: &PredPlan,
    idx: usize,
    ctx: &mut Ctx,
) -> Vec<(Vec<Binding>, Vec<Condition>)> {
    let corr = |var: &str| Binding {
        var: var.to_owned(),
        source: Expr::Path(PathExpr::root("Correspondence")),
    };
    let cond_rel = |var: &str| Binding {
        var: var.to_owned(),
        source: Expr::Path(PathExpr::root("Condition")),
    };
    if !plan.double {
        // One correspondence row carries both sides: same select position.
        let o = format!("_o{idx}");
        return vec![(
            vec![corr(&o)],
            vec![
                eq(col(&o, "mid"), col(&plan.map_var, "mid")),
                eq(col(&o, "forEid"), col(&plan.src_elem, "eid")),
                eq(col(&o, "conEid"), col(&plan.tgt_elem, "eid")),
            ],
        )];
    }
    let _ = ctx;
    // Double arrow: the target must be populated by the mapping (one
    // correspondence row), and the source element must occur in the foreach
    // select (another correspondence row) or in the foreach where clause
    // (a Condition row on either side of the operator).
    let p = format!("_p{idx}");
    let pop_binding = corr(&p);
    let pop_conds = vec![
        eq(col(&p, "mid"), col(&plan.map_var, "mid")),
        eq(col(&p, "conEid"), col(&plan.tgt_elem, "eid")),
    ];
    let mut variants = Vec::with_capacity(3);
    // (a) source element in the foreach select clause.
    let o = format!("_o{idx}");
    variants.push((
        vec![pop_binding.clone(), corr(&o)],
        [
            pop_conds.clone(),
            vec![
                eq(col(&o, "mid"), col(&plan.map_var, "mid")),
                eq(col(&o, "forEid"), col(&plan.src_elem, "eid")),
            ],
        ]
        .concat(),
    ));
    // (b)/(c) source element in the foreach where clause.
    for side in ["eid", "eid2"] {
        let c = format!("_c{idx}{side}");
        variants.push((
            vec![pop_binding.clone(), cond_rel(&c)],
            [
                pop_conds.clone(),
                vec![
                    eq(col(&c, "qid"), col(&plan.map_var, "forQ")),
                    eq(col(&c, side), col(&plan.src_elem, "eid")),
                ],
            ]
            .concat(),
        ));
    }
    variants
}

/// Classification of a rewritten comparison operand.
enum Side {
    ElemVar(String),
    ElemOfCall(Expr),
    Plain(Expr),
}

fn classify(
    e: &Expr,
    ctx: &Ctx,
    renames: &HashMap<String, String>,
) -> Result<Side, TranslateError> {
    match e {
        Expr::Path(p) if p.steps.is_empty() => {
            if let Some(v) = p.start_var() {
                match ctx.roles.get(v) {
                    Some(Role::Elem) => return Ok(Side::ElemVar(v.to_owned())),
                    Some(Role::Mapping) => return Ok(Side::Plain(col(v, "mid"))),
                    Some(Role::DbAlias(ev)) => return Ok(Side::Plain(col(ev, "db"))),
                    None => {}
                }
            }
            Ok(Side::Plain(rewrite_expr(e, ctx, renames, false)?))
        }
        Expr::ElemOf(p) => Ok(Side::ElemOfCall(Expr::Call(
            "getElAnnot".into(),
            vec![Expr::Path(p.clone())],
        ))),
        other => Ok(Side::Plain(rewrite_expr(other, ctx, renames, false)?)),
    }
}

fn rewrite_cmp(
    cmp: &Comparison,
    ctx: &Ctx,
    renames: &HashMap<String, String>,
) -> Result<Vec<Condition>, TranslateError> {
    let l = classify(&cmp.left, ctx, renames)?;
    let r = classify(&cmp.right, ctx, renames)?;
    if cmp.op != CmpOp::Eq {
        let to_expr = |s: Side| match s {
            Side::ElemVar(v) => col(&v, "path"),
            Side::ElemOfCall(e) | Side::Plain(e) => e,
        };
        return Ok(vec![Condition::Cmp(Comparison {
            left: to_expr(l),
            op: cmp.op,
            right: to_expr(r),
        })]);
    }
    Ok(match (l, r) {
        // e = c.title@elem  =>  getElAnnot(c.title) = e.path AND e.db = target
        (Side::ElemVar(v), Side::ElemOfCall(call)) | (Side::ElemOfCall(call), Side::ElemVar(v)) => {
            vec![
                eq(call, col(&v, "path")),
                eq(
                    col(&v, "db"),
                    Expr::Const(AtomicValue::Str(ctx.target_db.clone())),
                ),
            ]
        }
        // e = '<path>'  =>  e.path = canonical(path)
        (Side::ElemVar(v), Side::Plain(Expr::Const(AtomicValue::Str(s))))
        | (Side::Plain(Expr::Const(AtomicValue::Str(s))), Side::ElemVar(v)) => vec![eq(
            col(&v, "path"),
            Expr::Const(AtomicValue::Str(canonical_path(&s))),
        )],
        // e = e2  =>  same element row content
        (Side::ElemVar(v), Side::ElemVar(w)) => vec![eq(col(&v, "eid"), col(&w, "eid"))],
        (Side::ElemVar(v), Side::Plain(p)) | (Side::Plain(p), Side::ElemVar(v)) => {
            vec![eq(col(&v, "path"), p)]
        }
        (Side::ElemOfCall(c), other) | (other, Side::ElemOfCall(c)) => {
            let rhs = match other {
                Side::Plain(p) => p,
                Side::ElemOfCall(c2) => c2,
                Side::ElemVar(_) => unreachable!("handled above"),
            };
            vec![eq(c, rhs)]
        }
        (Side::Plain(a), Side::Plain(b)) => vec![eq(a, b)],
    })
}

fn rewrite_expr(
    e: &Expr,
    ctx: &Ctx,
    renames: &HashMap<String, String>,
    in_select: bool,
) -> Result<Expr, TranslateError> {
    Ok(match e {
        Expr::Const(_) => e.clone(),
        Expr::ElemOf(p) => Expr::Call("getElAnnot".into(), vec![Expr::Path(p.clone())]),
        Expr::MapOf(_) => {
            return Err(TranslateError::Unsupported(
                "`@map` outside the from clause".into(),
            ))
        }
        Expr::Call(name, args) => Expr::Call(
            name.clone(),
            args.iter()
                .map(|a| rewrite_expr(a, ctx, renames, in_select))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Path(p) => {
            if let Some(v) = p.start_var() {
                if p.steps.is_empty() {
                    match ctx.roles.get(v) {
                        Some(Role::Elem) => {
                            return Ok(if in_select {
                                // `db:path`, matching how a direct MXQL
                                // evaluation prints an Element value.
                                Expr::Call(
                                    "concat".into(),
                                    vec![
                                        col(v, "db"),
                                        Expr::Const(AtomicValue::Str(":".into())),
                                        col(v, "path"),
                                    ],
                                )
                            } else {
                                col(v, "path")
                            });
                        }
                        Some(Role::Mapping) => return Ok(col(v, "mid")),
                        Some(Role::DbAlias(ev)) => return Ok(col(ev, "db")),
                        None => {}
                    }
                    if let Some(new) = renames.get(v) {
                        return Ok(Expr::Path(PathExpr::var(new)));
                    }
                }
            }
            e.clone()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_query::parser::parse_query;

    #[test]
    fn example_7_3_to_7_5_shape() {
        // Example 5.5's query, through the translation chain.
        let q = parse_query(
            "select s.hid, m
             from Portal.estates s, Portal.contacts c, c.title@map m
             where s.contact = c.title and e = c.title@elem
               and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>",
        )
        .unwrap();
        let branches = translate(&q, "Pdb").unwrap();
        assert_eq!(branches.len(), 1);
        let t = &branches[0];
        let text = t.to_string();
        // Step 1: @map became getMapAnnot, @elem became getElAnnot.
        assert!(text.contains("getMapAnnot(c.title)"));
        assert!(text.contains("getElAnnot(c.title)"));
        // Step 3: m bound to Mapping, e (and the constant's fresh variable)
        // to Element; select projects m.mid.
        assert!(text.contains("Mapping m"));
        assert!(text.contains("Element e"));
        assert!(text.contains("m.mid"));
        // Step 4: a Correspondence join replaced the predicate.
        assert!(text.contains("Correspondence _o0"));
        assert!(text.contains("_o0.forEid"));
        assert!(text.contains("_o0.conEid = e.eid"));
        // Constants: the element path and the dbs.
        assert!(text.contains("'/US/agents/title/firm'"));
        assert!(text.contains("'USdb'"));
        assert!(text.contains("'Pdb'"));
        // The renamed @map binding joins against m.mid (Example 7.3's
        // `m = mv`).
        assert!(text.contains("getMapAnnot(c.title) _mv"));
        assert!(text.contains(" = m.mid"));
        // No mapping predicate remains.
        assert!(!t
            .conditions
            .iter()
            .any(|c| matches!(c, Condition::MapPred(_))));
    }

    #[test]
    fn double_arrow_produces_three_branches() {
        let q =
            parse_query("select es from where <'USdb':es => m => 'Pdb':'/Portal/estates/value'>")
                .unwrap();
        let branches = translate(&q, "Pdb").unwrap();
        assert_eq!(branches.len(), 3);
        let texts: Vec<String> = branches.iter().map(|b| b.to_string()).collect();
        assert!(texts[0].contains("_o0.forEid"));
        assert!(texts[1].contains("_c0eid.eid = es.eid"));
        assert!(texts[2].contains("_c0eid2.eid2 = es.eid"));
        // Every branch constrains the populated target.
        for t in &texts {
            assert!(t.contains("_p0.conEid"));
        }
    }

    #[test]
    fn elem_var_in_select_becomes_concat() {
        let q = parse_query("select e from where <db:e -> m -> 'Pdb':'/Portal/estates/stories'>")
            .unwrap();
        let branches = translate(&q, "Pdb").unwrap();
        let text = branches[0].to_string();
        assert!(text.contains("concat(e.db, ':', e.path)"));
    }

    #[test]
    fn db_variables_alias_element_columns() {
        let q = parse_query("select db from where <db:e -> m -> 'Pdb':'/Portal/estates/stories'>")
            .unwrap();
        let branches = translate(&q, "Pdb").unwrap();
        let text = branches[0].to_string();
        // `db` in the select clause became `e.db` (paper: "Variables db and
        // db2 are finally replaced by expression e.db and e2.db").
        assert!(text.contains("select e.db"));
    }

    #[test]
    fn two_predicates_multiply_branches() {
        let q = parse_query(
            "select e from where <db:e -> m -> 'Pdb':'/Portal/estates/stories'>
               and <db2:e2 => m2 => 'Pdb':'/Portal/estates/value'>",
        )
        .unwrap();
        let branches = translate(&q, "Pdb").unwrap();
        assert_eq!(branches.len(), 3); // 1 (single) x 3 (double)
    }

    #[test]
    fn queries_without_meta_pass_through() {
        let q = parse_query("select e.hid from Portal.estates e where e.value > 100").unwrap();
        let branches = translate(&q, "Pdb").unwrap();
        assert_eq!(branches.len(), 1);
        assert_eq!(&branches[0], &q);
    }
}
