//! Virtual integration: answering target queries over the sources.
//!
//! The paper's conclusion: "In the current work, we assumed that mappings
//! were used to materialize an integrated instance. However, that instance
//! may also be virtual. It is among our next steps to investigate ... the
//! semantics of query rewriting and query answering in such a setting."
//!
//! This module implements the classical unfolding for that setting: a plain
//! conjunctive query over the *target* schema is rewritten into a union of
//! conjunctive queries over the *sources*, one per combination of mappings
//! covering the query's binding trees, and evaluated without ever
//! materializing the target.
//!
//! **Soundness / completeness.** Every virtual answer is an answer over the
//! materialized instance (soundness — asserted by the test suite). The
//! converse holds for queries whose joins stay inside one mapping's output;
//! a join that only succeeds because *different* mappings produced merged
//! (identical) values in the materialized instance is not recovered — that
//! is exactly the open question the paper defers, and it is documented
//! rather than hidden.

use crate::tagged::{MappingSetting, MxqlError};
use dtr_mapping::glav::Mapping;
use dtr_model::instance::Instance;
use dtr_model::schema::ElementId;
use dtr_query::ast::{Binding, Comparison, Condition, Expr, PathExpr, PathStart, Query};
use dtr_query::check::{check_query, SchemaCatalog, VarTarget};
use dtr_query::eval::{Catalog, Evaluator, QueryResult, Source};
use dtr_query::functions::FunctionRegistry;
use std::collections::HashMap;

/// A group of query bindings rooted at a schema-root binding, together with
/// its nested descendants (e.g. `Portal.houses h, h.features f`).
struct BindingGroup {
    /// Indices into `q.from`, root first.
    members: Vec<usize>,
}

/// Splits the query's from-clause into root-chained groups.
fn binding_groups(q: &Query) -> Result<Vec<BindingGroup>, MxqlError> {
    let mut group_of: HashMap<&str, usize> = HashMap::new();
    let mut groups: Vec<BindingGroup> = Vec::new();
    for (i, b) in q.from.iter().enumerate() {
        let Expr::Path(p) = &b.source else {
            return Err(MxqlError::Other(format!(
                "virtual answering supports only path bindings, got `{}`",
                b.source
            )));
        };
        match &p.start {
            PathStart::Root(_) => {
                group_of.insert(b.var.as_str(), groups.len());
                groups.push(BindingGroup { members: vec![i] });
            }
            PathStart::Var(v) => {
                let g = *group_of
                    .get(v.as_str())
                    .ok_or_else(|| MxqlError::Other(format!("binding variable `{v}` undefined")))?;
                group_of.insert(b.var.as_str(), g);
                groups[g].members.push(i);
            }
        }
    }
    Ok(groups)
}

/// The element a query variable binds to, for both the user query and the
/// mapping's exists query.
fn var_elements(
    q: &Query,
    setting: &MappingSetting,
) -> Result<HashMap<String, ElementId>, MxqlError> {
    let resolved = check_query(q, SchemaCatalog::new(vec![setting.target_schema()]))?;
    let mut out = HashMap::new();
    for (v, t) in &resolved.vars {
        if let VarTarget::Element(_, e) = t {
            out.insert(v.clone(), *e);
        }
    }
    Ok(out)
}

/// Tries to cover one binding group with mapping `m`: returns the map from
/// the query's group variables to `m`'s exists variables.
fn cover_group(
    q: &Query,
    group: &BindingGroup,
    q_elems: &HashMap<String, ElementId>,
    m: &Mapping,
    m_elems: &HashMap<String, ElementId>,
) -> Option<HashMap<String, String>> {
    let mut assignment: HashMap<String, String> = HashMap::new();
    for &i in &group.members {
        let b = &q.from[i];
        let qe = q_elems.get(b.var.as_str())?;
        // Find an exists binding of m with the same member element whose
        // parent variable matches the already-assigned parent (structure
        // preservation).
        let parent_var = match &b.source {
            Expr::Path(p) => match &p.start {
                PathStart::Var(v) => Some(v.as_str()),
                PathStart::Root(_) => None,
            },
            _ => None,
        };
        let wanted_parent = parent_var.map(|pv| assignment.get(pv).cloned());
        let mut found = None;
        for mb in &m.exists.from {
            if m_elems.get(mb.var.as_str()) != Some(qe) {
                continue;
            }
            let m_parent = match &mb.source {
                Expr::Path(p) => match &p.start {
                    PathStart::Var(v) => Some(v.clone()),
                    PathStart::Root(_) => None,
                },
                _ => None,
            };
            let ok = match (&wanted_parent, &m_parent) {
                (None, None) => true,
                (Some(Some(wp)), Some(mp)) => wp == mp,
                _ => false,
            };
            if ok {
                found = Some(mb.var.clone());
                break;
            }
        }
        assignment.insert(b.var.clone(), found?);
    }
    Some(assignment)
}

/// Rewrites a target path expression through a mapping: `(q var, steps)` is
/// located among `m`'s exists select expressions, and the foreach expression
/// at the same position is substituted (with the mapping's variables
/// renamed by `prefix`).
fn rewrite_path(
    p: &PathExpr,
    assignment: &HashMap<String, String>,
    m: &Mapping,
    prefix: &str,
) -> Option<Expr> {
    let v = p.start_var()?;
    let mv = assignment.get(v)?;
    let wanted = PathExpr {
        start: PathStart::Var(mv.clone()),
        steps: p.steps.clone(),
    };
    // The wanted path may only occur in the exists *where* clause (e.g.
    // `e.contact` in the Figure 1 mappings, equated to the selected
    // `c.title`): chase the exists-side equalities to any selected alias.
    let mut class: Vec<PathExpr> = vec![wanted];
    let mut grew = true;
    while grew {
        grew = false;
        for c in &m.exists.conditions {
            let Condition::Cmp(cmp) = c else { continue };
            if cmp.op != dtr_query::ast::CmpOp::Eq {
                continue;
            }
            if let (Expr::Path(l), Expr::Path(r)) = (&cmp.left, &cmp.right) {
                if class.contains(l) && !class.contains(r) {
                    class.push(r.clone());
                    grew = true;
                }
                if class.contains(r) && !class.contains(l) {
                    class.push(l.clone());
                    grew = true;
                }
            }
        }
    }
    for member in &class {
        if let Some(pos) = m
            .exists
            .select
            .iter()
            .position(|e| matches!(e, Expr::Path(ep) if ep == member))
        {
            return Some(rename_expr(&m.foreach.select[pos], prefix));
        }
    }
    None
}

fn rename_path_vars(p: &PathExpr, prefix: &str) -> PathExpr {
    let start = match &p.start {
        PathStart::Var(v) => PathStart::Var(format!("{prefix}{v}")),
        r => r.clone(),
    };
    PathExpr {
        start,
        steps: p.steps.clone(),
    }
}

fn rename_expr(e: &Expr, prefix: &str) -> Expr {
    match e {
        Expr::Path(p) => Expr::Path(rename_path_vars(p, prefix)),
        Expr::ElemOf(p) => Expr::ElemOf(rename_path_vars(p, prefix)),
        Expr::MapOf(p) => Expr::MapOf(rename_path_vars(p, prefix)),
        Expr::Const(c) => Expr::Const(c.clone()),
        Expr::Call(n, args) => Expr::Call(
            n.clone(),
            args.iter().map(|a| rename_expr(a, prefix)).collect(),
        ),
    }
}

/// Rewrites a plain target query into a union of source queries
/// (one per combination of covering mappings).
pub fn virtualize(q: &Query, setting: &MappingSetting) -> Result<Vec<Query>, MxqlError> {
    if q.is_mxql() {
        return Err(MxqlError::Other(
            "virtual answering supports plain target queries (no MXQL constructs)".into(),
        ));
    }
    let groups = binding_groups(q)?;
    let q_elems = var_elements(q, setting)?;

    // Exists-side variable elements, per mapping.
    let mut m_elems: Vec<HashMap<String, ElementId>> = Vec::new();
    for m in setting.mappings() {
        m_elems.push(var_elements(&m.exists, setting)?);
    }

    // Candidate (mapping index, var assignment) per group.
    let mut candidates: Vec<Vec<(usize, HashMap<String, String>)>> = Vec::new();
    for g in &groups {
        let mut cs = Vec::new();
        for (mi, m) in setting.mappings().iter().enumerate() {
            if let Some(a) = cover_group(q, g, &q_elems, m, &m_elems[mi]) {
                cs.push((mi, a));
            }
        }
        candidates.push(cs);
    }

    // Cross product of group choices.
    let mut combos: Vec<Vec<(usize, &HashMap<String, String>)>> = vec![Vec::new()];
    for cs in &candidates {
        let mut next = Vec::new();
        for combo in &combos {
            for (mi, a) in cs {
                let mut c2 = combo.clone();
                c2.push((*mi, a));
                next.push(c2);
            }
        }
        combos = next;
    }

    let mut out = Vec::new();
    'combo: for combo in combos {
        let mut rewriting = Query::default();
        // Per group: splice in the (renamed) foreach query.
        let mut rewrite_ctx: Vec<(usize, &HashMap<String, String>, String)> = Vec::new();
        for (gi, (mi, assignment)) in combo.iter().enumerate() {
            let m = &setting.mappings()[*mi];
            let prefix = format!("_v{gi}_");
            for b in &m.foreach.from {
                rewriting.from.push(Binding {
                    var: format!("{prefix}{}", b.var),
                    source: rename_expr(&b.source, &prefix),
                });
            }
            for c in &m.foreach.conditions {
                if let Condition::Cmp(cmp) = c {
                    rewriting.conditions.push(Condition::Cmp(Comparison {
                        left: rename_expr(&cmp.left, &prefix),
                        op: cmp.op,
                        right: rename_expr(&cmp.right, &prefix),
                    }));
                }
            }
            rewrite_ctx.push((*mi, assignment, prefix));
        }
        // Rewrite an expression of the user query: find the group that owns
        // its variable.
        let owner = |e: &PathExpr| -> Option<usize> {
            let v = e.start_var()?;
            groups
                .iter()
                .position(|g| g.members.iter().any(|&i| q.from[i].var == v))
        };
        let rewrite = |e: &Expr| -> Option<Expr> {
            match e {
                Expr::Const(_) => Some(e.clone()),
                Expr::Path(p) => {
                    let gi = owner(p)?;
                    let (mi, assignment, prefix) = &rewrite_ctx[gi];
                    rewrite_path(p, assignment, &setting.mappings()[*mi], prefix)
                }
                _ => None,
            }
        };
        for e in &q.select {
            match rewrite(e) {
                Some(r) => rewriting.select.push(r),
                None => continue 'combo, // this combo cannot produce e
            }
        }
        for c in &q.conditions {
            let Condition::Cmp(cmp) = c else {
                continue 'combo;
            };
            match (rewrite(&cmp.left), rewrite(&cmp.right)) {
                (Some(l), Some(r)) => rewriting.conditions.push(Condition::Cmp(Comparison {
                    left: l,
                    op: cmp.op,
                    right: r,
                })),
                _ => continue 'combo,
            }
        }
        out.push(rewriting);
    }
    Ok(out)
}

/// Answers a plain target query *virtually*: rewrites it over the sources
/// and evaluates the union there, never touching a materialized target.
///
/// ```
/// use dtr_core::testkit;
/// use dtr_core::virtualize::answer_virtually;
/// use dtr_query::functions::FunctionRegistry;
/// use dtr_query::parser::parse_query;
///
/// let setting = testkit::figure1_setting();
/// let mut sources = testkit::figure1_sources();
/// for (inst, schema) in sources.iter_mut().zip(setting.source_schemas()) {
///     inst.annotate_elements(schema).unwrap();
/// }
/// let q = parse_query("select e.hid from Portal.estates e").unwrap();
/// let funcs = FunctionRegistry::with_builtins();
/// let answers = answer_virtually(&setting, &sources, &q, &funcs).unwrap();
/// assert_eq!(answers.len(), 3); // H522, H7, H2525 — no target materialized
/// ```
pub fn answer_virtually(
    setting: &MappingSetting,
    source_instances: &[Instance],
    q: &Query,
    functions: &FunctionRegistry,
) -> Result<QueryResult, MxqlError> {
    let rewritings = virtualize(q, setting)?;
    let catalog = Catalog::new(
        setting
            .source_schemas()
            .iter()
            .zip(source_instances)
            .map(|(schema, instance)| Source { schema, instance })
            .collect(),
    );
    let mut out = QueryResult {
        columns: q.select.iter().map(|e| e.to_string()).collect(),
        ..QueryResult::default()
    };
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    for r in &rewritings {
        let res = Evaluator::new(&catalog, functions).run(r)?;
        out.stats.tuples_scanned += res.stats.tuples_scanned;
        out.stats.bindings_enumerated += res.stats.bindings_enumerated;
        out.stats.predicate_triples_tested += res.stats.predicate_triples_tested;
        out.stats.eval_ns += res.stats.eval_ns;
        for row in res.rows {
            let key = row
                .iter()
                .map(|v| v.value.to_string())
                .collect::<Vec<_>>()
                .join("\u{1}");
            if seen.insert(key) {
                out.rows.push(row);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::canonical_rows;
    use crate::testkit;
    use dtr_query::parser::parse_query;

    fn virtual_rows(text: &str) -> Vec<String> {
        let setting = testkit::figure1_setting();
        let mut sources = testkit::figure1_sources();
        for (inst, schema) in sources.iter_mut().zip(setting.source_schemas()) {
            inst.annotate_elements(schema).unwrap();
        }
        let q = parse_query(text).unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let r = answer_virtually(&setting, &sources, &q, &funcs).unwrap();
        canonical_rows(&r)
    }

    fn materialized_rows(text: &str) -> Vec<String> {
        let tagged = testkit::figure1();
        canonical_rows(&tagged.query(text).unwrap())
    }

    #[test]
    fn single_relation_query_matches_materialized() {
        let q = "select e.hid, e.value from Portal.estates e";
        assert_eq!(virtual_rows(q), materialized_rows(q));
    }

    #[test]
    fn selection_pushes_through() {
        let q = "select e.hid from Portal.estates e where e.value = '500K'";
        assert_eq!(virtual_rows(q), materialized_rows(q));
        assert_eq!(virtual_rows(q), vec!["H522".to_string()]);
    }

    #[test]
    fn contacts_query_matches() {
        let q = "select c.title, c.phone from Portal.contacts c";
        assert_eq!(virtual_rows(q), materialized_rows(q));
    }

    #[test]
    fn join_within_one_mapping_is_sound_and_covers_per_mapping_joins() {
        // estates x contacts joined on contact=title: every virtual answer
        // must be a materialized answer (soundness)...
        let q = "select e.hid, c.phone
                 from Portal.estates e, Portal.contacts c
                 where e.contact = c.title";
        let v = virtual_rows(q);
        let m = materialized_rows(q);
        for row in &v {
            assert!(m.contains(row), "unsound virtual answer {row}");
        }
        // ...and the within-mapping pairs are all present.
        assert!(v.contains(&"H522 | 18009468501".to_string()));
        assert!(v.contains(&"H2525 | 18009468501".to_string()));
        assert!(v.contains(&"H7 | 555-1111".to_string()));
    }

    #[test]
    fn unpopulated_elements_yield_empty() {
        // No mapping populates a `pool` element in the portal (it does not
        // even exist); a query over populated relations with an
        // unsatisfiable constant still works and returns nothing.
        let q = "select e.hid from Portal.estates e where e.value = 'nope'";
        assert!(virtual_rows(q).is_empty());
    }

    #[test]
    fn rewriting_count_is_union_over_mappings() {
        let setting = testkit::figure1_setting();
        let q = parse_query("select e.hid from Portal.estates e").unwrap();
        let rw = virtualize(&q, &setting).unwrap();
        // All three mappings populate estates.
        assert_eq!(rw.len(), 3);
        // Each rewriting queries a source schema root.
        for r in &rw {
            let text = r.to_string();
            assert!(
                text.contains("US.houses") || text.contains("EU.postings"),
                "{text}"
            );
        }
    }

    #[test]
    fn mxql_constructs_rejected() {
        let setting = testkit::figure1_setting();
        let q = parse_query("select e.hid, m from Portal.estates e, e.value@map m").unwrap();
        assert!(virtualize(&q, &setting).is_err());
    }

    #[test]
    fn nested_group_coverage() {
        // A query with a nested binding matches mappings whose exists side
        // has the same nesting (none in figure 1, so coverage is empty and
        // the answer set too — but the machinery must not error).
        let setting = testkit::figure1_setting();
        let q = parse_query("select e.hid from Portal.estates e, Portal.contacts c").unwrap();
        let rw = virtualize(&q, &setting).unwrap();
        // 3 mappings cover each of the two groups: 9 combinations.
        assert_eq!(rw.len(), 9);
    }
}
