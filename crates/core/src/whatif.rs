//! What-if analysis over tagged instances.
//!
//! The introduction motivates "the ability to analyze 'what-if' scenarios
//! in order to reason about the impact of the data coming from specific
//! sources (or parts of them)". With `f_mp` materialized this is a pure
//! annotation computation: a value *survives* the removal of a set of
//! mappings iff some mapping outside the set also generated it.

use crate::tagged::TaggedInstance;
use dtr_model::instance::NodeId;
use dtr_model::schema::ElementKind;
use dtr_model::value::MappingName;
use std::collections::HashMap;

/// The impact of removing a set of mappings (or a whole source).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Impact {
    /// Atomic target values generated *only* by removed mappings — they
    /// would disappear.
    pub lost_values: usize,
    /// Atomic target values that also have a surviving generator.
    pub surviving_values: usize,
    /// Lost values grouped by their target element path.
    pub lost_by_element: Vec<(String, usize)>,
}

impl Impact {
    /// Fraction of annotated atomic values lost, in `[0, 1]`.
    pub fn lost_fraction(&self) -> f64 {
        let total = self.lost_values + self.surviving_values;
        if total == 0 {
            0.0
        } else {
            self.lost_values as f64 / total as f64
        }
    }
}

/// Computes the impact of removing the given mappings.
pub fn impact_of_mappings(tagged: &TaggedInstance, removed: &[MappingName]) -> Impact {
    let schema = tagged.setting().target_schema();
    let inst = tagged.target();
    let mut impact = Impact::default();
    let mut by_elem: HashMap<String, usize> = HashMap::new();
    for node in inst.walk() {
        let annot = inst.annotation(node);
        // Only atomic, mapping-generated values count.
        let Some(elem) = annot.element else { continue };
        if !matches!(schema.element(elem).kind, ElementKind::Atomic(_)) {
            continue;
        }
        if annot.mappings.is_empty() {
            continue;
        }
        let survives = annot.mappings.iter().any(|m| !removed.contains(m));
        if survives {
            impact.surviving_values += 1;
        } else {
            impact.lost_values += 1;
            *by_elem.entry(schema.path(elem)).or_insert(0) += 1;
        }
    }
    impact.lost_by_element = {
        let mut v: Vec<(String, usize)> = by_elem.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    };
    impact
}

/// Computes the impact of removing an entire data source: every mapping
/// whose foreach query references that source is removed.
pub fn impact_of_source(tagged: &TaggedInstance, db: &str) -> Impact {
    let removed: Vec<MappingName> = tagged
        .setting()
        .mappings()
        .iter()
        .filter(|m| {
            tagged
                .setting()
                .triple(&m.name)
                .map(|t| t.source_elements.iter().any(|e| e.db == db))
                .unwrap_or(false)
        })
        .map(|m| m.name.clone())
        .collect();
    impact_of_mappings(tagged, &removed)
}

/// The nodes that would be lost (for drill-down displays).
pub fn lost_nodes(tagged: &TaggedInstance, removed: &[MappingName]) -> Vec<NodeId> {
    let inst = tagged.target();
    inst.walk()
        .into_iter()
        .filter(|&n| {
            let a = inst.annotation(n);
            !a.mappings.is_empty() && a.mappings.iter().all(|m| removed.contains(m))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::figure1;

    #[test]
    fn removing_one_mapping_keeps_merged_values() {
        let t = figure1();
        // m2 generated H522's values and (with m3) the HomeGain contact.
        let impact = impact_of_mappings(&t, &[MappingName::new("m2")]);
        assert!(impact.lost_values > 0);
        // The HomeGain contact title survives via m3: check it is not lost.
        let schema = t.setting().target_schema();
        let title = schema.resolve_path("/Portal/contacts/title").unwrap();
        let lost = lost_nodes(&t, &[MappingName::new("m2")]);
        let homegain = t
            .target()
            .interpretation(title)
            .into_iter()
            .find(|&n| t.target().atomic(n).unwrap().as_str() == Some("HomeGain"))
            .unwrap();
        assert!(!lost.contains(&homegain));
        // But H522's hid is lost (only m2 made it).
        let hid_elem = schema.resolve_path("/Portal/estates/hid").unwrap();
        let h522 = t
            .target()
            .interpretation(hid_elem)
            .into_iter()
            .find(|&n| t.target().atomic(n).unwrap().as_str() == Some("H522"))
            .unwrap();
        assert!(lost.contains(&h522));
    }

    #[test]
    fn removing_a_source_removes_its_mappings() {
        let t = figure1();
        // Removing EUdb removes exactly m3's exclusive values.
        let impact = impact_of_source(&t, "EUdb");
        let by_mapping = impact_of_mappings(&t, &[MappingName::new("m3")]);
        assert_eq!(impact, by_mapping);
        assert!(impact.lost_values > 0);
        assert!(impact.lost_fraction() > 0.0 && impact.lost_fraction() < 1.0);
    }

    #[test]
    fn removing_everything_loses_everything() {
        let t = figure1();
        let all: Vec<MappingName> = t
            .setting()
            .mappings()
            .iter()
            .map(|m| m.name.clone())
            .collect();
        let impact = impact_of_mappings(&t, &all);
        assert_eq!(impact.surviving_values, 0);
        assert!((impact.lost_fraction() - 1.0).abs() < f64::EPSILON);
        // Per-element breakdown accounts for every lost value.
        let sum: usize = impact.lost_by_element.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, impact.lost_values);
    }

    #[test]
    fn removing_nothing_loses_nothing() {
        let t = figure1();
        let impact = impact_of_mappings(&t, &[]);
        assert_eq!(impact.lost_values, 0);
        assert_eq!(impact.lost_fraction(), 0.0);
    }
}
