//! Continuous-ingest sessions: a [`MappingSetting`] paired with the
//! delta-driven exchange engine of [`dtr_mapping::incremental`], so source
//! updates flow into the annotated target without a full re-exchange, and
//! the metastore rows for touched subtrees are re-encoded alongside.
//!
//! ```
//! use dtr_core::incremental::IncrementalSession;
//! use dtr_core::testkit::{figure1_setting, figure1_sources};
//! use dtr_mapping::delta::SourceDelta;
//! use dtr_model::instance::Value;
//!
//! let mut session =
//!     IncrementalSession::new(figure1_setting(), figure1_sources()).unwrap();
//! let td = session
//!     .apply(&SourceDelta::new().delete("US.houses", 0))
//!     .unwrap();
//! assert!(!td.retracted.is_empty());
//! // The tagged view answers MXQL over the incrementally maintained target.
//! let tagged = session.tagged().unwrap();
//! let rows = tagged
//!     .query("select x.hid, m from Portal.estates x, x.hid@map m")
//!     .unwrap();
//! assert!(rows.len() < 3);
//! ```

use crate::tagged::{MappingSetting, MxqlError, TaggedInstance};
use dtr_mapping::delta::{DeltaError, SourceDelta, TargetDelta};
use dtr_mapping::exchange::{ExchangeOptions, ExchangeReport};
use dtr_mapping::incremental::IncrementalExchange;
use dtr_metastore::store::MetaStore;
use dtr_model::instance::{Instance, Value};
use dtr_model::schema::Schema;
use dtr_query::functions::FunctionRegistry;

/// A live incremental-exchange session over a mapping setting.
pub struct IncrementalSession {
    setting: MappingSetting,
    engine: IncrementalExchange,
    store: Option<MetaStore>,
}

impl From<DeltaError> for MxqlError {
    fn from(e: DeltaError) -> Self {
        match e {
            DeltaError::Exchange(x) => MxqlError::Exchange(x),
            other => MxqlError::Other(other.to_string()),
        }
    }
}

impl IncrementalSession {
    /// Builds the initial target with a full exchange. `sources` align
    /// with the setting's source schemas.
    pub fn new(setting: MappingSetting, sources: Vec<Instance>) -> Result<Self, MxqlError> {
        Self::with_options(setting, sources, ExchangeOptions::default())
    }

    /// [`IncrementalSession::new`] with explicit exchange options (budgets
    /// apply per batch; a tripped budget rolls the batch back).
    pub fn with_options(
        setting: MappingSetting,
        mut sources: Vec<Instance>,
        opts: ExchangeOptions,
    ) -> Result<Self, MxqlError> {
        for (inst, schema) in sources.iter_mut().zip(setting.source_schemas()) {
            inst.annotate_elements(schema)
                .map_err(|e| MxqlError::Other(e.to_string()))?;
        }
        let engine = IncrementalExchange::new(
            setting.source_schemas().to_vec(),
            sources,
            setting.target_schema().clone(),
            setting.mappings().to_vec(),
            FunctionRegistry::with_builtins(),
            opts,
        )?;
        Ok(IncrementalSession {
            setting,
            engine,
            store: None,
        })
    }

    /// Attaches a metastore: each applied batch re-encodes the `Element`
    /// rows under the touched source paths via
    /// [`MetaStore::reencode_affected`].
    pub fn attach_store(&mut self, store: MetaStore) {
        self.store = Some(store);
    }

    /// The attached metastore, if any.
    pub fn store(&self) -> Option<&MetaStore> {
        self.store.as_ref()
    }

    /// Applies one edit batch to the sources and incrementally maintains
    /// the target (see [`IncrementalExchange::apply`]). Re-encodes the
    /// metastore rows for the touched schema subtrees when a store is
    /// attached.
    pub fn apply(&mut self, delta: &SourceDelta) -> Result<TargetDelta, MxqlError> {
        let td = self.engine.apply(delta)?;
        if let Some(store) = &mut self.store {
            let mut by_schema: Vec<(&Schema, Vec<String>)> = Vec::new();
            for edit in &delta.edits {
                let root = edit.path.split('.').next().unwrap_or_default();
                let Some(schema) = self.setting.source_schemas().iter().find(|s| {
                    s.roots()
                        .iter()
                        .any(|&r| s.element(r).label.as_str() == root)
                }) else {
                    continue;
                };
                match by_schema
                    .iter_mut()
                    .find(|(s, _)| s.name() == schema.name())
                {
                    Some((_, paths)) => {
                        if !paths.contains(&edit.path) {
                            paths.push(edit.path.clone());
                        }
                    }
                    None => by_schema.push((schema, vec![edit.path.clone()])),
                }
            }
            for (schema, paths) in by_schema {
                store.reencode_affected(schema, &paths);
            }
        }
        Ok(td)
    }

    /// Drops all incremental state and rebuilds from the current sources.
    pub fn rebase(&mut self) -> Result<(), MxqlError> {
        self.engine.rebase().map_err(MxqlError::from)
    }

    /// Test hook: override the PNF bucketing fingerprint (forces collision
    /// splits; merges stay structurally confirmed) and rebase.
    pub fn set_member_fingerprinter(&mut self, f: fn(&Value) -> u64) -> Result<(), MxqlError> {
        self.engine
            .set_member_fingerprinter(f)
            .map_err(MxqlError::from)
    }

    /// The mapping setting.
    pub fn setting(&self) -> &MappingSetting {
        &self.setting
    }

    /// The annotated target as of the last batch.
    pub fn target(&self) -> &Instance {
        self.engine.target()
    }

    /// The mutated source instances.
    pub fn sources(&self) -> &[Instance] {
        self.engine.sources()
    }

    /// The synthesized exchange report (see
    /// [`IncrementalExchange::report`]).
    pub fn report(&self) -> &ExchangeReport {
        self.engine.report()
    }

    /// Batches applied since the last rebase.
    pub fn batch(&self) -> u64 {
        self.engine.batch()
    }

    /// A [`TaggedInstance`] over the current sources and target, for MXQL.
    /// Snapshots the current state — later applies do not flow into it.
    pub fn tagged(&self) -> Result<TaggedInstance, MxqlError> {
        let setting = MappingSetting::new(
            self.setting.source_schemas().to_vec(),
            self.setting.target_schema().clone(),
            self.setting.mappings().to_vec(),
        )?;
        TaggedInstance::from_parts(
            setting,
            self.engine.sources().to_vec(),
            self.engine.target().clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{figure1_setting, figure1_sources};
    use dtr_mapping::delta::SourceDelta;

    fn house(hid: &str) -> Value {
        Value::record(vec![
            ("hid", Value::str(hid)),
            ("floors", Value::str("4")),
            ("price", Value::str("777K")),
            ("aid", Value::str("a1")),
        ])
    }

    #[test]
    fn session_applies_and_answers_mxql() {
        let mut s = IncrementalSession::new(figure1_setting(), figure1_sources()).unwrap();
        let td = s
            .apply(&SourceDelta::new().insert("US.houses", house("H900")))
            .unwrap();
        assert!(!td.inserted.is_empty());
        let tagged = s.tagged().unwrap();
        let rows = tagged
            .query("select x.hid, m from Portal.estates x, x.hid@map m")
            .unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn attached_store_reencodes_touched_paths() {
        let mut s = IncrementalSession::new(figure1_setting(), figure1_sources()).unwrap();
        let mut store = MetaStore::new();
        for schema in s.setting().source_schemas() {
            store.add_schema(schema).unwrap();
        }
        store.add_schema(s.setting().target_schema()).unwrap();
        s.attach_store(store);
        s.apply(&SourceDelta::new().delete("US.houses", 0)).unwrap();
        // The affected subtree's rows are still present and coherent.
        let row = s
            .store()
            .unwrap()
            .element_by_path("USdb", "/US/houses")
            .unwrap();
        assert_eq!(row.ty, "Set");
    }

    #[test]
    fn rebase_preserves_query_answers() {
        let mut s = IncrementalSession::new(figure1_setting(), figure1_sources()).unwrap();
        s.apply(&SourceDelta::new().insert("US.houses", house("H900")))
            .unwrap();
        let answers = |s: &IncrementalSession| {
            let mut rows: Vec<String> = s
                .tagged()
                .unwrap()
                .query("select x.hid from Portal.estates x")
                .unwrap()
                .distinct_tuples()
                .iter()
                .map(|t| format!("{t:?}"))
                .collect();
            rows.sort();
            rows
        };
        let before = answers(&s);
        s.rebase().unwrap();
        assert_eq!(before, answers(&s));
    }
}
