//! Mapping settings and tagged instances (Definitions 5.1 and 5.2).
//!
//! A *mapping setting* is a triple `<Ss, St, M>`: source schemas, a target
//! schema, and mappings from sources to target. A *tagged instance* pairs a
//! target instance generated through the mappings with the functions
//! `f_el` (value → schema element) and `f_mp` (value → generating mappings),
//! carried here as per-node annotations, and makes databases, schema
//! elements and mappings first-class queryable values.

use dtr_mapping::exchange::{
    execute_mappings_with, ExchangeError, ExchangeOptions, ExchangeReport,
};
use dtr_mapping::glav::{Mapping, MappingError};
use dtr_mapping::triple::{extract_triple, MappingTriple};
use dtr_model::instance::{Instance, NodeId};
use dtr_model::schema::Schema;
use dtr_model::value::{AtomicValue, ElementRef, MappingName};
use dtr_obs::guard::{Budget, GuardError};
use dtr_query::ast::Query;
use dtr_query::check::CheckError;
use dtr_query::eval::{
    Catalog, EvalError, EvalOptions, Evaluator, MetaEnv, PredTriple, QueryResult, Source,
};
use dtr_query::functions::FunctionRegistry;
use dtr_query::parser::{parse_query, ParseError};
use dtr_query::plan::{CompiledPlan, PlanCache, PlanCacheStats};
use std::fmt;
use std::sync::Arc;

/// Errors from the MXQL surface: parsing, checking, evaluation, exchange.
#[derive(Debug)]
pub enum MxqlError {
    /// Query text failed to parse.
    Parse(ParseError),
    /// A query failed static checking.
    Check(CheckError),
    /// A mapping is malformed.
    Mapping(MappingError),
    /// Evaluation failed.
    Eval(EvalError),
    /// The exchange failed.
    Exchange(ExchangeError),
    /// A resource budget was exhausted outside evaluation/exchange (e.g.
    /// during translation or metastore encoding).
    Guard(GuardError),
    /// A file/storage operation failed. Structured: the path and the
    /// operation are data, so callers (REPL, experiments, CI) can report
    /// *which* file broke without string-parsing — and never panic.
    Io {
        /// Path the operation targeted.
        path: String,
        /// Operation name (`read`, `append`, `sync`, `write`, ...).
        op: String,
        /// Underlying error message.
        msg: String,
    },
    /// Miscellaneous (e.g. unknown mapping name).
    Other(String),
}

impl MxqlError {
    /// The structured [`GuardError`] behind this error, if a resource
    /// budget was the cause — regardless of which pipeline stage tripped
    /// (evaluation, exchange, translation, or encoding).
    pub fn guard(&self) -> Option<&GuardError> {
        match self {
            MxqlError::Guard(g) | MxqlError::Eval(EvalError::Guard(g)) => Some(g),
            MxqlError::Exchange(ExchangeError::Guard { error, .. }) => Some(error),
            MxqlError::Exchange(ExchangeError::Eval(EvalError::Guard(g))) => Some(g),
            _ => None,
        }
    }
}

impl fmt::Display for MxqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MxqlError::Parse(e) => write!(f, "{e}"),
            MxqlError::Check(e) => write!(f, "{e}"),
            MxqlError::Mapping(e) => write!(f, "{e}"),
            MxqlError::Eval(e) => write!(f, "{e}"),
            MxqlError::Exchange(e) => write!(f, "{e}"),
            MxqlError::Guard(g) => write!(f, "{g}"),
            MxqlError::Io { path, op, msg } => write!(f, "io error: {op} {path}: {msg}"),
            MxqlError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for MxqlError {}

impl From<ParseError> for MxqlError {
    fn from(e: ParseError) -> Self {
        MxqlError::Parse(e)
    }
}
impl From<CheckError> for MxqlError {
    fn from(e: CheckError) -> Self {
        MxqlError::Check(e)
    }
}
impl From<MappingError> for MxqlError {
    fn from(e: MappingError) -> Self {
        MxqlError::Mapping(e)
    }
}
impl From<EvalError> for MxqlError {
    fn from(e: EvalError) -> Self {
        MxqlError::Eval(e)
    }
}
impl From<ExchangeError> for MxqlError {
    fn from(e: ExchangeError) -> Self {
        MxqlError::Exchange(e)
    }
}
impl From<GuardError> for MxqlError {
    fn from(g: GuardError) -> Self {
        MxqlError::Guard(g)
    }
}

/// A mapping setting `<Ss, St, M>` (Definition 5.1), with the `⟨Es,Et,Wc⟩`
/// triple of every mapping pre-extracted.
pub struct MappingSetting {
    source_schemas: Vec<Schema>,
    target_schema: Schema,
    mappings: Vec<Mapping>,
    triples: Vec<MappingTriple>,
}

impl MappingSetting {
    /// Builds and validates a mapping setting.
    pub fn new(
        source_schemas: Vec<Schema>,
        target_schema: Schema,
        mappings: Vec<Mapping>,
    ) -> Result<Self, MxqlError> {
        let refs: Vec<&Schema> = source_schemas.iter().collect();
        let mut triples = Vec::with_capacity(mappings.len());
        for m in &mappings {
            m.validate(&refs, &target_schema)?;
            triples.push(extract_triple(m, &refs, &target_schema)?);
        }
        Ok(MappingSetting {
            source_schemas,
            target_schema,
            mappings,
            triples,
        })
    }

    /// The source schemas `Ss`.
    pub fn source_schemas(&self) -> &[Schema] {
        &self.source_schemas
    }

    /// The target schema `St`.
    pub fn target_schema(&self) -> &Schema {
        &self.target_schema
    }

    /// The mappings `M`.
    pub fn mappings(&self) -> &[Mapping] {
        &self.mappings
    }

    /// A mapping by name.
    pub fn mapping(&self, name: &MappingName) -> Option<&Mapping> {
        self.mappings.iter().find(|m| m.name == *name)
    }

    /// The `⟨Es,Et,Wc⟩` triple of a mapping.
    pub fn triple(&self, name: &MappingName) -> Option<&MappingTriple> {
        self.mappings
            .iter()
            .position(|m| m.name == *name)
            .map(|i| &self.triples[i])
    }

    /// A source schema by database name.
    pub fn source_schema(&self, db: &str) -> Option<&Schema> {
        self.source_schemas.iter().find(|s| s.name() == db)
    }

    /// Normalizes element-path constants in mapping predicates and in
    /// comparisons against element-typed variables, resolving them against
    /// the setting's schemas. This erases the "documentation segments" the
    /// paper's examples use (`/Portal/estates/estate/stories` for the
    /// canonical `/Portal/estates/stories`) so that predicate matching is
    /// purely syntactic afterwards.
    pub fn normalize_query(&self, q: &Query) -> Query {
        use dtr_query::ast::{Condition, Expr, Term};
        let mut out = q.clone();
        // Variables standing for elements (implicitly typed by their
        // predicate positions).
        let mut elem_vars: Vec<String> = Vec::new();
        for c in &q.conditions {
            if let Condition::MapPred(p) = c {
                for t in [&p.src_elem, &p.tgt_elem] {
                    if let Term::Var(v) = t {
                        if !elem_vars.contains(v) {
                            elem_vars.push(v.clone());
                        }
                    }
                }
            }
        }
        let normalize = |text: &str, db: Option<&str>| -> Option<String> {
            let schemas: Vec<&Schema> = std::iter::once(&self.target_schema)
                .chain(self.source_schemas.iter())
                .filter(|s| db.is_none_or(|d| s.name() == d))
                .collect();
            for s in schemas {
                if let Some(e) = s.resolve_path(text) {
                    return Some(s.path(e));
                }
            }
            None
        };
        for c in &mut out.conditions {
            match c {
                Condition::MapPred(p) => {
                    let src_db = match &p.src_db {
                        Term::Const(d) => Some(d.to_string()),
                        _ => None,
                    };
                    let tgt_db = match &p.tgt_db {
                        Term::Const(d) => Some(d.to_string()),
                        _ => None,
                    };
                    for (term, db) in [(&mut p.src_elem, src_db), (&mut p.tgt_elem, tgt_db)] {
                        if let Term::Const(cst) = term {
                            if let Some(canon) = normalize(&cst.to_string(), db.as_deref()) {
                                *term = Term::Const(AtomicValue::Str(canon));
                            }
                        }
                    }
                }
                Condition::Cmp(cmp) => {
                    let elemish = |e: &Expr| match e {
                        Expr::ElemOf(_) => true,
                        Expr::Path(p) => {
                            p.steps.is_empty()
                                && p.start_var()
                                    .is_some_and(|v| elem_vars.iter().any(|x| x == v))
                        }
                        _ => false,
                    };
                    let left_is_elem = elemish(&cmp.left);
                    let right_is_elem = elemish(&cmp.right);
                    let target = if left_is_elem {
                        &mut cmp.right
                    } else if right_is_elem {
                        &mut cmp.left
                    } else {
                        continue;
                    };
                    if let Expr::Const(AtomicValue::Str(s)) = target {
                        if let Some(canon) = normalize(s, None) {
                            *target = Expr::Const(AtomicValue::Str(canon));
                        }
                    }
                }
            }
        }
        out
    }

    /// All `(source element, mapping, target element)` triples satisfying
    /// the mapping predicate — the [`MetaEnv`] feed.
    ///
    /// * single arrow (`double == false`): the select-position
    ///   correspondences, i.e. the pairs `(es = et) ∈ Wc` across schemas;
    /// * double arrow (`double == true`): every pair of a foreach
    ///   select-or-where element with a populated target element
    ///   (the Theorem 6.4 semantics; see DESIGN.md on why the select side
    ///   is included).
    pub fn predicate_triples(&self, double: bool) -> Vec<PredTriple> {
        let mut out = Vec::new();
        for (m, t) in self.mappings.iter().zip(&self.triples) {
            if !double {
                for (src, tgt) in &t.correspondences {
                    out.push(PredTriple {
                        src: src.clone(),
                        mapping: m.name.clone(),
                        tgt: tgt.clone(),
                    });
                }
            } else {
                let what = t.what_elements();
                for tgt in t.populated_elements() {
                    for src in &what {
                        out.push(PredTriple {
                            src: src.clone(),
                            mapping: m.name.clone(),
                            tgt: tgt.clone(),
                        });
                    }
                }
            }
        }
        out.dedup();
        out
    }
}

impl MetaEnv for MappingSetting {
    fn triples(&self, double: bool) -> Vec<PredTriple> {
        self.predicate_triples(double)
    }
}

/// Audit-log outcome string for a failed request: `"guard:<resource>"`
/// when a resource budget tripped, `"error"` otherwise.
fn audit_outcome(err: &MxqlError) -> String {
    match err.guard() {
        Some(g) => format!("guard:{}", g.resource.name()),
        None => "error".to_string(),
    }
}

/// Records a completed query-shaped request in the audit log, filling the
/// `EvalStats` columns from the result. Called only when auditing is on.
pub(crate) fn audit_query(
    kind: &str,
    request: String,
    started: std::time::Instant,
    out: Result<&QueryResult, &MxqlError>,
) {
    let mut rec = dtr_obs::AuditRecord::new(kind, request);
    rec.wall_ns = started.elapsed().as_nanos() as u64;
    match out {
        Ok(result) => {
            rec.rows = result.rows.len() as u64;
            rec.tuples_scanned = result.stats.tuples_scanned;
            rec.bindings_enumerated = result.stats.bindings_enumerated;
            rec.predicate_triples_tested = result.stats.predicate_triples_tested;
            rec.hash_probes = result.stats.hash_probes;
        }
        Err(e) => rec.outcome = audit_outcome(e),
    }
    dtr_obs::audit::record(rec);
}

/// A tagged instance (Definition 5.2): the annotated target instance plus
/// its mapping setting and source instances, ready for MXQL querying.
pub struct TaggedInstance {
    setting: MappingSetting,
    source_instances: Vec<Instance>,
    target: Instance,
    functions: FunctionRegistry,
    report: ExchangeReport,
    /// Compiled plans keyed by query-text fingerprint (structurally
    /// confirmed on hit), so repeated traffic skips parse + check + plan.
    plans: PlanCache,
}

impl TaggedInstance {
    /// Materializes the target by executing every mapping of the setting
    /// over the source instances (which must be given in the same order as
    /// the setting's source schemas), annotating values with `f_el`/`f_mp`.
    pub fn exchange(
        setting: MappingSetting,
        source_instances: Vec<Instance>,
    ) -> Result<Self, MxqlError> {
        Self::exchange_with_options(setting, source_instances, &ExchangeOptions::default())
    }

    /// [`TaggedInstance::exchange`] with explicit exchange options
    /// (evaluator engine selection and parallel foreach evaluation).
    pub fn exchange_with_options(
        setting: MappingSetting,
        source_instances: Vec<Instance>,
        opts: &ExchangeOptions,
    ) -> Result<Self, MxqlError> {
        if !dtr_obs::audit::enabled() {
            return Self::exchange_inner(setting, source_instances, opts);
        }
        let request = {
            let mut names: Vec<&str> = setting.mappings.iter().map(|m| m.name.as_str()).collect();
            names.sort_unstable();
            names.join(",")
        };
        let started = std::time::Instant::now();
        let result = Self::exchange_inner(setting, source_instances, opts);
        let mut rec = dtr_obs::AuditRecord::new("exchange", request);
        rec.wall_ns = started.elapsed().as_nanos() as u64;
        match &result {
            Ok(tagged) => {
                rec.rows = tagged
                    .report
                    .per_mapping
                    .iter()
                    .map(|s| s.rows_inserted as u64)
                    .sum();
            }
            Err(e) => rec.outcome = audit_outcome(e),
        }
        dtr_obs::audit::record(rec);
        result
    }

    fn exchange_inner(
        setting: MappingSetting,
        mut source_instances: Vec<Instance>,
        opts: &ExchangeOptions,
    ) -> Result<Self, MxqlError> {
        let span = dtr_obs::span("exchange.tagged_instance")
            .field("sources", source_instances.len())
            .field("mappings", setting.mappings.len());
        if source_instances.len() != setting.source_schemas.len() {
            return Err(MxqlError::Other(format!(
                "{} source instances for {} source schemas",
                source_instances.len(),
                setting.source_schemas.len()
            )));
        }
        // Element-annotate the sources so @elem works on them too.
        for (inst, schema) in source_instances.iter_mut().zip(&setting.source_schemas) {
            inst.annotate_elements(schema)
                .map_err(|e| MxqlError::Other(e.to_string()))?;
        }
        let functions = FunctionRegistry::with_builtins();
        let sources: Vec<Source<'_>> = setting
            .source_schemas
            .iter()
            .zip(&source_instances)
            .map(|(schema, instance)| Source { schema, instance })
            .collect();
        let (target, report) = execute_mappings_with(
            &sources,
            &setting.target_schema,
            &setting.mappings,
            &functions,
            opts,
        )?;
        span.record("target_nodes", target.len());
        Ok(TaggedInstance {
            setting,
            source_instances,
            target,
            functions,
            report,
            plans: PlanCache::new(),
        })
    }

    /// Wraps an already-materialized annotated target instance (e.g. one
    /// read back from XML).
    pub fn from_parts(
        setting: MappingSetting,
        mut source_instances: Vec<Instance>,
        mut target: Instance,
    ) -> Result<Self, MxqlError> {
        for (inst, schema) in source_instances.iter_mut().zip(&setting.source_schemas) {
            inst.annotate_elements(schema)
                .map_err(|e| MxqlError::Other(e.to_string()))?;
        }
        target
            .annotate_elements(&setting.target_schema)
            .map_err(|e| MxqlError::Other(e.to_string()))?;
        Ok(TaggedInstance {
            setting,
            source_instances,
            target,
            functions: FunctionRegistry::with_builtins(),
            report: ExchangeReport::default(),
            plans: PlanCache::new(),
        })
    }

    /// The mapping setting.
    pub fn setting(&self) -> &MappingSetting {
        &self.setting
    }

    /// The annotated target instance `It`.
    pub fn target(&self) -> &Instance {
        &self.target
    }

    /// The source instances, in setting order.
    pub fn source_instances(&self) -> &[Instance] {
        &self.source_instances
    }

    /// The exchange report (tuple counts per mapping).
    pub fn report(&self) -> &ExchangeReport {
        &self.report
    }

    /// The function registry used by queries over this tagged instance.
    pub fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }

    /// Mutable access to the function registry (to register custom
    /// functions).
    pub fn functions_mut(&mut self) -> &mut FunctionRegistry {
        &mut self.functions
    }

    /// A query catalog spanning the target and all source instances.
    pub fn catalog(&self) -> Catalog<'_> {
        let mut sources = vec![Source {
            schema: &self.setting.target_schema,
            instance: &self.target,
        }];
        for (schema, instance) in self
            .setting
            .source_schemas
            .iter()
            .zip(&self.source_instances)
        {
            sources.push(Source { schema, instance });
        }
        Catalog::new(sources)
    }

    /// A catalog over the sources only (used by provenance queries).
    pub fn source_catalog(&self) -> Catalog<'_> {
        Catalog::new(
            self.setting
                .source_schemas
                .iter()
                .zip(&self.source_instances)
                .map(|(schema, instance)| Source { schema, instance })
                .collect(),
        )
    }

    /// Evaluates a parsed (MXQL or plain) query directly — the native
    /// implementation of the Section 5 semantics.
    pub fn run(&self, q: &Query) -> Result<QueryResult, MxqlError> {
        let audit = dtr_obs::audit::enabled().then(|| (q.to_string(), std::time::Instant::now()));
        let q = self.setting.normalize_query(q);
        let catalog = self.catalog();
        let result = Evaluator::new(&catalog, &self.functions)
            .with_meta(&self.setting)
            .run(&q)
            .map_err(MxqlError::from);
        if let Some((request, started)) = audit {
            audit_query("query", request, started, result.as_ref());
        }
        result
    }

    /// [`TaggedInstance::run`] in EXPLAIN ANALYZE mode: evaluates the query
    /// with per-operator instrumentation and returns the result alongside
    /// the operator tree. The result is byte-identical to [`TaggedInstance::run`];
    /// the tree carries actual rows in/out, wall time, and guard charges per
    /// operator (see `dtr_obs::analyze`).
    pub fn run_analyzed(&self, q: &Query) -> Result<(QueryResult, dtr_obs::OpNode), MxqlError> {
        let audit = dtr_obs::audit::enabled().then(|| (q.to_string(), std::time::Instant::now()));
        let q = self.setting.normalize_query(q);
        let catalog = self.catalog();
        let result = Evaluator::new(&catalog, &self.functions)
            .with_meta(&self.setting)
            .run_analyzed(&q)
            .map_err(MxqlError::from);
        if let Some((request, started)) = audit {
            audit_query("query", request, started, result.as_ref().map(|(r, _)| r));
        }
        result
    }

    /// Evaluates with explicit options (for the ablation benchmarks).
    pub fn run_with_options(&self, q: &Query, opts: EvalOptions) -> Result<QueryResult, MxqlError> {
        let audit = dtr_obs::audit::enabled().then(|| (q.to_string(), std::time::Instant::now()));
        let q = self.setting.normalize_query(q);
        let catalog = self.catalog();
        let result = Evaluator::new(&catalog, &self.functions)
            .with_meta(&self.setting)
            .with_options(opts)
            .run(&q)
            .map_err(MxqlError::from);
        if let Some((request, started)) = audit {
            audit_query("query", request, started, result.as_ref());
        }
        result
    }

    /// Evaluates under a resource [`Budget`] (deadline, cancellation, row
    /// and byte caps) with otherwise-default options. A tripped budget
    /// returns a structured guard error, reachable via
    /// [`MxqlError::guard`].
    pub fn run_budgeted(&self, q: &Query, budget: &Budget) -> Result<QueryResult, MxqlError> {
        self.run_with_options(
            q,
            EvalOptions {
                budget: budget.clone(),
                ..Default::default()
            },
        )
    }

    /// Parses and evaluates MXQL text.
    pub fn query(&self, text: &str) -> Result<QueryResult, MxqlError> {
        let q = parse_query(text)?;
        self.run(&q)
    }

    /// Evaluates MXQL text through the planner pipeline: a plan-cache hit
    /// (fingerprint keyed, structurally confirmed against the stored
    /// text) skips parse + check + plan entirely; a miss compiles the
    /// query — resolve, logical rewrites, cost-based physical planning
    /// from the current statistics snapshot — caches the plan, and
    /// executes it. Execution runs through the same evaluator kernels as
    /// [`TaggedInstance::run`], so guards, journal, stats and analyze all
    /// behave identically; bindings may execute in a planned order, so
    /// the result *multiset* matches `run` while row order may differ
    /// (never under `limit`, which pins the original order).
    pub fn run_planned(&self, text: &str) -> Result<QueryResult, MxqlError> {
        let plan = self.plan_for(text)?;
        self.run_plan(&plan)
    }

    /// [`TaggedInstance::run_planned`] under a resource [`Budget`]. The
    /// budget applies to this execution only — it is never baked into the
    /// cached plan.
    pub fn run_planned_budgeted(
        &self,
        text: &str,
        budget: &Budget,
    ) -> Result<QueryResult, MxqlError> {
        let plan = self.plan_for(text)?;
        let audit =
            dtr_obs::audit::enabled().then(|| (plan.text.clone(), std::time::Instant::now()));
        let catalog = self.catalog();
        let result = Evaluator::new(&catalog, &self.functions)
            .with_meta(&self.setting)
            .with_options(EvalOptions {
                budget: budget.clone(),
                ..plan.opts.clone()
            })
            .run(&plan.query)
            .map_err(MxqlError::from);
        if let Some((request, started)) = audit {
            audit_query("query.planned", request, started, result.as_ref());
        }
        result
    }

    /// The cached (or freshly compiled and cached) plan for `text`.
    pub fn plan_for(&self, text: &str) -> Result<Arc<CompiledPlan>, MxqlError> {
        if let Some(plan) = self.plans.lookup(text) {
            return Ok(plan);
        }
        let plan = Arc::new(self.compile_plan(text, &dtr_obs::stats::snapshot())?);
        self.plans.insert(Arc::clone(&plan));
        Ok(plan)
    }

    /// Compiles `text` against an explicit statistics catalog, bypassing
    /// the cache — deterministic planning for tests and `.explain`.
    pub fn plan_with_stats(
        &self,
        text: &str,
        stats: &dtr_obs::stats::StatsCatalog,
    ) -> Result<CompiledPlan, MxqlError> {
        self.compile_plan(text, stats)
    }

    fn compile_plan(
        &self,
        text: &str,
        stats: &dtr_obs::stats::StatsCatalog,
    ) -> Result<CompiledPlan, MxqlError> {
        let q = parse_query(text)?;
        let q = self.setting.normalize_query(&q);
        let mut schemas: Vec<&Schema> = vec![&self.setting.target_schema];
        schemas.extend(self.setting.source_schemas.iter());
        dtr_query::plan::compile(&q, schemas, stats, text, EvalOptions::default())
            .map_err(MxqlError::Check)
    }

    /// Executes a compiled plan (no parsing, checking or planning).
    pub fn run_plan(&self, plan: &CompiledPlan) -> Result<QueryResult, MxqlError> {
        let audit =
            dtr_obs::audit::enabled().then(|| (plan.text.clone(), std::time::Instant::now()));
        let catalog = self.catalog();
        let result = Evaluator::new(&catalog, &self.functions)
            .with_meta(&self.setting)
            .with_options(plan.opts.clone())
            .run(&plan.query)
            .map_err(MxqlError::from);
        if let Some((request, started)) = audit {
            audit_query("query.planned", request, started, result.as_ref());
        }
        result
    }

    /// Executes a compiled plan with per-operator instrumentation, for
    /// estimated-vs-actual `.explain` display.
    pub fn run_plan_analyzed(
        &self,
        plan: &CompiledPlan,
    ) -> Result<(QueryResult, dtr_obs::OpNode), MxqlError> {
        let audit =
            dtr_obs::audit::enabled().then(|| (plan.text.clone(), std::time::Instant::now()));
        let catalog = self.catalog();
        let result = Evaluator::new(&catalog, &self.functions)
            .with_meta(&self.setting)
            .with_options(plan.opts.clone())
            .run_analyzed(&plan.query)
            .map_err(MxqlError::from);
        if let Some((request, started)) = audit {
            audit_query(
                "query.planned",
                request,
                started,
                result.as_ref().map(|(r, _)| r),
            );
        }
        result
    }

    /// Plan-cache counters (hits, misses, structural-confirmation
    /// collisions) and entry count.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Drops every cached plan (benchmarks use this to measure cold-plan
    /// compilation cost).
    pub fn clear_plan_cache(&self) {
        self.plans.clear()
    }

    /// The `f_el` annotation of a target value, as an [`ElementRef`].
    pub fn element_of(&self, node: NodeId) -> Option<ElementRef> {
        let e = self.target.annotation(node).element?;
        Some(ElementRef::new(
            self.target.db(),
            self.setting.target_schema.path(e),
        ))
    }

    /// The `f_mp` annotation of a target value.
    pub fn mappings_of(&self, node: NodeId) -> &[MappingName] {
        &self.target.annotation(node).mappings
    }

    /// Convenience: the values of a target element (by canonical path) as
    /// `(node, atomic value)` pairs.
    pub fn target_values(&self, path: &str) -> Vec<(NodeId, AtomicValue)> {
        let Some(e) = self.setting.target_schema.resolve_path(path) else {
            return Vec::new();
        };
        self.target
            .interpretation(e)
            .into_iter()
            .filter_map(|n| self.target.atomic(n).map(|v| (n, v.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::figure1;

    #[test]
    fn exchange_builds_tagged_instance() {
        let t = figure1();
        assert_eq!(t.report().tuples.len(), 3);
        assert_eq!(t.target().db(), "Pdb");
        // Figure 3: two estates, two contacts (HomeGain merged).
        assert_eq!(t.target_values("/Portal/estates/hid").len(), 3);
        assert_eq!(t.target_values("/Portal/contacts/title").len(), 2);
    }

    #[test]
    fn example_5_4_map_operator() {
        // Example 5.4: prices with the mappings that generated them.
        let t = figure1();
        let r = t
            .query("select x.hid, x.value, m from Portal.estates x, x.value@map m")
            .unwrap();
        // Three estates, each with exactly one generating mapping.
        assert_eq!(r.len(), 3);
        let pairs: Vec<(String, String)> = r
            .tuples()
            .into_iter()
            .map(|t| (t[0].to_string(), t[2].to_string()))
            .collect();
        assert!(pairs.contains(&("H522".into(), "m2".into())));
        assert!(pairs.contains(&("H7".into(), "m1".into())));
        assert!(pairs.contains(&("H2525".into(), "m3".into())));
    }

    #[test]
    fn example_5_5_firm_contacts() {
        // Example 5.5: estates whose contact is a USdb firm, with the
        // mapping that generated the title. Expected: ('H522', 'm2').
        let t = figure1();
        let r = t
            .query(
                "select s.hid, m
                 from Portal.estates s, Portal.contacts c, c.title@map m
                 where s.contact = c.title and e = c.title@elem
                   and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>",
            )
            .unwrap();
        let mut tuples: Vec<(String, String)> = r
            .distinct_tuples()
            .into_iter()
            .map(|t| (t[0].to_string(), t[1].to_string()))
            .collect();
        tuples.sort();
        // The paper reports only ('H522','m2'), but by the formal semantics
        // the merged HomeGain contact (Figure 3's {m2,m3} union) joins
        // estate H2525 as well, so (H2525,'m2') also satisfies the query.
        assert_eq!(
            tuples,
            vec![
                ("H2525".to_string(), "m2".to_string()),
                ("H522".to_string(), "m2".to_string())
            ]
        );
        // Constraining the estate itself to the same mapping recovers the
        // paper's intended single answer.
        let r2 = t
            .query(
                "select s.hid, m
                 from Portal.estates s, Portal.contacts c, c.title@map m, s.value@map ms
                 where s.contact = c.title and ms = m and e = c.title@elem
                   and <'USdb':'US/agents/title/firm' -> m -> 'Pdb':e>",
            )
            .unwrap();
        let tuples2: Vec<(String, String)> = r2
            .distinct_tuples()
            .into_iter()
            .map(|t| (t[0].to_string(), t[1].to_string()))
            .collect();
        assert_eq!(tuples2, vec![("H522".to_string(), "m2".to_string())]);
    }

    #[test]
    fn example_5_6_stories_origin() {
        // Example 5.6: where do the values of `stories` originate?
        let t = figure1();
        let r = t
            .query("select e from where <db:e -> m -> 'Pdb':'/Portal/estates/estate/stories'>")
            .unwrap();
        let mut elems: Vec<String> = r
            .distinct_tuples()
            .into_iter()
            .map(|t| t[0].to_string())
            .collect();
        elems.sort();
        // The paper: "returns Element type values floors and levels".
        assert_eq!(
            elems,
            vec![
                "EUdb:/EU/postings/levels".to_string(),
                "USdb:/US/houses/floors".to_string()
            ]
        );
    }

    #[test]
    fn example_5_7_double_arrow_includes_aid() {
        // Example 5.7: elements whose values affect the title element.
        let t = figure1();
        let r = t
            .query(
                "select c.title, es
                 from Portal.estates s, Portal.contacts c, c.title@map m
                 where s.contact = c.title and e = c.title@elem
                   and <'USdb':es => m => 'Pdb':e>",
            )
            .unwrap();
        let elems: Vec<String> = r
            .distinct_tuples()
            .into_iter()
            .map(|t| t[1].to_string())
            .collect();
        // aid participates via the join although it populates nothing.
        assert!(elems.contains(&"USdb:/US/houses/aid".to_string()));
        assert!(elems.contains(&"USdb:/US/agents/aid".to_string()));
        // where-provenance elements are included too.
        assert!(elems.contains(&"USdb:/US/agents/title/firm".to_string()));
    }

    #[test]
    fn triples_shape() {
        let t = figure1();
        let single = t.setting().predicate_triples(false);
        let double = t.setting().predicate_triples(true);
        // Each of the three mappings contributes five correspondences.
        assert_eq!(single.len(), 15);
        // The double-arrow set is a superset of the single-arrow set.
        for pt in &single {
            assert!(
                double.contains(pt),
                "single-arrow triple {pt:?} missing from double-arrow set"
            );
        }
    }

    #[test]
    fn from_parts_round_trip() {
        let t = figure1();
        let xml = dtr_xml::writer::instance_to_xml(
            t.target(),
            dtr_xml::writer::WriteOptions::annotated(),
        );
        let target2 =
            dtr_xml::parser::instance_from_xml(&xml, t.setting().target_schema()).unwrap();
        let setting2 = crate::testkit::figure1_setting();
        let sources2 = crate::testkit::figure1_sources();
        let t2 = TaggedInstance::from_parts(setting2, sources2, target2).unwrap();
        let q = "select x.hid, m from Portal.estates x, x.value@map m";
        assert_eq!(
            t.query(q).unwrap().distinct_tuples(),
            t2.query(q).unwrap().distinct_tuples()
        );
    }

    #[test]
    fn naive_and_pushdown_evaluation_agree_on_mxql() {
        use dtr_query::eval::EvalOptions;
        use dtr_query::parser::parse_query;
        let t = figure1();
        for text in [
            "select x.hid, x.value, m from Portal.estates x, x.value@map m",
            "select e from where <db:e -> m -> 'Pdb':'/Portal/estates/stories'>",
            "select c.title, es
             from Portal.estates s, Portal.contacts c, c.title@map m
             where s.contact = c.title and e = c.title@elem
               and <'USdb':es => m => 'Pdb':e>",
        ] {
            let q = parse_query(text).unwrap();
            let fast = t.run(&q).unwrap();
            let naive = t
                .run_with_options(
                    &q,
                    EvalOptions {
                        pushdown: false,
                        hash_join: false,
                        ..Default::default()
                    },
                )
                .unwrap();
            let s = |r: &dtr_query::eval::QueryResult| {
                let mut v: Vec<String> = r.tuples().iter().map(|row| format!("{row:?}")).collect();
                v.sort();
                v
            };
            assert_eq!(s(&fast), s(&naive), "disagreement on {text}");
        }
    }

    #[test]
    fn normalize_query_resolves_documentation_segments() {
        use dtr_query::ast::{Condition, Term};
        use dtr_query::parser::parse_query;
        let setting = crate::testkit::figure1_setting();
        let q = parse_query(
            "select e from where <db:e -> m -> 'Pdb':'/Portal/estates/estate/stories'>",
        )
        .unwrap();
        let n = setting.normalize_query(&q);
        match &n.conditions[0] {
            Condition::MapPred(p) => {
                assert_eq!(
                    p.tgt_elem,
                    Term::Const(AtomicValue::Str("/Portal/estates/stories".into()))
                );
            }
            other => panic!("{other:?}"),
        }
        // Unresolvable constants are left untouched.
        let q2 = parse_query("select e from where <db:e -> m -> 'Pdb':'/Nope/nothing'>").unwrap();
        let n2 = setting.normalize_query(&q2);
        match &n2.conditions[0] {
            Condition::MapPred(p) => {
                assert_eq!(
                    p.tgt_elem,
                    Term::Const(AtomicValue::Str("/Nope/nothing".into()))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn normalize_query_rewrites_elem_comparison_constants() {
        use dtr_query::ast::{Condition, Expr};
        use dtr_query::parser::parse_query;
        let setting = crate::testkit::figure1_setting();
        let q = parse_query(
            "select s.hid from Portal.estates s
             where e = '/Portal/estates/estate/value'
               and <db:e2 -> m -> 'Pdb':e>",
        )
        .unwrap();
        let n = setting.normalize_query(&q);
        let found = n.conditions.iter().any(|c| {
            matches!(c, Condition::Cmp(cmp)
                if matches!(&cmp.right, Expr::Const(AtomicValue::Str(s))
                    if s == "/Portal/estates/value"))
        });
        assert!(found, "{n}");
    }

    #[test]
    fn error_displays_are_informative() {
        let e = MxqlError::Other("boom".into());
        assert_eq!(e.to_string(), "boom");
        let t = figure1();
        let err = t.query("select nope from").unwrap_err();
        assert!(err.to_string().contains("unknown root") || !err.to_string().is_empty());
    }

    #[test]
    fn unknown_mapping_lookup() {
        let t = figure1();
        assert!(t.setting().mapping(&MappingName::new("m9")).is_none());
        assert!(t.setting().triple(&MappingName::new("m1")).is_some());
    }
}
