//! Hand-crafted retraction paths for the incremental exchange engine.
//!
//! `law_incremental` covers randomly generated update streams; these tests
//! pin the nasty deterministic cases by construction: a delete that
//! un-merges a PNF-merged member, a delete under a forced fingerprint
//! collision split, a modify that flips a choice alternative (moving rows
//! between mappings), and a `Budget` tripping mid-batch (abort-or-identical
//! holds for deltas too). Every step is checked byte-identically against a
//! full re-exchange over the mutated sources.

use dtr_check::laws::canon;
use dtr_mapping::delta::SourceDelta;
use dtr_mapping::exchange::{execute_mappings_with, ExchangeOptions};
use dtr_mapping::glav::Mapping;
use dtr_mapping::incremental::IncrementalExchange;
use dtr_model::instance::{Instance, Value};
use dtr_model::schema::Schema;
use dtr_model::types::{AtomicType, Type};
use dtr_obs::guard::Budget;
use dtr_query::eval::Source;
use dtr_query::functions::FunctionRegistry;

// --- Figure 1 fixtures (US + EU real-estate sources into the portal) -----

fn us_schema() -> Schema {
    Schema::build(
        "USdb",
        vec![(
            "US",
            Type::record(vec![
                (
                    "houses",
                    Type::relation(vec![
                        ("hid", AtomicType::String),
                        ("floors", AtomicType::String),
                        ("price", AtomicType::String),
                        ("aid", AtomicType::String),
                    ]),
                ),
                (
                    "agents",
                    Type::set(Type::record(vec![
                        ("aid", Type::string()),
                        (
                            "title",
                            Type::choice(vec![("name", Type::string()), ("firm", Type::string())]),
                        ),
                        ("phone", Type::string()),
                    ])),
                ),
            ]),
        )],
    )
    .unwrap()
}

fn eu_schema() -> Schema {
    Schema::build(
        "EUdb",
        vec![(
            "EU",
            Type::record(vec![(
                "postings",
                Type::set(Type::record(vec![
                    ("hid", Type::string()),
                    ("levels", Type::string()),
                    ("totalVal", Type::string()),
                    (
                        "agents",
                        Type::set(Type::record(vec![
                            ("agentName", Type::string()),
                            ("agentPhone", Type::string()),
                        ])),
                    ),
                ])),
            )]),
        )],
    )
    .unwrap()
}

fn portal_schema() -> Schema {
    Schema::build(
        "Pdb",
        vec![(
            "Portal",
            Type::record(vec![
                (
                    "estates",
                    Type::relation(vec![
                        ("hid", AtomicType::String),
                        ("stories", AtomicType::String),
                        ("value", AtomicType::String),
                        ("contact", AtomicType::String),
                    ]),
                ),
                (
                    "contacts",
                    Type::relation(vec![
                        ("title", AtomicType::String),
                        ("phone", AtomicType::String),
                    ]),
                ),
            ]),
        )],
    )
    .unwrap()
}

fn house(hid: &str, floors: &str, price: &str, aid: &str) -> Value {
    Value::record(vec![
        ("hid", Value::str(hid)),
        ("floors", Value::str(floors)),
        ("price", Value::str(price)),
        ("aid", Value::str(aid)),
    ])
}

fn agent(aid: &str, alt: &str, title: &str, phone: &str) -> Value {
    Value::record(vec![
        ("aid", Value::str(aid)),
        ("title", Value::choice(alt, Value::str(title))),
        ("phone", Value::str(phone)),
    ])
}

fn us_instance() -> Instance {
    let mut inst = Instance::new("USdb");
    inst.install_root(
        "US",
        Value::record(vec![
            (
                "houses",
                Value::set(vec![
                    house("H522", "2", "500K", "a2"),
                    house("H7", "1", "250K", "a1"),
                ]),
            ),
            (
                "agents",
                Value::set(vec![
                    agent("a1", "name", "Smith", "555-1111"),
                    agent("a2", "firm", "HomeGain", "18009468501"),
                ]),
            ),
        ]),
    );
    inst
}

fn eu_instance() -> Instance {
    let mut inst = Instance::new("EUdb");
    inst.install_root(
        "EU",
        Value::record(vec![(
            "postings",
            Value::set(vec![Value::record(vec![
                ("hid", Value::str("H2525")),
                ("levels", Value::str("1")),
                ("totalVal", Value::str("300K")),
                (
                    "agents",
                    Value::set(vec![Value::record(vec![
                        ("agentName", Value::str("HomeGain")),
                        ("agentPhone", Value::str("18009468501")),
                    ])]),
                ),
            ])]),
        )]),
    );
    inst
}

fn figure1_mappings() -> Vec<Mapping> {
    vec![
        Mapping::parse(
            "m1",
            "foreach
               select h.hid, h.floors, h.price, n, a.phone
               from US.houses h, US.agents a, a.title->name n
               where h.aid = a.aid
             exists
               select e.hid, e.stories, e.value, c.title, c.phone
               from Portal.estates e, Portal.contacts c
               where e.contact = c.title",
        )
        .unwrap(),
        Mapping::parse(
            "m2",
            "foreach
               select h.hid, h.floors, h.price, f, a.phone
               from US.houses h, US.agents a, a.title->firm f
               where h.aid = a.aid
             exists
               select e.hid, e.stories, e.value, c.title, c.phone
               from Portal.estates e, Portal.contacts c
               where e.contact = c.title",
        )
        .unwrap(),
        Mapping::parse(
            "m3",
            "foreach
               select p.hid, p.levels, p.totalVal, a.agentName, a.agentPhone
               from EU.postings p, p.agents a
             exists
               select e.hid, e.stories, e.value, c.title, c.phone
               from Portal.estates e, Portal.contacts c
               where e.contact = c.title",
        )
        .unwrap(),
    ]
}

fn engine_with(opts: ExchangeOptions) -> IncrementalExchange {
    let us_s = us_schema();
    let eu_s = eu_schema();
    let mut us_i = us_instance();
    let mut eu_i = eu_instance();
    us_i.annotate_elements(&us_s).unwrap();
    eu_i.annotate_elements(&eu_s).unwrap();
    IncrementalExchange::new(
        vec![us_s, eu_s],
        vec![us_i, eu_i],
        portal_schema(),
        figure1_mappings(),
        FunctionRegistry::with_builtins(),
        opts,
    )
    .unwrap()
}

fn engine() -> IncrementalExchange {
    engine_with(ExchangeOptions::default())
}

/// The incremental target must equal a full re-exchange over the engine's
/// (mutated) sources, canonical rendering with annotations included.
fn assert_matches_full(inc: &IncrementalExchange, ctx: &str) {
    let views: Vec<Source> = inc
        .source_schemas()
        .iter()
        .zip(inc.sources())
        .map(|(schema, instance)| Source { schema, instance })
        .collect();
    let funcs = FunctionRegistry::with_builtins();
    let (full, _) = execute_mappings_with(
        &views,
        inc.target_schema(),
        inc.mappings(),
        &funcs,
        &ExchangeOptions::default(),
    )
    .unwrap();
    assert_eq!(
        canon(inc.target()),
        canon(&full),
        "incremental target diverged from full re-exchange: {ctx}"
    );
}

fn estates_count(inc: &IncrementalExchange) -> usize {
    let t = inc.target();
    let root = t.root("Portal").unwrap();
    let set = t.child_by_label(root, "estates").unwrap();
    t.set_members(set).map_or(0, <[_]>::len)
}

// --- The nasty paths -----------------------------------------------------

/// Inserting an exact duplicate source tuple PNF-merges into the existing
/// target member; deleting one copy must keep the member alive (the class
/// still holds the surviving row), and deleting the last copy must retract
/// it entirely.
#[test]
fn delete_unmerges_a_pnf_merged_member() {
    let mut inc = engine();
    let before = estates_count(&inc);
    let td = inc
        .apply(&SourceDelta::new().insert("US.houses", house("H7", "1", "250K", "a1")))
        .unwrap();
    assert_matches_full(&inc, "after duplicate insert");
    assert_eq!(estates_count(&inc), before, "duplicate merges");
    assert!(td.rows_added > 0);

    // Delete the duplicate (appended last): the merged member survives on
    // the original row.
    inc.apply(&SourceDelta::new().delete("US.houses", 2))
        .unwrap();
    assert_matches_full(&inc, "after deleting one merged copy");
    assert_eq!(estates_count(&inc), before);

    // Delete the original H7 too: now the member is fully retracted.
    let td = inc
        .apply(&SourceDelta::new().delete("US.houses", 1))
        .unwrap();
    assert_matches_full(&inc, "after deleting the last copy");
    assert_eq!(estates_count(&inc), before - 1);
    assert!(!td.retracted.is_empty());
}

/// A constant fingerprint forces every member into one merge-index bucket;
/// merges are structurally confirmed, so the final target is unchanged —
/// and retraction must split only the right member out of the shared
/// bucket.
#[test]
fn delete_under_fingerprint_collision_split() {
    let mut inc = engine();
    inc.set_member_fingerprinter(|_| 42).unwrap();
    assert_matches_full(&inc, "after collision rebase");

    inc.apply(&SourceDelta::new().insert("US.houses", house("H900", "3", "900K", "a2")))
        .unwrap();
    assert_matches_full(&inc, "collision: after insert");

    inc.apply(&SourceDelta::new().delete("US.houses", 0))
        .unwrap();
    assert_matches_full(&inc, "collision: after deleting H522");

    inc.apply(&SourceDelta::new().delete("EU.postings", 0))
        .unwrap();
    assert_matches_full(&inc, "collision: after draining EU");
}

/// Modifying an agent's choice alternative moves its join rows from m1
/// (`title->name`) to m2 (`title->firm`): the old member is retracted under
/// m1's class and re-inserted under m2's, annotations included.
#[test]
fn modify_flips_a_choice_alternative() {
    let mut inc = engine();
    let flipped = agent("a1", "firm", "Smith Realty", "555-1111");
    let td = inc
        .apply(&SourceDelta::new().modify("US.agents", 0, flipped))
        .unwrap();
    assert_matches_full(&inc, "after choice flip");
    assert!(td.rows_removed > 0, "m1 lost its row");
    assert!(td.rows_added > 0, "m2 gained a row");

    // Flip back: the original target must be reproduced exactly.
    let original = agent("a1", "name", "Smith", "555-1111");
    inc.apply(&SourceDelta::new().modify("US.agents", 0, original))
        .unwrap();
    assert_matches_full(&inc, "after flipping back");
}

/// A `Budget` tripping mid-batch must leave the engine exactly as it was
/// before the apply — abort-or-identical holds for deltas — and the engine
/// must stay usable afterwards.
#[test]
fn budget_trip_mid_batch_is_abort_or_identical() {
    let mut inc = engine_with(ExchangeOptions {
        budget: Budget {
            max_rows: Some(8),
            ..Budget::unlimited()
        },
        ..Default::default()
    });
    let target_before = canon(inc.target());
    let sources_before: Vec<String> = inc.sources().iter().map(canon).collect();
    let report_before = format!("{:?}", inc.report().per_mapping);

    // One batch of a dozen fresh houses blows the 8-row cap mid-way.
    let mut big = SourceDelta::new();
    for i in 0..12 {
        big = big.insert("US.houses", house(&format!("HX{i}"), "1", "1K", "a1"));
    }
    let err = inc.apply(&big).unwrap_err();
    assert!(
        err.to_string().contains("budget") || err.to_string().contains("rows"),
        "unexpected error: {err}"
    );
    assert_eq!(canon(inc.target()), target_before, "target rolled back");
    assert_eq!(
        inc.sources().iter().map(canon).collect::<Vec<_>>(),
        sources_before,
        "sources rolled back"
    );
    assert_eq!(
        format!("{:?}", inc.report().per_mapping),
        report_before,
        "report rolled back"
    );

    // A batch that fits still applies and tracks the full re-exchange.
    inc.apply(&SourceDelta::new().insert("US.houses", house("H901", "2", "2K", "a2")))
        .unwrap();
    assert_matches_full(&inc, "after post-abort apply");
}
