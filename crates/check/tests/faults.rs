//! Fault-injection suite: seeds through [`dtr_check::faults::run_case_faults`]
//! plus the committed corpus, which must cover every abort site's tripped
//! path (the corpus comments name the site each seed trips).

use dtr_check::faults::{run_case_faults, FaultSite};
use dtr_check::{repro_command_faults, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The abort contract holds on randomly drawn seeds: guarded runs
    /// abort with a consistent prefix or complete byte-identically, and
    /// lifted/generous budgets reproduce the unguarded result exactly.
    #[test]
    fn abort_contract_holds_on_random_seeds(seed in 0u64..1_000_000_000) {
        let cfg = GenConfig::default();
        if let Err(e) = run_case_faults(seed, &cfg) {
            panic!(
                "seed {seed}: {e}\nreproduce with: {}",
                repro_command_faults(seed)
            );
        }
    }
}

/// Every corpus seed passes fault injection, and together the corpus
/// trips all five abort sites — so each guard rail's abort path (not just
/// its inert path) stays covered forever.
#[test]
fn corpus_covers_every_abort_site() {
    let corpus = include_str!("../corpus/seeds.txt");
    let cfg = GenConfig::default();
    let mut tripped = [false; 5];
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed: u64 = line
            .parse()
            .unwrap_or_else(|_| panic!("corpus line `{line}` is not a seed"));
        let outcome = run_case_faults(seed, &cfg).unwrap_or_else(|e| {
            panic!(
                "corpus seed {seed}: {e}\nreproduce with: {}",
                repro_command_faults(seed)
            )
        });
        if outcome.tripped {
            let i = match outcome.site {
                FaultSite::EvalBindings => 0,
                FaultSite::ExchangeRows => 1,
                FaultSite::Deadline => 2,
                FaultSite::ParallelCancel => 3,
                FaultSite::Translate => 4,
            };
            tripped[i] = true;
        }
    }
    let sites = [
        "eval_bindings",
        "exchange_rows",
        "deadline",
        "parallel_cancel",
        "translate",
    ];
    for (hit, name) in tripped.iter().zip(sites) {
        assert!(
            hit,
            "no corpus seed trips the `{name}` abort site — add one (see corpus comments)"
        );
    }
}
