//! The conformance suite: random seeds through [`dtr_check::run_case`]
//! plus a committed regression corpus.
//!
//! `PROPTEST_CASES` scales the random suite (CI keeps it small; local soak
//! runs go deep). Any failure prints the deterministic repro command.

use dtr_check::{repro_command, run_case, GenConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every law holds on randomly drawn seeds.
    #[test]
    fn conformance_holds_on_random_seeds(seed in 0u64..1_000_000_000) {
        let cfg = GenConfig::default();
        if let Err(e) = run_case(seed, &cfg) {
            panic!("seed {seed}: {e}\nreproduce with: {}", repro_command(seed));
        }
    }
}

/// Seeds that once found a bug (or cover known-tricky shapes) stay green
/// forever. Add the seed from a failing repro command here when fixing a
/// bug the harness caught.
#[test]
fn regression_corpus_stays_green() {
    let corpus = include_str!("../corpus/seeds.txt");
    let cfg = GenConfig::default();
    let mut ran = 0usize;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let seed: u64 = line
            .parse()
            .unwrap_or_else(|_| panic!("corpus line `{line}` is not a seed"));
        run_case(seed, &cfg).unwrap_or_else(|e| {
            panic!(
                "corpus seed {seed}: {e}\nreproduce with: {}",
                repro_command(seed)
            )
        });
        ran += 1;
    }
    assert!(
        ran >= 16,
        "regression corpus unexpectedly small ({ran} seeds)"
    );
}
