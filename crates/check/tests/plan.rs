//! Planner-specific properties, beyond the in-soak `law_plan`:
//!
//! * plan-cache **hits are byte-identical to cold plans** — same compiled
//!   plan object, therefore same rows in the same order, annotations
//!   included;
//! * **join reordering never changes result multiplicity** — plans
//!   compiled against adversarial synthetic statistics (random
//!   per-binding cardinalities drive arbitrary binding permutations)
//!   produce the same row multiset as the legacy evaluator.

use dtr_check::generators::{self, GenConfig};
use dtr_check::oracle;
use dtr_query::eval::canonical_expr;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

fn scenario_and_queries(
    seed: u64,
    queries: usize,
) -> (dtr_core::tagged::TaggedInstance, Vec<dtr_query::ast::Query>) {
    let cfg = GenConfig::default();
    let mut rng = TestRng::from_seed(seed);
    let scen = generators::gen_scenario(&mut rng, &cfg);
    let tagged = scen.tagged().expect("generated scenario exchanges");
    let qs = (0..queries)
        .map(|_| generators::gen_mxql_query(&mut rng, &scen, &cfg))
        .collect();
    (tagged, qs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A plan-cache hit returns the identical result bytes of the cold
    /// plan that populated the cache, and the hit counter moves.
    #[test]
    fn cache_hits_are_byte_identical_to_cold_plans(seed in 0u64..1_000_000_000) {
        let (tagged, qs) = scenario_and_queries(seed, 3);
        for q in qs {
            let text = q.to_string();
            tagged.clear_plan_cache();
            let cold = tagged.run_planned(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: cold plan failed on `{text}`: {e}"));
            let before = tagged.plan_cache_stats();
            let warm = tagged.run_planned(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: warm plan failed on `{text}`: {e}"));
            let after = tagged.plan_cache_stats();
            prop_assert!(after.hits > before.hits, "seed {seed}: no cache hit on `{text}`");
            prop_assert_eq!(after.collisions, before.collisions);
            let bytes = |r: &dtr_query::eval::QueryResult| format!("{:?}|{:?}", r.columns, r.rows);
            prop_assert_eq!(bytes(&cold), bytes(&warm), "seed {seed}: hit differs on `{text}`");
        }
    }

    /// Whatever binding order synthetic statistics push the planner into,
    /// the result multiset (and the legacy evaluator's) is unchanged.
    #[test]
    fn join_reordering_preserves_result_multiplicity(seed in 0u64..1_000_000_000) {
        let (tagged, qs) = scenario_and_queries(seed, 3);
        let mut rng = TestRng::from_seed(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for q in qs {
            let text = q.to_string();
            let legacy = tagged.run(&q)
                .unwrap_or_else(|e| panic!("seed {seed}: legacy run failed on `{text}`: {e}"));
            let expected = oracle::canonical_multiset(&legacy.tuples());
            // Several adversarial catalogs per query: random estimated
            // cardinalities, including the all-equal degenerate case.
            for round in 0..3 {
                let mut synth = dtr_obs::stats::StatsCatalog::new();
                for b in &q.from {
                    let card = if round == 0 { 7 } else { 1 + rng.below(2048) };
                    synth.record_set(&canonical_expr(&b.source, &q), card);
                }
                let plan = tagged.plan_with_stats(&text, &synth)
                    .unwrap_or_else(|e| panic!("seed {seed}: planning failed on `{text}`: {e}"));
                let got = tagged.run_plan(&plan)
                    .unwrap_or_else(|e| panic!("seed {seed}: plan exec failed on `{text}`: {e}"));
                prop_assert_eq!(
                    oracle::canonical_multiset(&got.tuples()),
                    expected.clone(),
                    "seed {seed}: order {:?} changed the multiset of `{text}`",
                    plan.physical.order
                );
            }
        }
    }
}
