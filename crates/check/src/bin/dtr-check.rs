//! Deterministic conformance soak runner.
//!
//! ```text
//! dtr-check [--cases N] [--seed S] [--parallel-exchange] [--nested-loop] [--verbose]
//! ```
//!
//! Runs `N` conformance cases starting at base seed `S`; case `i` uses seed
//! `S + i`, so a failure at seed `s` is reproduced exactly by
//! `dtr-check --cases 1 --seed s` regardless of the original `N`/`S`.
//! `--parallel-exchange` runs every case's primary exchange on worker
//! threads; `--nested-loop` disables the hash-join engine so the soak
//! covers the ablation configuration end to end. Exits non-zero on the
//! first failing case after printing the one-line repro command.

use dtr_check::{repro_command, run_case_with, ExchangeOptions, GenConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cases: u64 = 100;
    let mut seed: u64 = 0;
    let mut verbose = false;
    let mut exchange = ExchangeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cases = n,
                None => return usage("--cases takes a number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed takes a number"),
            },
            "--parallel-exchange" => exchange.parallel = true,
            "--nested-loop" => exchange.eval.hash_join = false,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: dtr-check [--cases N] [--seed S] [--parallel-exchange] \
                     [--nested-loop] [--verbose]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let cfg = GenConfig::default();
    let start = std::time::Instant::now();
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i);
        if let Err(e) = run_case_with(case_seed, &cfg, &exchange) {
            eprintln!("FAIL seed {case_seed} (case {i} of {cases}):");
            eprintln!("  {e}");
            eprintln!("reproduce with:");
            eprintln!("  {}", repro_command(case_seed));
            return ExitCode::FAILURE;
        }
        if verbose {
            println!("ok seed {case_seed}");
        } else if (i + 1) % 100 == 0 {
            println!("... {} / {cases} cases ok", i + 1);
        }
    }
    println!(
        "dtr-check: {cases} cases ok (seeds {seed}..={}) in {:.2?}",
        seed.wrapping_add(cases.saturating_sub(1)),
        start.elapsed()
    );
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("dtr-check: {msg}");
    eprintln!(
        "usage: dtr-check [--cases N] [--seed S] [--parallel-exchange] [--nested-loop] [--verbose]"
    );
    ExitCode::FAILURE
}
