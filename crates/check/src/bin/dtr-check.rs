//! Deterministic conformance soak runner.
//!
//! ```text
//! dtr-check [--cases N] [--seed S] [--parallel-exchange] [--nested-loop]
//!           [--faults] [--deadline-ms MS] [--max-rows N] [--verbose]
//! ```
//!
//! Runs `N` conformance cases starting at base seed `S`; case `i` uses seed
//! `S + i`, so a failure at seed `s` is reproduced exactly by
//! `dtr-check --cases 1 --seed s` regardless of the original `N`/`S`.
//! `--parallel-exchange` runs every case's primary exchange on worker
//! threads; `--nested-loop` disables the hash-join engine so the soak
//! covers the ablation configuration end to end. `--deadline-ms` and
//! `--max-rows` run the whole law suite under a resource budget (a
//! generous one proves the guard rails are inert on healthy workloads).
//! `--faults` switches to the fault-injection soak: each case derives a
//! guard-rail fault from its seed and asserts the abort contract
//! (consistent prefix, exact replay once lifted — see `dtr_check::faults`).
//! `--storage-faults` switches to the crash-recovery soak: each case
//! commits a seeded update stream through the durable session and asserts
//! that recovery from every injected crash point (torn write, bit flip,
//! mid-checkpoint rotation, exhausted fsync retries, between WAL commit
//! and epoch publish) converges to one of the two adjacent epochs.
//! Exits non-zero on the first failing case after printing the one-line
//! repro command.

use dtr_check::faults::{run_case_faults, FaultSite};
use dtr_check::{
    repro_command, repro_command_faults, repro_command_storage_faults, run_case_storage_faults,
    run_case_with, ExchangeOptions, GenConfig,
};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut cases: u64 = 100;
    let mut seed: u64 = 0;
    let mut verbose = false;
    let mut faults = false;
    let mut storage_faults = false;
    let mut exchange = ExchangeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => cases = n,
                None => return usage("--cases takes a number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed takes a number"),
            },
            "--parallel-exchange" => exchange.parallel = true,
            "--nested-loop" => exchange.eval.hash_join = false,
            "--faults" => faults = true,
            "--storage-faults" => storage_faults = true,
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => exchange.budget.deadline = Some(Duration::from_millis(ms)),
                None => return usage("--deadline-ms takes a number"),
            },
            "--max-rows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => exchange.budget.max_rows = Some(n),
                None => return usage("--max-rows takes a number"),
            },
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let cfg = GenConfig::default();
    let start = std::time::Instant::now();
    let mut tripped = 0u64;
    let mut site_trips = [0u64; 5];
    for i in 0..cases {
        let case_seed = seed.wrapping_add(i);
        let result = if storage_faults {
            run_case_storage_faults(case_seed, &cfg).map(|()| {
                if verbose {
                    println!("ok seed {case_seed} (recovery)");
                }
            })
        } else if faults {
            run_case_faults(case_seed, &cfg).map(|outcome| {
                if outcome.tripped {
                    tripped += 1;
                    site_trips[site_index(outcome.site)] += 1;
                }
                if verbose {
                    println!(
                        "ok seed {case_seed} site {} {}",
                        outcome.site.name(),
                        if outcome.tripped { "tripped" } else { "inert" }
                    );
                }
            })
        } else {
            run_case_with(case_seed, &cfg, &exchange).map(|()| {
                if verbose {
                    println!("ok seed {case_seed}");
                }
            })
        };
        if let Err(e) = result {
            eprintln!("FAIL seed {case_seed} (case {i} of {cases}):");
            eprintln!("  {e}");
            eprintln!("reproduce with:");
            let repro = if storage_faults {
                repro_command_storage_faults(case_seed)
            } else if faults {
                repro_command_faults(case_seed)
            } else {
                repro_command(case_seed)
            };
            eprintln!("  {repro}");
            return ExitCode::FAILURE;
        }
        if !verbose && (i + 1) % 100 == 0 {
            println!("... {} / {cases} cases ok", i + 1);
        }
    }
    if storage_faults {
        println!(
            "dtr-check --storage-faults: {cases} cases ok (seeds {seed}..={}) in {:.2?}; \
             recovery converged at every injected crash point",
            seed.wrapping_add(cases.saturating_sub(1)),
            start.elapsed(),
        );
    } else if faults {
        println!(
            "dtr-check --faults: {cases} cases ok (seeds {seed}..={}) in {:.2?}; \
             {tripped} tripped a guard \
             (eval {}, rows {}, deadline {}, cancel {}, translate {})",
            seed.wrapping_add(cases.saturating_sub(1)),
            start.elapsed(),
            site_trips[0],
            site_trips[1],
            site_trips[2],
            site_trips[3],
            site_trips[4],
        );
    } else {
        println!(
            "dtr-check: {cases} cases ok (seeds {seed}..={}) in {:.2?}",
            seed.wrapping_add(cases.saturating_sub(1)),
            start.elapsed()
        );
    }
    ExitCode::SUCCESS
}

fn site_index(site: FaultSite) -> usize {
    match site {
        FaultSite::EvalBindings => 0,
        FaultSite::ExchangeRows => 1,
        FaultSite::Deadline => 2,
        FaultSite::ParallelCancel => 3,
        FaultSite::Translate => 4,
    }
}

const USAGE: &str = "dtr-check [--cases N] [--seed S] [--parallel-exchange] [--nested-loop] \
                     [--faults] [--storage-faults] [--deadline-ms MS] [--max-rows N] [--verbose]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("dtr-check: {msg}");
    eprintln!("usage: {USAGE}");
    ExitCode::FAILURE
}
