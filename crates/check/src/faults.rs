//! Fault injection: drive the pipeline into its guard rails at
//! seed-derived points and assert the abort contract.
//!
//! A [`FaultPlan`] is derived deterministically from the case seed: it
//! picks one abort *site* (the eval binding loop, the exchange insert
//! stage, the wall-clock deadline, a parallel worker cancelled through the
//! journal trip hook, or the §7.3 translator/metastore path) and a trip
//! point scaled to the unguarded run's own progress counters, so roughly
//! half the cases actually trip and the other half prove the guard is
//! inert when not exhausted.
//!
//! The laws asserted for every case:
//!
//! 1. **Abort or complete, never corrupt.** A guarded run either completes
//!    with output byte-identical to the unguarded reference, or returns a
//!    structured guard error. Any other error fails the case.
//! 2. **Consistent prefix.** An aborted exchange leaves a PNF-valid target
//!    holding exactly the completed mappings: byte-identical to an
//!    unguarded exchange of that mapping prefix (empty prefix ⇒ empty
//!    target), with every completed mapping satisfied.
//! 3. **Lifted budget ⇒ exact replay.** Re-running with the budget lifted
//!    after an abort reproduces the unguarded reference byte-for-byte.
//! 4. **Generous budget ⇒ inert.** A budget far above the workload (1 h
//!    deadline, huge row/binding/byte caps) changes nothing, byte-for-byte.

use crate::generators::{self, GenConfig, Scenario};
use crate::laws::canon;
use dtr_core::runner::MetaRunner;
use dtr_mapping::exchange::{Exchange, ExchangeError, ExchangeOptions, ExchangeReport};
use dtr_mapping::satisfy::is_satisfied;
use dtr_model::instance::Instance;
use dtr_model::pnf::is_pnf;
use dtr_model::schema::Schema;
use dtr_obs::guard::{Budget, GuardError};
use dtr_query::eval::Source;
use dtr_query::functions::FunctionRegistry;
use dtr_xml::writer::{instance_to_xml, WriteOptions};
use proptest::test_runner::TestRng;
use std::time::Duration;

/// Which guard rail a fault case aims at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// `max_bindings` in the foreach binding-enumeration loop.
    EvalBindings,
    /// `max_rows` in the exchange insert stage (mid-mapping rollback).
    ExchangeRows,
    /// A zero wall-clock deadline (trips before any insert).
    Deadline,
    /// Cooperative cancellation raised at the Nth journaled event while
    /// the exchange runs on parallel workers.
    ParallelCancel,
    /// The §7.3 path: metastore encoding and translated execution.
    Translate,
}

impl FaultSite {
    /// Stable name for reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultSite::EvalBindings => "eval_bindings",
            FaultSite::ExchangeRows => "exchange_rows",
            FaultSite::Deadline => "deadline",
            FaultSite::ParallelCancel => "parallel_cancel",
            FaultSite::Translate => "translate",
        }
    }
}

/// The deterministic fault a seed injects: a site plus a raw trip value
/// that each site scales to its own progress range.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// The guard rail under test.
    pub site: FaultSite,
    /// Seed-derived entropy for the trip point (site-scaled).
    pub mix: u64,
}

/// Derives the fault plan for a seed. Pure: the same seed always plans the
/// same fault, so every failure reproduces with `--faults --seed <s>`.
pub fn plan_for(seed: u64) -> FaultPlan {
    let site = match seed % 5 {
        0 => FaultSite::EvalBindings,
        1 => FaultSite::ExchangeRows,
        2 => FaultSite::Deadline,
        3 => FaultSite::ParallelCancel,
        _ => FaultSite::Translate,
    };
    // SplitMix-style scramble decorrelates the trip point from the low
    // bits that picked the site.
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    FaultPlan {
        site,
        mix: z ^ (z >> 31),
    }
}

/// What a fault case did — reported by the soak binary.
#[derive(Clone, Copy, Debug)]
pub struct FaultOutcome {
    /// The site the plan aimed at.
    pub site: FaultSite,
    /// Whether the injected fault actually tripped a guard (cases whose
    /// trip point lands beyond the run's progress complete normally and
    /// double as inertness checks).
    pub tripped: bool,
}

/// Fault cases mutate process-global journal state (the enabled flag, the
/// armed trip, the event counter), so concurrent cases — e.g. `cargo
/// test`'s parallel test threads — must not overlap.
static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Restores global journal state (enabled flag, armed trip) on all exit
/// paths of a fault case.
struct JournalRestore {
    was_enabled: bool,
}

impl Drop for JournalRestore {
    fn drop(&mut self) {
        dtr_obs::journal::disarm_trip();
        dtr_obs::journal::set_enabled(self.was_enabled);
    }
}

/// A budget no generated scenario can exhaust (law 4's "generous" bound).
fn generous_budget() -> Budget {
    Budget {
        max_bindings: Some(u64::MAX / 2),
        max_rows: Some(u64::MAX / 2),
        max_result_bytes: Some(u64::MAX / 2),
        deadline: Some(Duration::from_secs(3600)),
        ..Budget::default()
    }
}

/// Element-annotated copies of the scenario's sources (what
/// `TaggedInstance::exchange` does before running the engine).
fn annotated_sources(scen: &Scenario) -> Result<Vec<(Schema, Instance)>, String> {
    scen.sources
        .iter()
        .map(|(s, i)| {
            let mut inst = i.clone();
            inst.annotate_elements(s)
                .map_err(|e| format!("source annotation failed: {e}"))?;
            Ok((s.clone(), inst))
        })
        .collect()
}

/// What a guarded engine run produced: the (possibly prefix) instance and
/// report, plus the guard error and completed-mapping count if it aborted.
type EngineRun = (Instance, ExchangeReport, Option<(GuardError, usize)>);

/// Runs the exchange engine, separating a guard abort (returned as data,
/// with the consistent-prefix instance still produced by `finish`) from
/// any other error (a failed case).
fn run_engine(
    sources: &[(Schema, Instance)],
    target: &Schema,
    mappings: &[dtr_mapping::glav::Mapping],
    functions: &FunctionRegistry,
    opts: &ExchangeOptions,
) -> Result<EngineRun, String> {
    let srcs: Vec<Source<'_>> = sources
        .iter()
        .map(|(schema, instance)| Source { schema, instance })
        .collect();
    let mut engine = Exchange::new(srcs, target, functions);
    let abort = match engine.run_mappings(mappings, opts) {
        Ok(()) => None,
        Err(ExchangeError::Guard {
            error,
            mappings_completed,
        }) => Some((error, mappings_completed)),
        Err(other) => {
            return Err(format!(
                "guarded exchange failed with a non-guard error: {other}"
            ))
        }
    };
    let (inst, report) = engine
        .finish()
        .map_err(|e| format!("finish after guard abort failed: {e}"))?;
    Ok((inst, report, abort))
}

/// Canonical byte rendering for "bit-for-bit" comparisons: the annotated
/// XML serialization (deterministic node order, annotations included).
fn bytes_of(inst: &Instance) -> String {
    instance_to_xml(inst, WriteOptions::annotated())
}

/// Laws 2: the aborted target is PNF-valid and byte-identical to an
/// unguarded exchange of exactly the completed mapping prefix, and every
/// completed mapping is satisfied.
fn check_prefix(
    inst: &Instance,
    completed: usize,
    sources: &[(Schema, Instance)],
    scen: &Scenario,
    functions: &FunctionRegistry,
) -> Result<(), String> {
    if !is_pnf(inst) {
        return Err(format!(
            "aborted target (after {completed} mappings) is not in PNF"
        ));
    }
    let prefix = &scen.mappings[..completed];
    let (expected, _, abort) = run_engine(
        sources,
        &scen.target,
        prefix,
        functions,
        &ExchangeOptions::default(),
    )?;
    if abort.is_some() {
        return Err("unguarded prefix exchange tripped a guard".into());
    }
    if bytes_of(inst) != bytes_of(&expected) {
        return Err(format!(
            "aborted target is not the consistent prefix of {completed} mapping(s)\n\
             aborted: {}\nexpected: {}",
            canon(inst),
            canon(&expected)
        ));
    }
    let srcs: Vec<Source<'_>> = sources
        .iter()
        .map(|(schema, instance)| Source { schema, instance })
        .collect();
    for m in prefix {
        let target = Source {
            schema: &scen.target,
            instance: inst,
        };
        let sat = is_satisfied(m, &srcs, target, functions)
            .map_err(|e| format!("satisfaction check failed on aborted prefix: {e}"))?;
        if !sat {
            return Err(format!(
                "completed mapping `{}` is not satisfied by the aborted prefix",
                m.name
            ));
        }
    }
    Ok(())
}

/// One fault-injection case: generate the scenario for `seed`, inject the
/// planned fault, and assert the four abort-contract laws. Returns what
/// happened so the soak can report trip coverage.
pub fn run_case_faults(seed: u64, cfg: &GenConfig) -> Result<FaultOutcome, String> {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let plan = plan_for(seed);
    let mut rng = TestRng::from_seed(seed);
    let scen = generators::gen_scenario(&mut rng, cfg);
    let functions = FunctionRegistry::with_builtins();
    let sources = annotated_sources(&scen)?;

    // The journal is on for every fault case: the parallel-cancel site
    // needs its event counter, and running the other sites under capture
    // doubles as a journaling-interference check.
    let _restore = JournalRestore {
        was_enabled: dtr_obs::journal::enabled(),
    };
    dtr_obs::journal::set_enabled(true);
    dtr_obs::journal::reset();

    // Unguarded reference (laws 1/3/4 compare against this, byte-for-byte).
    let (ref_inst, ref_report, abort) = run_engine(
        &sources,
        &scen.target,
        &scen.mappings,
        &functions,
        &ExchangeOptions::default(),
    )?;
    if abort.is_some() {
        return Err("unguarded reference exchange tripped a guard".into());
    }
    let ref_bytes = bytes_of(&ref_inst);
    let ref_events = dtr_obs::journal::next_event_id();

    if plan.site == FaultSite::Translate {
        let tripped = check_translate_site(&scen, plan.mix)?;
        return Ok(FaultOutcome {
            site: plan.site,
            tripped,
        });
    }

    // Scale the trip point to the reference run's own progress so the
    // fault fires inside the run for roughly half the seeds (+2 keeps the
    // modulus nonzero and draws the beyond-the-end inert case too).
    let total_rows: u64 = ref_report.per_mapping.iter().map(|s| s.tuples as u64).sum();
    let max_bindings: u64 = ref_report
        .per_mapping
        .iter()
        .map(|s| s.bindings as u64)
        .max()
        .unwrap_or(0);
    let mut opts = ExchangeOptions::default();
    match plan.site {
        FaultSite::EvalBindings => {
            opts.budget.max_bindings = Some(plan.mix % (max_bindings + 2));
        }
        FaultSite::ExchangeRows => {
            opts.budget.max_rows = Some(plan.mix % (total_rows + 2));
        }
        FaultSite::Deadline => {
            opts.budget.deadline = Some(Duration::ZERO);
        }
        FaultSite::ParallelCancel => {
            opts.parallel = true;
            opts.workers = 2;
            if plan.mix % 2 == 1 {
                // Pre-set cancellation: every meter checks the flag on its
                // first poll, so any worker's first eval poll (or the
                // insert stage's first row charge) observes it — the abort
                // is deterministic on any scenario that does work.
                opts.budget.request_cancel();
            } else {
                // Mid-run cancellation raised by the journal trip hook at a
                // seed-derived event. Whether a meter re-polls after the
                // flag rises depends on poll strides and worker scheduling,
                // so this arm may legitimately complete — the laws below
                // accept either outcome.
                dtr_obs::journal::reset();
                dtr_obs::journal::arm_trip(
                    plan.mix % (ref_events + 2),
                    std::sync::Arc::clone(&opts.budget.cancel),
                );
            }
        }
        FaultSite::Translate => unreachable!("handled above"),
    }

    // Law 1: abort or byte-identical completion, never anything else.
    let (inst, _, abort) = run_engine(&sources, &scen.target, &scen.mappings, &functions, &opts)?;
    dtr_obs::journal::disarm_trip();
    let tripped = match abort {
        Some((guard, completed)) => {
            if plan.site == FaultSite::Deadline && completed != 0 {
                return Err(format!(
                    "a zero deadline completed {completed} mapping(s) before aborting"
                ));
            }
            check_prefix(&inst, completed, &sources, &scen, &functions)?;
            // The structured error names a real resource and stage.
            if guard.stage.is_empty() || guard.resource.name().is_empty() {
                return Err(format!("guard error lacks stage/resource: {guard}"));
            }
            true
        }
        None => {
            if bytes_of(&inst) != ref_bytes {
                return Err(format!(
                    "un-tripped guarded run diverged from the unguarded reference \
                     (site {})",
                    plan.site.name()
                ));
            }
            false
        }
    };

    // Law 3: lifting the budget reproduces the reference exactly.
    let (again, _, abort) = run_engine(
        &sources,
        &scen.target,
        &scen.mappings,
        &functions,
        &ExchangeOptions::default(),
    )?;
    if abort.is_some() {
        return Err("budget-lifted rerun tripped a guard".into());
    }
    if bytes_of(&again) != ref_bytes {
        return Err("budget-lifted rerun does not reproduce the unguarded result".into());
    }

    // Law 4: a generous budget is inert, byte-for-byte.
    let generous = ExchangeOptions {
        budget: generous_budget(),
        ..ExchangeOptions::default()
    };
    let (inert, _, abort) = run_engine(
        &sources,
        &scen.target,
        &scen.mappings,
        &functions,
        &generous,
    )?;
    if abort.is_some() {
        return Err("generous budget tripped a guard".into());
    }
    if bytes_of(&inert) != ref_bytes {
        return Err("generous budget changed the exchange output".into());
    }

    Ok(FaultOutcome {
        site: plan.site,
        tripped,
    })
}

/// The translator/metastore site: budget the §7.1 encoding and the §7.3
/// translated execution of a generated MXQL query, asserting the same
/// abort-or-identical contract against the unbudgeted runner.
fn check_translate_site(scen: &Scenario, mix: u64) -> Result<bool, String> {
    let tagged = scen
        .tagged()
        .map_err(|e| format!("exchange failed building the tagged instance: {e}"))?;
    let runner =
        MetaRunner::new(tagged.setting()).map_err(|e| format!("metastore build failed: {e}"))?;
    let mut rng = TestRng::from_seed(mix);
    let cfg = GenConfig::default();
    let q = generators::gen_mxql_query(&mut rng, scen, &cfg);
    let reference = runner
        .run(&tagged, &q)
        .map_err(|e| format!("unbudgeted translated run failed on `{q}`: {e}"))?;
    let mut ref_rows: Vec<String> = reference
        .tuples()
        .iter()
        .map(|t| {
            t.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\u{1}")
        })
        .collect();
    ref_rows.sort();

    // Budget the metastore encoding: `max_rows` scaled to the store size.
    let store = runner.store();
    let store_rows = (store.elements.len()
        + store.bindings.len()
        + store.conditions.len()
        + store.correspondences.len()) as u64;
    let build_budget = Budget {
        max_rows: Some(mix % (store_rows + 2)),
        ..Budget::default()
    };
    let mut tripped = false;
    match MetaRunner::new_budgeted(tagged.setting(), &build_budget) {
        Ok(_) => {}
        Err(e) => match e.guard() {
            Some(_) => tripped = true,
            None => {
                return Err(format!(
                    "budgeted metastore build failed non-structurally: {e}"
                ))
            }
        },
    }

    // Budget the translated execution: `max_rows` scaled to the result.
    let run_budget = Budget {
        max_rows: Some(mix % (ref_rows.len() as u64 + 2)),
        ..Budget::default()
    };
    match runner.run_budgeted(&tagged, &q, &run_budget) {
        Ok(r) => {
            let mut rows: Vec<String> = r
                .tuples()
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join("\u{1}")
                })
                .collect();
            rows.sort();
            if rows != ref_rows {
                return Err(format!(
                    "un-tripped budgeted translated run diverged on `{q}`"
                ));
            }
        }
        Err(e) => match e.guard() {
            Some(_) => tripped = true,
            None => {
                return Err(format!(
                    "budgeted translated run failed non-structurally on `{q}`: {e}"
                ))
            }
        },
    }

    // Lifted + generous budgets reproduce the reference rows exactly.
    for budget in [Budget::unlimited(), generous_budget()] {
        let r = runner
            .run_budgeted(&tagged, &q, &budget)
            .map_err(|e| format!("lifted/generous translated rerun failed on `{q}`: {e}"))?;
        let mut rows: Vec<String> = r
            .tuples()
            .iter()
            .map(|t| {
                t.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\u{1}")
            })
            .collect();
        rows.sort();
        if rows != ref_rows {
            return Err(format!(
                "lifted/generous translated rerun diverged on `{q}`"
            ));
        }
    }
    Ok(tripped)
}
