//! A naive reference oracle for query evaluation.
//!
//! This is a deliberately simple, obviously-correct evaluator used for
//! differential testing against `dtr_query::eval::Evaluator`. It shares the
//! *data model* (`dtr-model`) and the evaluator's public `Catalog`/`Source`/
//! `MetaEnv` input types, but none of the evaluator's machinery: no
//! predicate pushdown, no statistics, no short-circuiting, no streaming.
//! It materialises the entire cross product of the from-clause, extends it
//! through mapping predicates one triple at a time, filters every
//! comparison at the very end, and projects.
//!
//! Unsupported constructs (function calls, `order by`, `limit`) return an
//! error rather than a guess, which keeps the oracle honest: a differential
//! test can only pass on queries the oracle actually understands.

use dtr_model::instance::{Instance, NodeId};
use dtr_model::schema::Schema;
use dtr_model::value::{canonical_path, AtomicValue, ElementRef};
use dtr_query::ast::{Condition, Expr, PathStart, Query, Step, Term};
use dtr_query::eval::{Catalog, MetaEnv, PredTriple};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A variable's value during oracle evaluation: an instance node or a bare
/// atomic (meta) value.
#[derive(Clone, Debug)]
enum OVal {
    Node(usize, NodeId),
    Atom(AtomicValue),
}

type Env = HashMap<String, OVal>;

/// Evaluates `q` over `catalog` with the naive nested-loop semantics and
/// returns the bag of result rows (in enumeration order, which differs from
/// the engine's — compare as multisets). `meta` supplies mapping-predicate
/// triples; queries with mapping predicates fail without one.
pub fn eval(
    catalog: &Catalog,
    q: &Query,
    meta: Option<&dyn MetaEnv>,
) -> Result<Vec<Vec<AtomicValue>>, String> {
    if !q.order_by.is_empty() || q.limit.is_some() {
        return Err("oracle does not implement order by / limit".into());
    }

    // 1. Cross product of all from-bindings, in declaration order.
    let mut envs: Vec<Env> = vec![Env::new()];
    for b in &q.from {
        let mut next = Vec::new();
        for env in &envs {
            for item in binding_items(catalog, &b.source, env)? {
                let mut e2 = env.clone();
                e2.insert(b.var.clone(), item);
                next.push(e2);
            }
        }
        envs = next;
    }

    // 2. Mapping predicates, one at a time, each a generator over the full
    //    triple list.
    for c in &q.conditions {
        let Condition::MapPred(p) = c else { continue };
        let meta = meta.ok_or("oracle: mapping predicate but no meta environment")?;
        let triples = meta.triples(p.double);
        let mut next = Vec::new();
        for env in &envs {
            for t in &triples {
                if let Some(e2) = unify(p, t, env) {
                    next.push(e2);
                }
            }
        }
        envs = next;
    }

    // 3. Every comparison, applied only now, over the fully-bound rows.
    for c in &q.conditions {
        let Condition::Cmp(cmp) = c else { continue };
        let mut kept = Vec::new();
        for env in envs {
            let l = atomic_of(catalog, &cmp.left, &env)?;
            let r = atomic_of(catalog, &cmp.right, &env)?;
            let holds = match (l, r) {
                (Some(a), Some(b)) => match naive_compare(&a, &b) {
                    Some(ord) => cmp.op.test(ord),
                    None => match cmp.op {
                        dtr_query::ast::CmpOp::Eq => false,
                        dtr_query::ast::CmpOp::Ne => true,
                        _ => {
                            return Err(format!(
                                "oracle: incomparable values {a} and {b} under ordering"
                            ))
                        }
                    },
                },
                _ => false,
            };
            if holds {
                kept.push(env);
            }
        }
        envs = kept;
    }

    // 4. Projection; rows with any missing select value are dropped.
    let mut rows = Vec::new();
    'row: for env in &envs {
        let mut row = Vec::with_capacity(q.select.len());
        for e in &q.select {
            match atomic_of(catalog, e, env)? {
                Some(v) => row.push(v),
                None => continue 'row,
            }
        }
        rows.push(row);
    }
    Ok(rows)
}

/// The items a from-binding enumerates under an environment.
fn binding_items(catalog: &Catalog, source: &Expr, env: &Env) -> Result<Vec<OVal>, String> {
    match source {
        Expr::Path(p) => {
            let Some(v) = walk_path(catalog, p, env)? else {
                return Ok(Vec::new());
            };
            match v {
                OVal::Node(src, node) => {
                    let inst = catalog.source(src).instance;
                    if let Some(members) = inst.set_members(node) {
                        Ok(members.iter().map(|&m| OVal::Node(src, m)).collect())
                    } else if matches!(p.steps.last(), Some(Step::Choice(_))) {
                        // Choice selection: the single chosen value.
                        Ok(vec![OVal::Node(src, node)])
                    } else {
                        Err(format!("oracle: binding over non-set path {p}"))
                    }
                }
                OVal::Atom(_) => Err(format!("oracle: binding over atomic path {p}")),
            }
        }
        Expr::MapOf(p) => {
            let Some(v) = walk_path(catalog, p, env)? else {
                return Ok(Vec::new());
            };
            let OVal::Node(src, node) = v else {
                return Err("oracle: @map over a non-node value".into());
            };
            let inst = catalog.source(src).instance;
            Ok(inst
                .annotation(node)
                .mappings
                .iter()
                .map(|m| OVal::Atom(AtomicValue::Map(m.clone())))
                .collect())
        }
        other => Err(format!("oracle: unsupported binding source {other}")),
    }
}

/// Walks a path to a node or atom. `Ok(None)` means a step filtered the
/// value out (missing record field, mismatched choice selection).
fn walk_path(
    catalog: &Catalog,
    p: &dtr_query::ast::PathExpr,
    env: &Env,
) -> Result<Option<OVal>, String> {
    let mut cur = match &p.start {
        PathStart::Root(r) => {
            let (src, node) = catalog
                .find_root(r.as_str())
                .ok_or_else(|| format!("oracle: unknown root {r}"))?;
            OVal::Node(src, node)
        }
        PathStart::Var(v) => env
            .get(v.as_str())
            .cloned()
            .ok_or_else(|| format!("oracle: unbound variable {v}"))?,
    };
    for step in &p.steps {
        let OVal::Node(src, node) = cur else {
            return Err(format!("oracle: step on atomic value in {p}"));
        };
        let inst = catalog.source(src).instance;
        match step {
            Step::Project(l) => match inst.child_by_label(node, l.as_str()) {
                Some(c) => cur = OVal::Node(src, c),
                None => return Ok(None),
            },
            Step::Choice(l) => match inst.choice_selection(node) {
                Some((label, sel)) if label.as_str() == l.as_str() => cur = OVal::Node(src, sel),
                _ => return Ok(None),
            },
        }
    }
    Ok(Some(cur))
}

/// The atomic value of a select/comparison expression, if any.
fn atomic_of(catalog: &Catalog, e: &Expr, env: &Env) -> Result<Option<AtomicValue>, String> {
    match e {
        Expr::Const(v) => Ok(Some(v.clone())),
        Expr::Path(p) => match walk_path(catalog, p, env)? {
            None => Ok(None),
            Some(OVal::Atom(v)) => Ok(Some(v)),
            Some(OVal::Node(src, node)) => {
                let inst = catalog.source(src).instance;
                match inst.atomic(node) {
                    Some(v) => Ok(Some(v.clone())),
                    None => Err(format!("oracle: non-atomic value at {p}")),
                }
            }
        },
        Expr::ElemOf(p) => match walk_path(catalog, p, env)? {
            None => Ok(None),
            Some(OVal::Atom(_)) => Err("oracle: @elem of a non-node value".into()),
            Some(OVal::Node(src, node)) => {
                let source = catalog.source(src);
                match source.instance.annotation(node).element {
                    Some(eid) => Ok(Some(AtomicValue::Elem(ElementRef::new(
                        source.instance.db(),
                        source.schema.path(eid),
                    )))),
                    None => Err("oracle: missing element annotation for @elem".into()),
                }
            }
        },
        other => Err(format!("oracle: unsupported expression {other}")),
    }
}

/// Extends `env` with the predicate's variable slots for one triple, or
/// rejects the triple. Mirrors the engine's semantics independently: a
/// constant slot must (coercively) equal the triple's value; a previously
/// bound atom must match; a node-bound variable never matches a meta slot.
fn unify(p: &dtr_query::ast::MappingPred, t: &PredTriple, env: &Env) -> Option<Env> {
    let mut env = env.clone();
    let slots: [(&Term, AtomicValue); 5] = [
        (&p.src_db, AtomicValue::Db(t.src.db.clone())),
        (&p.src_elem, AtomicValue::Elem(t.src.clone())),
        (&p.mapping, AtomicValue::Map(t.mapping.clone())),
        (&p.tgt_db, AtomicValue::Db(t.tgt.db.clone())),
        (&p.tgt_elem, AtomicValue::Elem(t.tgt.clone())),
    ];
    for (term, actual) in slots {
        match term {
            Term::Const(c) => {
                if naive_compare(c, &actual) != Some(Ordering::Equal) {
                    return None;
                }
            }
            Term::Var(v) => match env.get(v.as_str()) {
                Some(OVal::Atom(prev)) => {
                    if naive_compare(prev, &actual) != Some(Ordering::Equal) {
                        return None;
                    }
                }
                Some(OVal::Node(..)) => return None,
                None => {
                    env.insert(v.clone(), OVal::Atom(actual));
                }
            },
        }
    }
    Some(env)
}

/// The oracle's own value comparison: native model comparison plus the
/// string↔meta coercions of Section 5 (a plain string can name a database,
/// a mapping, or — via path canonicalisation — a schema element).
pub fn naive_compare(a: &AtomicValue, b: &AtomicValue) -> Option<Ordering> {
    if let Some(ord) = a.compare(b) {
        return Some(ord);
    }
    str_meta(a, b).or_else(|| str_meta(b, a).map(Ordering::reverse))
}

fn str_meta(s: &AtomicValue, m: &AtomicValue) -> Option<Ordering> {
    let AtomicValue::Str(text) = s else {
        return None;
    };
    match m {
        AtomicValue::Db(d) => Some(text.as_str().cmp(d.as_str())),
        AtomicValue::Map(name) => Some(text.as_str().cmp(name.as_str())),
        AtomicValue::Elem(e) => Some(canonical_path(text).as_str().cmp(e.path.as_str())),
        _ => None,
    }
}

/// Renders oracle rows into a canonical sorted multiset of strings, the
/// common currency of the differential laws.
pub fn canonical_multiset(rows: &[Vec<AtomicValue>]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| v.display_quoted())
                .collect::<Vec<_>>()
                .join(" | ")
        })
        .collect();
    out.sort();
    out
}

/// Convenience: a [`Catalog`] over `(schema, instance)` pairs.
pub fn catalog_of<'a>(pairs: &'a [(Schema, Instance)]) -> Catalog<'a> {
    Catalog::new(
        pairs
            .iter()
            .map(|(schema, instance)| dtr_query::eval::Source { schema, instance })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::instance::Value;
    use dtr_model::types::Type;
    use dtr_query::parser::parse_query;

    fn sample() -> (Schema, Instance) {
        let schema = Schema::build(
            "S",
            vec![(
                "R",
                Type::relation(vec![
                    ("a", dtr_model::types::AtomicType::String),
                    ("b", dtr_model::types::AtomicType::Integer),
                ]),
            )],
        )
        .unwrap();
        let mut inst = Instance::new("S");
        inst.install_root(
            "R",
            Value::set(vec![
                Value::record(vec![("a", Value::str("x")), ("b", Value::int(1))]),
                Value::record(vec![("a", Value::str("y")), ("b", Value::int(2))]),
                Value::record(vec![("a", Value::str("x")), ("b", Value::int(3))]),
            ]),
        );
        inst.annotate_elements(&schema).unwrap();
        (schema, inst)
    }

    #[test]
    fn filters_and_projects() {
        let (schema, inst) = sample();
        let pairs = vec![(schema, inst)];
        let catalog = catalog_of(&pairs);
        let q = parse_query("select r.b from R r where r.a = 'x'").unwrap();
        let rows = eval(&catalog, &q, None).unwrap();
        assert_eq!(
            canonical_multiset(&rows),
            vec!["1".to_string(), "3".to_string()]
        );
    }

    #[test]
    fn rejects_order_by() {
        let (schema, inst) = sample();
        let pairs = vec![(schema, inst)];
        let catalog = catalog_of(&pairs);
        let q = parse_query("select r.b from R r order by r.b").unwrap();
        assert!(eval(&catalog, &q, None).is_err());
    }
}
