//! Random generators for nested schemas, conforming instances, well-formed
//! queries and GLAV mappings.
//!
//! Everything is driven by the deterministic [`TestRng`], so a single `u64`
//! seed reproduces a whole scenario. The generators are *constructive*: they
//! build values by walking the schema, so every artifact is valid by
//! construction — and the conformance suite asserts exactly that (generated
//! queries pass `dtr_query::check`, generated mappings validate, generated
//! instances conform).
//!
//! The shapes deliberately cover the full Definition 4.1 grammar: records
//! nested in records, sets nested below set members, and choice types both
//! mid-path (filtering projections) and as binding sources (the `→`
//! selection of Section 4.2).

use dtr_core::tagged::{MappingSetting, MxqlError, TaggedInstance};
use dtr_mapping::glav::Mapping;
use dtr_model::instance::{Instance, Value};
use dtr_model::label::Label;
use dtr_model::schema::{ElementId, ElementKind, Schema};
use dtr_model::types::{AtomicType, Type};
use dtr_model::value::{AtomicValue, MappingName};
use dtr_query::ast::{
    Binding, CmpOp, Comparison, Condition, Expr, MappingPred, PathExpr, PathStart, Query, Step,
    Term,
};
use proptest::test_runner::TestRng;
use std::collections::HashMap;

/// Size knobs for the generators. The defaults keep a single scenario small
/// enough that the naive oracle stays fast while still drawing nesting,
/// choices and PNF-mergeable duplicates with high probability.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum structural depth below a relation's member record.
    pub depth: usize,
    /// Maximum top-level relations per schema.
    pub max_relations: usize,
    /// Maximum extra fields per generated record.
    pub max_fields: usize,
    /// Maximum members per set in generated instances.
    pub max_members: usize,
    /// Atomic values are drawn from a pool of this size (small pools create
    /// joins and PNF merges).
    pub value_pool: u64,
    /// Number of source schemas in a scenario.
    pub max_sources: usize,
    /// Number of mappings in a scenario.
    pub max_mappings: usize,
    /// Queries generated per differential round.
    pub queries_per_case: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            depth: 2,
            max_relations: 2,
            max_fields: 2,
            max_members: 3,
            value_pool: 3,
            max_sources: 2,
            max_mappings: 3,
            queries_per_case: 4,
        }
    }
}

/// `true` with probability `num`/`den`.
fn chance(rng: &mut TestRng, num: u64, den: u64) -> bool {
    rng.below(den) < num
}

/// Uniform pick from a non-empty slice.
fn pick<'a, T>(rng: &mut TestRng, items: &'a [T]) -> &'a T {
    &items[rng.below(items.len() as u64) as usize]
}

/// Per-schema unique label supply (`f0`, `f1`, ... with a stem).
struct Labels {
    next: usize,
}

impl Labels {
    fn fresh(&mut self, stem: &str) -> String {
        let n = self.next;
        self.next += 1;
        format!("{stem}{n}")
    }
}

// ---------------------------------------------------------------------------
// Schemas (Definition 4.1)
// ---------------------------------------------------------------------------

fn gen_atomic(rng: &mut TestRng) -> AtomicType {
    if chance(rng, 3, 4) {
        AtomicType::String
    } else {
        AtomicType::Integer
    }
}

/// A nested type of bounded depth. `inside_choice` forbids sets (a set below
/// a choice alternative cannot be populated by the exchange engine, whose
/// exists-side bindings must be choice-free paths).
fn gen_type(rng: &mut TestRng, lg: &mut Labels, depth: usize, inside_choice: bool) -> Type {
    if depth == 0 {
        return Type::Atomic(gen_atomic(rng));
    }
    match rng.below(10) {
        0..=4 => Type::Atomic(gen_atomic(rng)),
        5 | 6 => {
            let n = 1 + rng.below(2) as usize;
            let fields = (0..n)
                .map(|_| (lg.fresh("f"), gen_type(rng, lg, depth - 1, inside_choice)))
                .collect();
            Type::record(fields)
        }
        7 | 8 => {
            let n = 2 + rng.below(2) as usize;
            let alts = (0..n)
                .map(|_| (lg.fresh("alt"), gen_type(rng, lg, depth - 1, true)))
                .collect();
            Type::choice(alts)
        }
        _ if !inside_choice => Type::set(gen_member_record(rng, lg, depth - 1)),
        _ => Type::Atomic(gen_atomic(rng)),
    }
}

/// A set-member record. The first field is always an atomic string so every
/// relation has a selectable, join-friendly leaf.
fn gen_member_record(rng: &mut TestRng, lg: &mut Labels, depth: usize) -> Type {
    let mut fields = vec![(lg.fresh("k"), Type::string())];
    let extra = rng.below(self::saturating_u64(2)) as usize + 1;
    for _ in 0..extra {
        fields.push((lg.fresh("f"), gen_type(rng, lg, depth, false)));
    }
    Type::record(fields)
}

fn saturating_u64(n: usize) -> u64 {
    n as u64
}

/// A schema whose single root is a record of 1..=`max_relations` relations
/// (sets of nested member records), per the paper's running examples.
pub fn gen_schema(rng: &mut TestRng, db: &str, root: &str, cfg: &GenConfig) -> Schema {
    let mut lg = Labels { next: 0 };
    let n = 1 + rng.below(cfg.max_relations as u64) as usize;
    let fields: Vec<(String, Type)> = (0..n)
        .map(|_| {
            (
                lg.fresh("rel"),
                Type::set(gen_member_record(rng, &mut lg, cfg.depth)),
            )
        })
        .collect();
    Schema::build(db, vec![(root.to_string(), Type::record(fields))])
        .expect("generated types validate")
}

// ---------------------------------------------------------------------------
// Instances (Definition 4.2)
// ---------------------------------------------------------------------------

pub(crate) fn gen_value(rng: &mut TestRng, ty: &Type, cfg: &GenConfig) -> Value {
    match ty {
        Type::Atomic(AtomicType::Integer) => Value::int(rng.below(cfg.value_pool) as i64),
        Type::Atomic(_) => Value::str(format!("v{}", rng.below(cfg.value_pool))),
        Type::Record(fields) => Value::record(
            fields
                .iter()
                .map(|(l, t)| (l.clone(), gen_value(rng, t, cfg)))
                .collect(),
        ),
        Type::Choice(alts) => {
            let (l, t) = pick(rng, alts);
            let inner = gen_value(rng, t, cfg);
            Value::choice(l.clone(), inner)
        }
        Type::Set(member) => {
            let n = rng.below(cfg.max_members as u64 + 1) as usize;
            Value::set((0..n).map(|_| gen_value(rng, member, cfg)).collect())
        }
    }
}

/// A conforming instance for `schema`, element-annotated.
pub fn gen_instance(rng: &mut TestRng, schema: &Schema, cfg: &GenConfig) -> Instance {
    let mut inst = Instance::new(schema.name());
    for &root in schema.roots() {
        let label = schema.element(root).label.clone();
        let ty = schema.type_of(root);
        inst.install_root(label, gen_value(rng, &ty, cfg));
    }
    inst.annotate_elements(schema)
        .expect("generated instance conforms");
    inst
}

// ---------------------------------------------------------------------------
// Schema reachability (shared by query and mapping generation)
// ---------------------------------------------------------------------------

/// Everything reachable from an element without crossing a set boundary.
#[derive(Default)]
pub struct Reach {
    /// Atomic leaves: `(steps, element, type)`.
    pub atomics: Vec<(Vec<Step>, ElementId, AtomicType)>,
    /// Set elements: `(steps, element)`. Not descended into.
    pub sets: Vec<(Vec<Step>, ElementId)>,
    /// Choice alternatives: `(steps ending in the choice step, element)`.
    pub alts: Vec<(Vec<Step>, ElementId)>,
}

/// Collects [`Reach`] from `from`. With `choice_free`, choices are not
/// crossed (the exchange engine's exists-binding restriction). With a
/// `lock`, only the locked alternative of each choice is crossed, so all
/// collected paths agree on their choice selections.
pub fn reach(
    schema: &Schema,
    from: ElementId,
    choice_free: bool,
    lock: Option<&HashMap<ElementId, Label>>,
) -> Reach {
    let mut out = Reach::default();
    let mut prefix = Vec::new();
    go(schema, from, choice_free, lock, &mut prefix, &mut out);
    return out;

    fn go(
        schema: &Schema,
        e: ElementId,
        choice_free: bool,
        lock: Option<&HashMap<ElementId, Label>>,
        prefix: &mut Vec<Step>,
        out: &mut Reach,
    ) {
        match schema.element(e).kind {
            ElementKind::Atomic(t) => out.atomics.push((prefix.clone(), e, t)),
            ElementKind::Set => {
                out.sets.push((prefix.clone(), e));
            }
            ElementKind::Record => {
                for &c in &schema.element(e).children {
                    prefix.push(Step::Project(schema.element(c).label.clone()));
                    go(schema, c, choice_free, lock, prefix, out);
                    prefix.pop();
                }
            }
            ElementKind::Choice => {
                if choice_free {
                    return;
                }
                for &c in &schema.element(e).children {
                    let label = schema.element(c).label.clone();
                    if let Some(lock) = lock {
                        if lock.get(&e) != Some(&label) {
                            continue;
                        }
                    }
                    prefix.push(Step::Choice(label));
                    out.alts.push((prefix.clone(), c));
                    go(schema, c, choice_free, lock, prefix, out);
                    prefix.pop();
                }
            }
        }
    }
}

/// One random alternative per choice element of the schema — the "choice
/// lock" that keeps a mapping's exists-side paths mutually consistent.
pub fn choice_lock(rng: &mut TestRng, schema: &Schema) -> HashMap<ElementId, Label> {
    let mut lock = HashMap::new();
    let choices: Vec<(ElementId, Vec<Label>)> = schema
        .elements()
        .filter(|(_, el)| el.kind == ElementKind::Choice)
        .map(|(id, el)| {
            (
                id,
                el.children
                    .iter()
                    .map(|&c| schema.element(c).label.clone())
                    .collect(),
            )
        })
        .collect();
    for (id, labels) in choices {
        lock.insert(id, pick(rng, &labels).clone());
    }
    lock
}

fn path_expr(start: PathStart, steps: Vec<Step>) -> PathExpr {
    let mut p = match start {
        PathStart::Root(r) => PathExpr::root(r),
        PathStart::Var(v) => PathExpr::var(v),
    };
    for s in steps {
        p = match s {
            Step::Project(l) => p.project(l),
            Step::Choice(l) => p.choice(l),
        };
    }
    p
}

fn gen_const(rng: &mut TestRng, t: AtomicType, cfg: &GenConfig) -> AtomicValue {
    match t {
        AtomicType::Integer => AtomicValue::Int(rng.below(cfg.value_pool) as i64),
        _ => AtomicValue::str(format!("v{}", rng.below(cfg.value_pool))),
    }
}

// ---------------------------------------------------------------------------
// Queries (Section 4.2)
// ---------------------------------------------------------------------------

/// A bound variable during query generation.
struct QVar {
    name: String,
    elem: ElementId,
}

/// A well-formed conjunctive query over `schema`: a root-set binding,
/// optional correlated nested-set and choice-selection bindings, type-safe
/// comparisons and atomic select items. No order-by/limit, so results are
/// comparable as multisets against the reference oracle.
pub fn gen_query(rng: &mut TestRng, schema: &Schema, cfg: &GenConfig) -> Query {
    let mut vars: Vec<QVar> = Vec::new();
    let mut from: Vec<Binding> = Vec::new();

    // Root binding.
    let root = *pick(rng, schema.roots());
    let root_label = schema.element(root).label.clone();
    let r = reach(schema, root, false, None);
    let (steps, set_elem) = pick(rng, &r.sets).clone();
    let member = schema.set_member(set_elem).expect("set has a member");
    from.push(Binding {
        var: "x0".into(),
        source: Expr::Path(path_expr(PathStart::Root(root_label), steps)),
    });
    vars.push(QVar {
        name: "x0".into(),
        elem: member,
    });

    // Correlated bindings: nested sets and choice selections.
    let extra = rng.below(3) as usize;
    for i in 1..=extra {
        let base = rng.below(vars.len() as u64) as usize;
        let base_name = vars[base].name.clone();
        let base_elem = vars[base].elem;
        let r = reach(schema, base_elem, false, None);
        let name = format!("x{i}");
        // Prefer nested sets; fall back to choice selection; else skip.
        if !r.sets.is_empty() && (r.alts.is_empty() || chance(rng, 2, 3)) {
            let (steps, set_elem) = pick(rng, &r.sets).clone();
            if steps.is_empty() {
                continue; // the base variable is itself a set: nothing to add
            }
            let member = schema.set_member(set_elem).expect("set has a member");
            from.push(Binding {
                var: name.clone(),
                source: Expr::Path(path_expr(PathStart::Var(base_name), steps)),
            });
            vars.push(QVar { name, elem: member });
        } else if !r.alts.is_empty() {
            let (steps, alt_elem) = pick(rng, &r.alts).clone();
            from.push(Binding {
                var: name.clone(),
                source: Expr::Path(path_expr(PathStart::Var(base_name), steps)),
            });
            vars.push(QVar {
                name,
                elem: alt_elem,
            });
        }
    }

    // Atomic paths available from each variable.
    let atomics_of: Vec<Vec<(Vec<Step>, AtomicType)>> = vars
        .iter()
        .map(|v| {
            reach(schema, v.elem, false, None)
                .atomics
                .into_iter()
                .map(|(s, _, t)| (s, t))
                .collect()
        })
        .collect();

    // Conditions: type-safe comparisons (mostly equalities).
    let mut conditions = Vec::new();
    for _ in 0..rng.below(3) {
        let vi = rng.below(vars.len() as u64) as usize;
        if atomics_of[vi].is_empty() {
            continue;
        }
        let (ls, lt) = pick(rng, &atomics_of[vi]).clone();
        let left = Expr::Path(path_expr(PathStart::Var(vars[vi].name.clone()), ls));
        let op = match rng.below(10) {
            0..=6 => CmpOp::Eq,
            7 => CmpOp::Ne,
            8 => CmpOp::Le,
            _ => CmpOp::Gt,
        };
        let right = if chance(rng, 2, 5) {
            Expr::Const(gen_const(rng, lt, cfg))
        } else {
            // A same-typed path from some variable.
            let candidates: Vec<(usize, Vec<Step>)> = atomics_of
                .iter()
                .enumerate()
                .flat_map(|(i, paths)| {
                    paths
                        .iter()
                        .filter(|(_, t)| *t == lt)
                        .map(move |(s, _)| (i, s.clone()))
                })
                .collect();
            if candidates.is_empty() {
                Expr::Const(gen_const(rng, lt, cfg))
            } else {
                let (i, s) = pick(rng, &candidates).clone();
                Expr::Path(path_expr(PathStart::Var(vars[i].name.clone()), s))
            }
        };
        conditions.push(Condition::Cmp(Comparison { left, op, right }));
    }

    // Select: 1..=3 atomic paths.
    let mut select = Vec::new();
    for _ in 0..(1 + rng.below(3)) {
        let vi = rng.below(vars.len() as u64) as usize;
        if let Some((s, _)) = non_empty_pick(rng, &atomics_of[vi]) {
            select.push(Expr::Path(path_expr(
                PathStart::Var(vars[vi].name.clone()),
                s,
            )));
        }
    }
    if select.is_empty() {
        // x0 is a relation member: its first field is always atomic.
        let (s, _) = atomics_of[0].first().expect("member has an atomic").clone();
        select.push(Expr::Path(path_expr(PathStart::Var("x0".into()), s)));
    }

    Query {
        select,
        from,
        conditions,
        order_by: Vec::new(),
        limit: None,
    }
}

fn non_empty_pick(
    rng: &mut TestRng,
    items: &[(Vec<Step>, AtomicType)],
) -> Option<(Vec<Step>, AtomicType)> {
    if items.is_empty() {
        None
    } else {
        Some(pick(rng, items).clone())
    }
}

// ---------------------------------------------------------------------------
// MXQL queries (Section 5)
// ---------------------------------------------------------------------------

/// An MXQL query over a scenario's target: data paths mixed with `@map`
/// bindings, `@elem` conditions and single/double-arrow mapping predicates,
/// in the shapes of the paper's Examples 5.4–5.7.
pub fn gen_mxql_query(rng: &mut TestRng, scen: &Scenario, cfg: &GenConfig) -> Query {
    let target = &scen.target;
    let root = *pick(rng, target.roots());
    let root_label = target.element(root).label.clone();
    let r = reach(target, root, false, None);
    let (steps, set_elem) = pick(rng, &r.sets).clone();
    let member = target.set_member(set_elem).expect("set has a member");
    let mut from = vec![Binding {
        var: "x0".into(),
        source: Expr::Path(path_expr(PathStart::Root(root_label), steps)),
    }];
    let atomics: Vec<(Vec<Step>, AtomicType)> = reach(target, member, false, None)
        .atomics
        .into_iter()
        .map(|(s, _, t)| (s, t))
        .collect();
    let apath = |rng: &mut TestRng, atomics: &[(Vec<Step>, AtomicType)]| -> PathExpr {
        let (s, _) = pick(rng, atomics).clone();
        path_expr(PathStart::Var("x0".into()), s)
    };

    let mut select = vec![Expr::Path(apath(rng, &atomics))];
    let mut conditions = Vec::new();

    // `@map` binding (Example 5.4).
    let with_map = chance(rng, 3, 5);
    if with_map {
        from.push(Binding {
            var: "mv".into(),
            source: Expr::MapOf(apath(rng, &atomics)),
        });
        select.push(Expr::Path(PathExpr::var("mv")));
    }

    // Mapping predicate (Examples 5.5–5.7), with a mix of variables and
    // constants in its five slots.
    if chance(rng, 1, 2) {
        let double = chance(rng, 1, 2);
        let src_schema = &pick(rng, &scen.sources).0;
        let src_db = if chance(rng, 1, 2) {
            Term::Const(AtomicValue::str(src_schema.name()))
        } else {
            Term::Var("sdb".into())
        };
        let src_elem = if chance(rng, 1, 2) {
            let elems = src_schema.atomic_elements();
            Term::Const(AtomicValue::str(src_schema.path(*pick(rng, &elems))))
        } else {
            Term::Var("se".into())
        };
        let mapping = if with_map && chance(rng, 1, 2) {
            // Example 5.5: the predicate constrains the @map variable.
            Term::Var("mv".into())
        } else if chance(rng, 1, 2) {
            Term::Const(AtomicValue::str(
                pick(rng, &scen.mappings).name.as_str().to_string(),
            ))
        } else {
            Term::Var("mp".into())
        };
        let tgt_db = Term::Const(AtomicValue::str(target.name()));
        let tgt_elem = if chance(rng, 1, 2) {
            let elems = target.atomic_elements();
            Term::Const(AtomicValue::str(target.path(*pick(rng, &elems))))
        } else {
            Term::Var("te".into())
        };
        // Select the free meta variables so the result exposes them.
        for t in [&src_elem, &tgt_elem, &mapping] {
            if let Term::Var(v) = t {
                if v != "mv" {
                    select.push(Expr::Path(PathExpr::var(v.clone())));
                }
            }
        }
        // `@elem` correlation (Example 5.5's `e = c.title@elem`).
        if let Term::Var(v) = &tgt_elem {
            if chance(rng, 1, 2) {
                conditions.push(Condition::Cmp(Comparison {
                    left: Expr::Path(PathExpr::var(v.clone())),
                    op: CmpOp::Eq,
                    right: Expr::ElemOf(apath(rng, &atomics)),
                }));
            }
        }
        conditions.push(Condition::MapPred(MappingPred {
            src_db,
            src_elem,
            mapping,
            tgt_db,
            tgt_elem,
            double,
        }));
    }

    // A plain data filter rides along sometimes.
    if chance(rng, 1, 3) {
        let (s, t) = pick(rng, &atomics).clone();
        conditions.push(Condition::Cmp(Comparison {
            left: Expr::Path(path_expr(PathStart::Var("x0".into()), s)),
            op: CmpOp::Eq,
            right: Expr::Const(gen_const(rng, t, cfg)),
        }));
    }

    Query {
        select,
        from,
        conditions,
        order_by: Vec::new(),
        limit: None,
    }
}

// ---------------------------------------------------------------------------
// GLAV mappings (Section 4.3)
// ---------------------------------------------------------------------------

/// A GLAV mapping from the source schemas into the target schema that the
/// exchange engine supports by construction: choice-free exists bindings
/// ending at sets, variable-rooted exists select paths with mutually
/// consistent choice selections, and a foreach drawn with [`gen_query`]-like
/// shapes whose select positions type-match the exists side (constants fill
/// positions no source path can).
pub fn gen_mapping(
    rng: &mut TestRng,
    name: &str,
    sources: &[&Schema],
    target: &Schema,
    cfg: &GenConfig,
) -> Mapping {
    // ---- exists side -------------------------------------------------
    let lock = choice_lock(rng, target);
    let root = *pick(rng, target.roots());
    let root_label = target.element(root).label.clone();
    let rsets = reach(target, root, true, None).sets;
    let (steps, set_elem) = pick(rng, &rsets).clone();
    let member = target.set_member(set_elem).expect("set has a member");
    let mut exists_from = vec![Binding {
        var: "y0".into(),
        source: Expr::Path(path_expr(PathStart::Root(root_label), steps)),
    }];
    let mut evars = vec![("y0".to_string(), member)];
    // Optional nested-set binding (choice-free).
    let nested = reach(target, member, true, None).sets;
    if !nested.is_empty() && chance(rng, 2, 5) {
        let (steps, set_elem) = pick(rng, &nested).clone();
        if !steps.is_empty() {
            let m2 = target.set_member(set_elem).expect("set has a member");
            exists_from.push(Binding {
                var: "y1".into(),
                source: Expr::Path(path_expr(PathStart::Var("y0".into()), steps)),
            });
            evars.push(("y1".to_string(), m2));
        }
    }
    // Candidate target leaves, with consistent choice selections.
    let mut candidates: Vec<(String, Vec<Step>, AtomicType)> = Vec::new();
    for (v, e) in &evars {
        for (s, _, t) in reach(target, *e, false, Some(&lock)).atomics {
            candidates.push((v.clone(), s, t));
        }
    }
    let mut exists_select = Vec::new();
    let mut types = Vec::new();
    let mut used: Vec<String> = Vec::new();
    let take = |rng: &mut TestRng,
                pool: Vec<(String, Vec<Step>, AtomicType)>,
                exists_select: &mut Vec<Expr>,
                types: &mut Vec<AtomicType>,
                used: &mut Vec<String>| {
        if pool.is_empty() {
            return;
        }
        let (v, s, t) = pick(rng, &pool).clone();
        let key = format!("{v}:{}", path_expr(PathStart::Var(v.clone()), s.clone()));
        if used.contains(&key) {
            return;
        }
        used.push(key);
        exists_select.push(Expr::Path(path_expr(PathStart::Var(v), s)));
        types.push(t);
    };
    // The exchange engine requires every bound target member to receive at
    // least one field, so draw one path per variable first.
    for (v, _) in &evars {
        let pool: Vec<_> = candidates
            .iter()
            .filter(|(cv, _, _)| cv == v)
            .cloned()
            .collect();
        take(rng, pool, &mut exists_select, &mut types, &mut used);
    }
    // Then extra paths from anywhere.
    for _ in 0..rng.below(2) {
        take(
            rng,
            candidates.clone(),
            &mut exists_select,
            &mut types,
            &mut used,
        );
    }
    let exists = Query {
        select: exists_select,
        from: exists_from,
        conditions: Vec::new(),
        order_by: Vec::new(),
        limit: None,
    };

    // ---- foreach side ------------------------------------------------
    let src = *pick(rng, sources);
    let mut foreach = gen_query(rng, src, cfg);
    foreach.select.clear();
    // Type-compatible select positions; constants as a fallback.
    let vars: Vec<(String, ElementId)> = collect_query_vars(src, &foreach);
    let mut atomics: Vec<(String, Vec<Step>, AtomicType)> = Vec::new();
    for (v, e) in &vars {
        for (s, _, t) in reach(src, *e, false, None).atomics {
            atomics.push((v.clone(), s, t));
        }
    }
    for (i, t) in types.iter().enumerate() {
        let matching: Vec<&(String, Vec<Step>, AtomicType)> =
            atomics.iter().filter(|(_, _, at)| at == t).collect();
        if matching.is_empty() || chance(rng, 1, 5) {
            foreach.select.push(Expr::Const(match t {
                AtomicType::Integer => AtomicValue::Int(i as i64),
                _ => AtomicValue::str(format!("c{i}")),
            }));
        } else {
            let (v, s, _) = (*pick(rng, &matching)).clone();
            foreach
                .select
                .push(Expr::Path(path_expr(PathStart::Var(v), s)));
        }
    }

    Mapping {
        name: MappingName::new(name),
        foreach,
        exists,
    }
}

/// Re-derives the `(variable, element)` bindings of a generated query by
/// walking its from-clause against the schema (the generator's own notion,
/// kept simple: root paths and variable paths over sets and choices).
fn collect_query_vars(schema: &Schema, q: &Query) -> Vec<(String, ElementId)> {
    let mut vars: Vec<(String, ElementId)> = Vec::new();
    for b in &q.from {
        let Expr::Path(p) = &b.source else { continue };
        let start = match &p.start {
            PathStart::Root(r) => schema.root(r),
            PathStart::Var(v) => vars.iter().find(|(name, _)| name == v).map(|(_, e)| *e),
        };
        let Some(mut e) = start else { continue };
        let mut ok = true;
        for s in &p.steps {
            let label = match s {
                Step::Project(l) | Step::Choice(l) => l,
            };
            match schema.child(e, label.as_str()) {
                Some(c) => e = c,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let elem = match schema.element(e).kind {
            ElementKind::Set => schema.set_member(e).expect("set has a member"),
            _ => e,
        };
        vars.push((b.var.clone(), elem));
    }
    vars
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// A complete randomly drawn mapping scenario: nested source schemas with
/// conforming instances, a nested target schema, and GLAV mappings between
/// them.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Source schemas with their instances.
    pub sources: Vec<(Schema, Instance)>,
    /// The target schema.
    pub target: Schema,
    /// The mappings populating the target.
    pub mappings: Vec<Mapping>,
}

impl Scenario {
    /// Runs the annotated data exchange over the scenario.
    pub fn tagged(&self) -> Result<TaggedInstance, MxqlError> {
        self.tagged_with(&dtr_mapping::exchange::ExchangeOptions::default())
    }

    /// Runs the annotated data exchange with explicit exchange options
    /// (engine selection and parallel foreach evaluation).
    pub fn tagged_with(
        &self,
        opts: &dtr_mapping::exchange::ExchangeOptions,
    ) -> Result<TaggedInstance, MxqlError> {
        let setting = MappingSetting::new(
            self.sources.iter().map(|(s, _)| s.clone()).collect(),
            self.target.clone(),
            self.mappings.clone(),
        )?;
        TaggedInstance::exchange_with_options(
            setting,
            self.sources.iter().map(|(_, i)| i.clone()).collect(),
            opts,
        )
    }
}

/// Draws a full scenario.
pub fn gen_scenario(rng: &mut TestRng, cfg: &GenConfig) -> Scenario {
    let nsrc = 1 + rng.below(cfg.max_sources as u64) as usize;
    let sources: Vec<(Schema, Instance)> = (0..nsrc)
        .map(|i| {
            let schema = gen_schema(rng, &format!("S{i}"), &format!("S{i}"), cfg);
            let inst = gen_instance(rng, &schema, cfg);
            (schema, inst)
        })
        .collect();
    let target = gen_schema(rng, "D", "D", cfg);
    let schema_refs: Vec<&Schema> = sources.iter().map(|(s, _)| s).collect();
    let nmap = 1 + rng.below(cfg.max_mappings as u64) as usize;
    let mappings = (0..nmap)
        .map(|i| gen_mapping(rng, &format!("m{}", i + 1), &schema_refs, &target, cfg))
        .collect();
    Scenario {
        sources,
        target,
        mappings,
    }
}

// ---------------------------------------------------------------------------
// Update streams (incremental exchange)
// ---------------------------------------------------------------------------

/// A seeded stream of edit batches over the scenario's top-level relation
/// sets — the granularity the incremental exchange engine edits at. Each
/// step is one [`dtr_mapping::delta::SourceDelta`] of 1..=3 insert/delete/
/// modify edits; member
/// values come from the same constructive generator as the instances, so
/// every edit conforms by construction, and deletes/modifies track live
/// cardinalities so indices are always in range.
pub fn gen_update_stream(
    rng: &mut TestRng,
    scen: &Scenario,
    cfg: &GenConfig,
    steps: usize,
) -> Vec<dtr_mapping::delta::SourceDelta> {
    use dtr_mapping::delta::SourceDelta;
    // (dot path, member type, live cardinality) per editable relation set.
    let mut rels: Vec<(String, Type, usize)> = Vec::new();
    for (schema, inst) in &scen.sources {
        for &root in schema.roots() {
            let rl = schema.element(root).label.clone();
            for &c in &schema.element(root).children {
                if schema.element(c).kind != ElementKind::Set {
                    continue;
                }
                let Type::Set(member) = schema.type_of(c) else {
                    continue;
                };
                let label = schema.element(c).label.clone();
                let card = inst
                    .root(rl.as_str())
                    .and_then(|r| inst.child_by_label(r, label.as_str()))
                    .and_then(|s| inst.set_members(s))
                    .map_or(0, <[_]>::len);
                rels.push((format!("{rl}.{label}"), *member, card));
            }
        }
    }
    if rels.is_empty() {
        return Vec::new();
    }
    (0..steps)
        .map(|_| {
            let mut delta = SourceDelta::new();
            for _ in 0..=rng.below(3) {
                let ri = rng.below(saturating_u64(rels.len())) as usize;
                let (path, member_ty, card) = &mut rels[ri];
                match if *card == 0 { 0 } else { rng.below(3) } {
                    0 => {
                        delta = delta.insert(path.clone(), gen_value(rng, member_ty, cfg));
                        *card += 1;
                    }
                    1 => {
                        delta = delta.delete(path.clone(), rng.below(*card as u64) as usize);
                        *card -= 1;
                    }
                    _ => {
                        let idx = rng.below(*card as u64) as usize;
                        delta = delta.modify(path.clone(), idx, gen_value(rng, member_ty, cfg));
                    }
                }
            }
            delta
        })
        .collect()
}

/// A nested source + instance + mapping bundle for grafting into external
/// scenarios (used by the top-level provenance property tests to extend
/// their flat scenario with a nested-Set source).
pub fn gen_nested_source(
    rng: &mut TestRng,
    db: &str,
    target: &Schema,
    mapping_name: &str,
    cfg: &GenConfig,
) -> (Schema, Instance, Mapping) {
    let schema = gen_schema(rng, db, db, cfg);
    let inst = gen_instance(rng, &schema, cfg);
    let mapping = gen_mapping(rng, mapping_name, &[&schema], target, cfg);
    (schema, inst, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_query::check::{check_query, SchemaCatalog};

    #[test]
    fn generated_schemas_validate_and_nest() {
        let cfg = GenConfig::default();
        let mut nested_seen = false;
        for seed in 0..40 {
            let mut rng = TestRng::from_seed(seed);
            let schema = gen_schema(&mut rng, "S", "S", &cfg);
            // A set below a relation member means real nesting.
            let root = schema.roots()[0];
            for (_, set_elem) in reach(&schema, root, false, None).sets {
                let member = schema.set_member(set_elem).unwrap();
                if !reach(&schema, member, false, None).sets.is_empty() {
                    nested_seen = true;
                }
            }
        }
        assert!(nested_seen, "no nested set drawn in 40 schemas");
    }

    #[test]
    fn generated_queries_check_out() {
        let cfg = GenConfig::default();
        for seed in 0..60 {
            let mut rng = TestRng::from_seed(seed);
            let schema = gen_schema(&mut rng, "S", "S", &cfg);
            let q = gen_query(&mut rng, &schema, &cfg);
            check_query(&q, SchemaCatalog::new(vec![&schema]))
                .unwrap_or_else(|e| panic!("seed {seed}: query `{q}` fails check: {e}"));
        }
    }

    #[test]
    fn generated_scenarios_exchange() {
        let cfg = GenConfig::default();
        for seed in 0..25 {
            let mut rng = TestRng::from_seed(seed);
            let scen = gen_scenario(&mut rng, &cfg);
            scen.tagged()
                .unwrap_or_else(|e| panic!("seed {seed}: exchange failed: {e}"));
        }
    }
}
