//! The conformance laws: differential tests against the reference oracle
//! and metamorphic properties drawn from the paper's theorems.
//!
//! Every law takes generated artifacts and returns `Err(description)` on
//! violation; the [`crate::run_case`] driver strings them together under a
//! single deterministic seed.

use crate::generators::{self, GenConfig, Scenario};
use crate::oracle;
use dtr_core::prelude::*;
use dtr_core::provenance::{positions_for, provenance_of, ProvenanceKind};
use dtr_mapping::glav::Mapping;
use dtr_mapping::satisfy::is_satisfied;
use dtr_model::instance::{Instance, NodeData, NodeId};
use dtr_model::pnf::{is_pnf, to_pnf};
use dtr_model::value::MappingName;
use dtr_query::ast::Query;
use dtr_query::check::{check_query, SchemaCatalog};
use dtr_query::eval::{Catalog, EvalOptions, Evaluator, MetaEnv};
use dtr_query::functions::FunctionRegistry;
use dtr_query::parser::parse_query;
use dtr_xml::parser::instance_from_xml;
use dtr_xml::writer::{instance_to_xml, WriteOptions};
use proptest::test_runner::TestRng;
use std::collections::HashSet;

// ---------------------------------------------------------------------------
// Canonical rendering and structural copies (PNF laws)
// ---------------------------------------------------------------------------

/// Renders an instance into a canonical string: labels, atomic values,
/// element/mapping annotations, with set members sorted so the rendering is
/// order-insensitive. Two instances are "the same nested value" (Def 4.2
/// plus annotations) iff their renderings agree.
pub fn canon(inst: &Instance) -> String {
    let mut roots: Vec<String> = inst.roots().iter().map(|&r| canon_node(inst, r)).collect();
    roots.sort();
    roots.join("\n")
}

fn canon_node(inst: &Instance, id: NodeId) -> String {
    let ann = inst.annotation(id);
    let elem = ann
        .element
        .map(|e| e.index().to_string())
        .unwrap_or_default();
    let maps = ann
        .mappings
        .iter()
        .map(|m| m.as_str())
        .collect::<Vec<_>>()
        .join(",");
    let head = format!("{}⟨e{};{}⟩", inst.label(id), elem, maps);
    match &inst.node(id).data {
        NodeData::Atomic(v) => format!("{head}={v:?}"),
        NodeData::Record(kids) => {
            let body: Vec<String> = kids.iter().map(|&k| canon_node(inst, k)).collect();
            format!("{head}{{{}}}", body.join(","))
        }
        NodeData::Choice(kid) => match kid {
            Some(k) => format!("{head}({})", canon_node(inst, *k)),
            None => format!("{head}()"),
        },
        NodeData::Set(kids) => {
            let mut body: Vec<String> = kids.iter().map(|&k| canon_node(inst, k)).collect();
            body.sort();
            format!("{head}[{}]", body.join(";"))
        }
    }
}

/// How a structural copy treats set members.
#[derive(Clone, Copy)]
enum SetMode {
    /// Reverse their order (tests merge commutativity).
    Reverse,
    /// Append a second copy of every member (tests merge associativity /
    /// union absorption: `pnf(x ∪ x) = pnf(x)`).
    Double,
}

/// An annotation-preserving deep copy with a set-member policy.
fn copy_with(inst: &Instance, mode: SetMode) -> Instance {
    let mut dst = Instance::new(inst.db());
    for &root in inst.roots() {
        copy_node(inst, root, &mut dst, None, true, mode);
    }
    dst
}

fn copy_node(
    src: &Instance,
    id: NodeId,
    dst: &mut Instance,
    parent: Option<NodeId>,
    is_root: bool,
    mode: SetMode,
) -> NodeId {
    let shell = match &src.node(id).data {
        NodeData::Atomic(v) => NodeData::Atomic(v.clone()),
        NodeData::Record(_) => NodeData::Record(Vec::new()),
        NodeData::Choice(_) => NodeData::Choice(None),
        NodeData::Set(_) => NodeData::Set(Vec::new()),
    };
    let nid = dst.push_raw(src.label(id).clone(), parent, shell, is_root);
    let mut order: Vec<NodeId> = src.children(id).to_vec();
    if matches!(src.node(id).data, NodeData::Set(_)) {
        match mode {
            SetMode::Reverse => order.reverse(),
            SetMode::Double => {
                let again = order.clone();
                order.extend(again);
            }
        }
    }
    let kids: Vec<NodeId> = order
        .into_iter()
        .map(|k| copy_node(src, k, dst, Some(nid), false, mode))
        .collect();
    if !kids.is_empty() {
        dst.replace_children(nid, kids);
    }
    let ann = src.annotation(id);
    if let Some(e) = ann.element {
        dst.set_element(nid, e);
    }
    for m in &ann.mappings {
        dst.add_mapping(nid, m.clone());
    }
    nid
}

/// PNF laws (Section 5.2): normalisation is idempotent, insensitive to set
/// member order, and absorbs duplicated members (self-union), with mapping
/// annotations unioned across merged copies.
pub fn law_pnf(rng: &mut TestRng, cfg: &GenConfig) -> Result<(), String> {
    let schema = generators::gen_schema(rng, "P", "P", cfg);
    let mut inst = generators::gen_instance(rng, &schema, cfg);
    // Random mapping annotations exercise the annotation-union side of
    // merging.
    for node in inst.walk() {
        if rng.below(4) == 0 {
            let m = MappingName::new(format!("m{}", rng.below(3) + 1));
            inst.add_mapping(node, m);
        }
    }
    let normal = to_pnf(&inst);
    if !is_pnf(&normal) {
        return Err("pnf: to_pnf output is not in PNF".into());
    }
    let base = canon(&normal);
    let twice = canon(&to_pnf(&normal));
    if twice != base {
        return Err(format!(
            "pnf idempotence violated:\n first: {base}\nsecond: {twice}"
        ));
    }
    let reversed = canon(&to_pnf(&copy_with(&inst, SetMode::Reverse)));
    if reversed != base {
        return Err(format!(
            "pnf merge commutativity violated:\n forward: {base}\nreversed: {reversed}"
        ));
    }
    let doubled = canon(&to_pnf(&copy_with(&inst, SetMode::Double)));
    if doubled != base {
        return Err(format!(
            "pnf union absorption violated:\n once: {base}\ndoubled: {doubled}"
        ));
    }
    let staged = canon(&to_pnf(&copy_with(&normal, SetMode::Double)));
    if staged != base {
        return Err(format!(
            "pnf staged normalisation violated:\n direct: {base}\nstaged: {staged}"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Differential: oracle vs engine
// ---------------------------------------------------------------------------

/// One query, four evaluators: the naive oracle and the engine in each of
/// its configurations — hash-join (the default), nested-loop with pushdown,
/// and the full naive ablation. All four must produce the same bag of rows
/// (`hash_join ≡ nested_loop ≡ oracle`).
fn differential(
    catalog: &Catalog,
    functions: &FunctionRegistry,
    meta: Option<&dyn MetaEnv>,
    q: &Query,
    context: &str,
) -> Result<(), String> {
    let expected = oracle::canonical_multiset(&oracle::eval(catalog, q, meta)?);
    let modes = [
        (
            "pushdown+hash",
            EvalOptions {
                pushdown: true,
                hash_join: true,
                ..Default::default()
            },
        ),
        (
            "pushdown+nested",
            EvalOptions {
                pushdown: true,
                hash_join: false,
                ..Default::default()
            },
        ),
        (
            "naive",
            EvalOptions {
                pushdown: false,
                hash_join: false,
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in modes {
        let mut eval = Evaluator::new(catalog, functions).with_options(opts);
        if let Some(meta) = meta {
            eval = eval.with_meta(meta);
        }
        let result = eval
            .run(q)
            .map_err(|e| format!("{context}: engine ({name}) failed on `{q}`: {e}"))?;
        let got = oracle::canonical_multiset(&result.tuples());
        if got != expected {
            return Err(format!(
                "{context}: oracle disagrees with engine ({name}) on `{q}`\noracle: {expected:?}\nengine: {got:?}"
            ));
        }
    }
    Ok(())
}

/// Differential testing of plain conjunctive queries over every generated
/// source instance (nested schemas, choice selections, correlated
/// bindings).
pub fn law_source_queries(
    rng: &mut TestRng,
    scen: &Scenario,
    cfg: &GenConfig,
) -> Result<(), String> {
    let functions = FunctionRegistry::with_builtins();
    let catalog = oracle::catalog_of(&scen.sources);
    for (schema, _) in &scen.sources {
        for _ in 0..cfg.queries_per_case {
            let q = generators::gen_query(rng, schema, cfg);
            check_query(&q, SchemaCatalog::new(vec![schema]))
                .map_err(|e| format!("generated query `{q}` fails check: {e}"))?;
            roundtrip_query(&q)?;
            differential(&catalog, &functions, None, &q, "source query")?;
        }
    }
    Ok(())
}

/// Differential + translation-equivalence testing of MXQL over the
/// exchanged target: the oracle, the direct engine (both pushdown modes)
/// and the Section 7.3 translation must all agree.
pub fn law_mxql_queries(
    rng: &mut TestRng,
    scen: &Scenario,
    tagged: &dtr_core::tagged::TaggedInstance,
    cfg: &GenConfig,
) -> Result<(), String> {
    let runner = MetaRunner::new(tagged.setting()).map_err(|e| format!("metastore: {e}"))?;
    let catalog = tagged.catalog();
    let mut schemas: Vec<&dtr_model::schema::Schema> = vec![&scen.target];
    schemas.extend(scen.sources.iter().map(|(s, _)| s));
    for _ in 0..cfg.queries_per_case {
        let q = generators::gen_mxql_query(rng, scen, cfg);
        check_query(&q, SchemaCatalog::new(schemas.clone()))
            .map_err(|e| format!("generated MXQL query `{q}` fails check: {e}"))?;
        roundtrip_query(&q)?;
        differential(
            &catalog,
            tagged.functions(),
            Some(tagged.setting()),
            &q,
            "mxql query",
        )?;
        // §7.3: translated evaluation produces the same distinct rows.
        let direct = tagged
            .run(&q)
            .map_err(|e| format!("direct MXQL run failed on `{q}`: {e}"))?;
        let translated = runner
            .run(tagged, &q)
            .map_err(|e| format!("translated MXQL run failed on `{q}`: {e}"))?;
        if canonical_rows(&direct) != canonical_rows(&translated) {
            return Err(format!(
                "translation equivalence violated on `{q}`\ndirect: {:?}\ntranslated: {:?}",
                canonical_rows(&direct),
                canonical_rows(&translated)
            ));
        }
    }
    Ok(())
}

/// EXPLAIN ANALYZE consistency: running a generated MXQL query in analyzed
/// mode must (a) produce a result byte-identical to the plain run (same
/// columns, same rows, same order, annotations included), (b) report a root
/// operator whose `rows_out` equals the result's row count, and (c) agree
/// with the reference oracle on that cardinality. Interior operators are
/// sanity-checked: every node's `rows_out` must be consistent with its
/// recorded input (an operator cannot emit rows it never saw, except the
/// binding fan-out stages whose job is to multiply rows).
pub fn law_analyze(
    rng: &mut TestRng,
    scen: &Scenario,
    tagged: &dtr_core::tagged::TaggedInstance,
    cfg: &GenConfig,
) -> Result<(), String> {
    let catalog = tagged.catalog();
    for _ in 0..cfg.queries_per_case {
        let q = generators::gen_mxql_query(rng, scen, cfg);
        let plain = tagged
            .run(&q)
            .map_err(|e| format!("plain run failed on `{q}`: {e}"))?;
        let (analyzed, plan) = tagged
            .run_analyzed(&q)
            .map_err(|e| format!("analyzed run failed on `{q}`: {e}"))?;
        // (a) Byte-identical result: instrumentation must be observation
        // only. Debug rendering covers columns, row order, atomic values
        // and the annotation payloads of every output value.
        let plain_render = format!("{:?}|{:?}", plain.columns, plain.rows);
        let analyzed_render = format!("{:?}|{:?}", analyzed.columns, analyzed.rows);
        if plain_render != analyzed_render {
            return Err(format!(
                "EXPLAIN ANALYZE changed the result of `{q}`\nplain: {plain_render}\nanalyzed: {analyzed_render}"
            ));
        }
        // (b) The root operator's actual row count is the result size.
        if plan.rows_out != analyzed.len() as u64 {
            return Err(format!(
                "EXPLAIN ANALYZE root operator reports {} rows but the result has {} on `{q}`\n{}",
                plan.rows_out,
                analyzed.len(),
                plan.render()
            ));
        }
        // (c) Oracle cardinality: the reference evaluator's bag size.
        let oracle_rows = oracle::eval(&catalog, &q, Some(tagged.setting()))
            .map_err(|e| format!("oracle failed on `{q}`: {e}"))?;
        if oracle_rows.len() as u64 != plan.rows_out {
            return Err(format!(
                "EXPLAIN ANALYZE root operator reports {} rows but the oracle produced {} on `{q}`",
                plan.rows_out,
                oracle_rows.len()
            ));
        }
        // Interior sanity: row-reducing operators cannot emit more rows
        // than they received. Fan-out stages (scan/bind/hash-probe) grow
        // the row set by construction and are exempt.
        let mut stack = vec![&plan];
        while let Some(node) = stack.pop() {
            let reducing = matches!(node.op.as_str(), "filter" | "project" | "sort" | "limit");
            if reducing && node.rows_out > node.rows_in {
                return Err(format!(
                    "operator `{}` emitted {} rows from {} inputs on `{q}`\n{}",
                    node.op,
                    node.rows_out,
                    node.rows_in,
                    plan.render()
                ));
            }
            stack.extend(node.children.iter());
        }
    }
    Ok(())
}

/// Planner conformance: for every generated MXQL query,
///
/// * the planned execution (cost-based join order, per-join algorithm
///   choice, plan caching) produces the same row **multiset** as the
///   legacy evaluator and the reference oracle — bindings are a filtered
///   cross product, so the planner may permute enumeration order but
///   never membership or multiplicity;
/// * a plan-cache **hit is byte-identical to the cold plan** (same plan
///   object ⇒ same row order), and the hit is structurally confirmed
///   (the counter must move);
/// * a plan compiled against a *synthetic* statistics catalog with
///   random per-binding cardinalities — which drives arbitrary join
///   reorderings deterministically — still matches the oracle multiset.
pub fn law_plan(
    rng: &mut TestRng,
    scen: &Scenario,
    tagged: &dtr_core::tagged::TaggedInstance,
    cfg: &GenConfig,
) -> Result<(), String> {
    let catalog = tagged.catalog();
    // Full-row canonicalization (values AND annotation payloads),
    // order-insensitive.
    let canon_full = |r: &dtr_query::eval::QueryResult| {
        let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
        rows.sort();
        rows
    };
    let render = |r: &dtr_query::eval::QueryResult| format!("{:?}|{:?}", r.columns, r.rows);
    for _ in 0..cfg.queries_per_case {
        let q = generators::gen_mxql_query(rng, scen, cfg);
        let text = q.to_string();
        let expected = oracle::canonical_multiset(
            &oracle::eval(&catalog, &q, Some(tagged.setting()))
                .map_err(|e| format!("oracle failed on `{q}`: {e}"))?,
        );
        let legacy = tagged
            .run(&q)
            .map_err(|e| format!("legacy run failed on `{q}`: {e}"))?;
        tagged.clear_plan_cache();
        let hits_before = tagged.plan_cache_stats().hits;
        let version_before = dtr_obs::stats::cardinality_version();
        let cold = tagged
            .run_planned(&text)
            .map_err(|e| format!("planned (cold) run failed on `{q}`: {e}"))?;
        let warm = tagged
            .run_planned(&text)
            .map_err(|e| format!("planned (cached) run failed on `{q}`: {e}"))?;
        let stats = tagged.plan_cache_stats();
        // A concurrent delta apply (another test thread) can legitimately
        // move the cardinality version between the cold and warm runs,
        // evicting the plan; only a missed hit with a *stable* version is
        // a cache bug.
        if stats.hits <= hits_before && dtr_obs::stats::cardinality_version() == version_before {
            return Err(format!(
                "plan cache did not hit on repeated `{q}` ({stats:?})"
            ));
        }
        if render(&cold) != render(&warm) {
            return Err(format!(
                "cache-hit result differs from cold-plan result on `{q}`\ncold: {}\nwarm: {}",
                render(&cold),
                render(&warm)
            ));
        }
        let got = oracle::canonical_multiset(&cold.tuples());
        if got != expected {
            return Err(format!(
                "planned run disagrees with oracle on `{q}`\noracle: {expected:?}\nplanned: {got:?}"
            ));
        }
        if canon_full(&cold) != canon_full(&legacy) {
            return Err(format!(
                "planned run disagrees with legacy run (annotations included) on `{q}`\nlegacy: {:?}\nplanned: {:?}",
                canon_full(&legacy),
                canon_full(&cold)
            ));
        }
        // Synthetic statistics force arbitrary (but deterministic) join
        // reorderings; the multiset must survive any of them.
        let mut synth = dtr_obs::stats::StatsCatalog::new();
        for b in &q.from {
            let path = dtr_query::eval::canonical_expr(&b.source, &q);
            synth.record_set(&path, 1 + rng.below(1024));
        }
        let plan = tagged
            .plan_with_stats(&text, &synth)
            .map_err(|e| format!("planning with synthetic stats failed on `{q}`: {e}"))?;
        let reordered = tagged
            .run_plan(&plan)
            .map_err(|e| format!("reordered plan failed on `{q}`: {e}"))?;
        let got = oracle::canonical_multiset(&reordered.tuples());
        if got != expected {
            return Err(format!(
                "reordered plan (order {:?}) disagrees with oracle on `{q}`\noracle: {expected:?}\nplanned: {got:?}",
                plan.physical.order
            ));
        }
    }
    Ok(())
}

/// `Display` → parse must reproduce the query AST exactly.
fn roundtrip_query(q: &Query) -> Result<(), String> {
    let text = q.to_string();
    let back =
        parse_query(&text).map_err(|e| format!("printed query `{text}` fails to parse: {e}"))?;
    if &back != q {
        return Err(format!(
            "query display/parse round-trip changed the AST for `{text}`"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parallel exchange determinism
// ---------------------------------------------------------------------------

/// Evaluating mapping foreach queries on worker threads must produce a
/// target instance (canonical rendering, annotations included) and
/// per-mapping decision counts identical to the serial engine's: the
/// insert stage is single-writer and applies mappings in order.
pub fn law_parallel_exchange(scen: &Scenario) -> Result<(), String> {
    let serial = scen
        .tagged()
        .map_err(|e| format!("serial exchange failed on generated scenario: {e}"))?;
    let parallel = scen
        .tagged_with(&dtr_mapping::exchange::ExchangeOptions {
            parallel: true,
            // Explicit cap so the threaded path runs even on one core
            // (auto sizing would fall back to the serial engine there).
            workers: 2,
            ..Default::default()
        })
        .map_err(|e| format!("parallel exchange failed on generated scenario: {e}"))?;
    let before = canon(serial.target());
    let after = canon(parallel.target());
    if before != after {
        return Err(format!(
            "parallel exchange changed the target instance\nserial: {before}\nparallel: {after}"
        ));
    }
    let decisions = |t: &dtr_core::tagged::TaggedInstance| {
        t.report()
            .per_mapping
            .iter()
            .map(|s| {
                (
                    s.mapping.clone(),
                    s.tuples,
                    s.bindings,
                    s.rows_inserted,
                    s.rows_merged,
                    s.annotations_written,
                    s.annotations_suppressed,
                )
            })
            .collect::<Vec<_>>()
    };
    if decisions(&serial) != decisions(&parallel) {
        return Err(format!(
            "parallel exchange changed per-mapping decisions\nserial: {:?}\nparallel: {:?}",
            decisions(&serial),
            decisions(&parallel)
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Flight recorder / audit transparency
// ---------------------------------------------------------------------------

/// Everything one run shows the comparison: the canonical target, the
/// rendered per-mapping decision counts, and each query's canonical rows
/// or error text.
type FlightOutcome = (String, String, Vec<Result<Vec<String>, String>>);

/// The time-domain observability tiers are pure observers: running the
/// exchange and a query workload with the flight recorder and audit log
/// capturing must produce byte-identical canonical targets, per-mapping
/// decision counts, and query results (or identical errors) to a run with
/// both gates off.
pub fn law_flight(rng: &mut TestRng, scen: &Scenario, cfg: &GenConfig) -> Result<(), String> {
    // Draw the query workload once so both runs see identical queries.
    let queries: Vec<Query> = (0..cfg.queries_per_case)
        .map(|_| generators::gen_mxql_query(rng, scen, cfg))
        .collect();
    let run_all = |scen: &Scenario| -> Result<FlightOutcome, String> {
        let tagged = scen
            .tagged()
            .map_err(|e| format!("exchange failed on generated scenario: {e}"))?;
        let target = canon(tagged.target());
        let decisions = format!(
            "{:?}",
            tagged
                .report()
                .per_mapping
                .iter()
                .map(|s| {
                    (
                        s.mapping.clone(),
                        s.tuples,
                        s.bindings,
                        s.rows_inserted,
                        s.rows_merged,
                        s.annotations_written,
                        s.annotations_suppressed,
                    )
                })
                .collect::<Vec<_>>()
        );
        let results = queries
            .iter()
            .map(|q| {
                tagged
                    .run(q)
                    .map(|r| oracle::canonical_multiset(&r.tuples()))
                    .map_err(|e| e.to_string())
            })
            .collect();
        Ok((target, decisions, results))
    };
    let was_flight = dtr_obs::recorder::enabled();
    let was_audit = dtr_obs::audit::enabled();
    dtr_obs::recorder::set_enabled(false);
    dtr_obs::audit::set_enabled(false);
    let off = run_all(scen);
    dtr_obs::recorder::set_enabled(true);
    dtr_obs::audit::set_enabled(true);
    let on = run_all(scen);
    dtr_obs::recorder::set_enabled(was_flight);
    dtr_obs::audit::set_enabled(was_audit);
    let (off_target, off_decisions, off_results) = off?;
    let (on_target, on_decisions, on_results) = on?;
    if off_target != on_target {
        return Err(format!(
            "flight recorder changed the target instance\noff: {off_target}\non: {on_target}"
        ));
    }
    if off_decisions != on_decisions {
        return Err(format!(
            "flight recorder changed per-mapping decisions\noff: {off_decisions}\non: {on_decisions}"
        ));
    }
    for (q, (off_r, on_r)) in queries
        .iter()
        .zip(off_results.iter().zip(on_results.iter()))
    {
        if off_r != on_r {
            return Err(format!(
                "flight recorder changed the result of `{q}`\noff: {off_r:?}\non: {on_r:?}"
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Incremental exchange ≡ full re-exchange (update-stream conformance)
// ---------------------------------------------------------------------------

/// After every prefix of a seeded update stream, the incrementally
/// maintained target must be byte-identical (canonical rendering,
/// annotations included) to a full re-exchange over the mutated sources,
/// and the synthesized report must agree with the full run on every
/// per-mapping decision count.
pub fn law_incremental(
    rng: &mut TestRng,
    scen: &Scenario,
    cfg: &GenConfig,
    exchange: &dtr_mapping::exchange::ExchangeOptions,
) -> Result<(), String> {
    use dtr_mapping::exchange::execute_mappings_with;
    use dtr_mapping::incremental::IncrementalExchange;
    let funcs = FunctionRegistry::with_builtins();
    let schemas: Vec<dtr_model::schema::Schema> =
        scen.sources.iter().map(|(s, _)| s.clone()).collect();
    let mut instances: Vec<Instance> = scen.sources.iter().map(|(_, i)| i.clone()).collect();
    for (inst, schema) in instances.iter_mut().zip(&schemas) {
        inst.annotate_elements(schema)
            .map_err(|e| format!("source annotation failed: {e}"))?;
    }
    let mut inc = IncrementalExchange::new(
        schemas.clone(),
        instances,
        scen.target.clone(),
        scen.mappings.clone(),
        funcs.clone(),
        exchange.clone(),
    )
    .map_err(|e| format!("incremental engine failed to build: {e}"))?;
    let stream = generators::gen_update_stream(rng, scen, cfg, 4);
    let decisions = |r: &dtr_mapping::exchange::ExchangeReport| {
        r.per_mapping
            .iter()
            .map(|s| {
                (
                    s.mapping.clone(),
                    s.tuples,
                    s.bindings,
                    s.rows_inserted,
                    s.rows_merged,
                )
            })
            .collect::<Vec<_>>()
    };
    for (step, delta) in stream.iter().enumerate() {
        inc.apply(delta)
            .map_err(|e| format!("incremental apply failed at step {step} ({delta:?}): {e}"))?;
        let views: Vec<dtr_query::eval::Source> = schemas
            .iter()
            .zip(inc.sources())
            .map(|(schema, instance)| dtr_query::eval::Source { schema, instance })
            .collect();
        let (full, full_report) =
            execute_mappings_with(&views, &scen.target, &scen.mappings, &funcs, exchange)
                .map_err(|e| format!("full re-exchange failed at step {step}: {e}"))?;
        let inc_canon = canon(inc.target());
        let full_canon = canon(&full);
        if inc_canon != full_canon {
            return Err(format!(
                "incremental target diverged from full re-exchange after step {step} \
                 ({delta:?})\nincremental: {inc_canon}\nfull: {full_canon}"
            ));
        }
        if decisions(inc.report()) != decisions(&full_report) {
            return Err(format!(
                "incremental report diverged from full re-exchange after step {step}\n\
                 incremental: {:?}\nfull: {:?}",
                decisions(inc.report()),
                decisions(&full_report)
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Mapping laws
// ---------------------------------------------------------------------------

/// Generated mappings validate, their text form round-trips through
/// [`Mapping::parse`], and the exchanged target satisfies every mapping
/// (Section 4.3's satisfaction check).
pub fn law_mappings(
    scen: &Scenario,
    tagged: &dtr_core::tagged::TaggedInstance,
) -> Result<(), String> {
    let schema_refs: Vec<&dtr_model::schema::Schema> =
        scen.sources.iter().map(|(s, _)| s).collect();
    let source_catalog = tagged.source_catalog();
    let target = dtr_query::eval::Source {
        schema: tagged.setting().target_schema(),
        instance: tagged.target(),
    };
    for m in &scen.mappings {
        m.validate(&schema_refs, &scen.target)
            .map_err(|e| format!("generated mapping `{}` fails validation: {e}", m.name))?;
        let text = format!("foreach {} exists {}", m.foreach, m.exists);
        let back = Mapping::parse(m.name.as_str(), &text)
            .map_err(|e| format!("printed mapping `{text}` fails to parse: {e}"))?;
        if &back != m {
            return Err(format!(
                "mapping display/parse round-trip changed `{}`",
                m.name
            ));
        }
        let sat = is_satisfied(m, source_catalog.sources(), target, tagged.functions())
            .map_err(|e| format!("satisfaction check failed for `{}`: {e}", m.name))?;
        if !sat {
            return Err(format!(
                "exchange output does not satisfy mapping `{}`",
                m.name
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Provenance laws (Section 6)
// ---------------------------------------------------------------------------

/// Theorems 6.1/6.4 hold exhaustively, and for sampled target values the
/// provenance chain is ordered: `q_where ⊑ q_what ⊑ q_why` as queries and
/// the fact footprints nest the same way.
pub fn law_provenance(tagged: &dtr_core::tagged::TaggedInstance) -> Result<(), String> {
    let setting = tagged.setting();
    let target_schema = setting.target_schema();
    for m in setting.mappings() {
        let name = m.name.clone();
        if let Some((es, et)) = check_theorem_6_1(tagged, &name).map_err(|e| e.to_string())? {
            return Err(format!("theorem 6.1 fails for `{name}` at {es} → {et}"));
        }
        if let Some((es, et)) = check_theorem_6_4(tagged, &name).map_err(|e| e.to_string())? {
            return Err(format!("theorem 6.4 fails for `{name}` at {es} ⇒ {et}"));
        }
        for e in target_schema.atomic_elements() {
            let et = dtr_model::value::ElementRef::new(target_schema.name(), target_schema.path(e));
            if positions_for(m, target_schema, &et).is_empty() {
                continue;
            }
            // Up to three values per (mapping, element) keep the law cheap.
            for node in tagged
                .target()
                .interpretation_by(e, &name)
                .into_iter()
                .take(3)
            {
                provenance_chain(tagged, &name, node)?;
            }
        }
    }
    Ok(())
}

fn provenance_chain(
    tagged: &dtr_core::tagged::TaggedInstance,
    m: &MappingName,
    node: NodeId,
) -> Result<(), String> {
    let ctx = |kind: &str, e: &MxqlError| format!("{kind}-provenance of node via `{m}`: {e}");
    let w = provenance_of(tagged, ProvenanceKind::Where, m, node).map_err(|e| ctx("where", &e))?;
    let what = provenance_of(tagged, ProvenanceKind::What, m, node).map_err(|e| ctx("what", &e))?;
    let why = provenance_of(tagged, ProvenanceKind::Why, m, node).map_err(|e| ctx("why", &e))?;
    if !element_included(&w.query, &what.query) {
        return Err(format!(
            "provenance containment q_where ⊑ q_what fails for `{m}`"
        ));
    }
    if !element_included(&what.query, &why.query) {
        return Err(format!(
            "provenance containment q_what ⊑ q_why fails for `{m}`"
        ));
    }
    let we: HashSet<_> = w.fact_elements(tagged);
    let whate: HashSet<_> = what.fact_elements(tagged);
    let whye: HashSet<_> = why.fact_elements(tagged);
    if !we.is_subset(&whate) || !whate.is_subset(&whye) {
        return Err(format!(
            "provenance fact footprints do not nest for `{m}`: where={we:?} what={whate:?} why={whye:?}"
        ));
    }
    if w.facts.is_empty() {
        return Err(format!(
            "where-provenance of an exchanged value via `{m}` has no facts\n\
             node: {} = {:?}\nquery: {}",
            tagged.target().node_path(node),
            tagged.target().atomic(node),
            w.query
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Metastore laws (Section 7)
// ---------------------------------------------------------------------------

/// Encode → view round-trip: the queryable meta instance exposes exactly
/// the schemas' elements and the setting's mappings, and the store's id
/// maps are mutually consistent.
pub fn law_metastore(tagged: &dtr_core::tagged::TaggedInstance) -> Result<(), String> {
    let setting = tagged.setting();
    let runner = MetaRunner::new(setting).map_err(|e| format!("metastore build: {e}"))?;
    let store = runner.store();
    let meta_catalog = Catalog::new(vec![runner.meta_source()]);

    // Element paths, read back *through the queryable view* by the oracle.
    let q = parse_query("select e.db, e.path from Element e").expect("static query parses");
    let rows = oracle::eval(&meta_catalog, &q, None)?;
    let mut got: Vec<String> = rows.iter().map(|r| format!("{}:{}", r[0], r[1])).collect();
    got.sort();
    got.dedup();
    let mut want: Vec<String> = Vec::new();
    for s in setting
        .source_schemas()
        .iter()
        .chain(std::iter::once(setting.target_schema()))
    {
        for (e, _) in s.elements() {
            want.push(format!("{}:{}", s.name(), s.path(e)));
        }
    }
    want.sort();
    want.dedup();
    if got != want {
        return Err(format!(
            "metastore element view round-trip mismatch\n view: {got:?}\nschemas: {want:?}"
        ));
    }

    // Mapping rows, read back through the view.
    let q = parse_query("select m.mid from Mapping m").expect("static query parses");
    let rows = oracle::eval(&meta_catalog, &q, None)?;
    let mut got: Vec<String> = rows.iter().map(|r| r[0].to_string()).collect();
    got.sort();
    let mut want: Vec<String> = store
        .mapping_names()
        .iter()
        .map(|m| m.as_str().to_string())
        .collect();
    want.sort();
    if got != want {
        return Err(format!(
            "metastore mapping view round-trip mismatch\n view: {got:?}\nstore: {want:?}"
        ));
    }

    // eid / path indexes agree in both directions.
    for s in setting
        .source_schemas()
        .iter()
        .chain(std::iter::once(setting.target_schema()))
    {
        for (e, _) in s.elements() {
            let path = s.path(e);
            let eid = store
                .eid(s.name(), e)
                .ok_or_else(|| format!("metastore has no eid for {}:{path}", s.name()))?;
            // A set and its `*` member share a canonical path, so resolve
            // by path and require the element's eid among the candidates.
            let candidates: Vec<&str> = store
                .elements
                .iter()
                .filter(|r| r.db == s.name() && r.path == path)
                .map(|r| r.eid.as_str())
                .collect();
            if !candidates.contains(&eid) {
                return Err(format!(
                    "metastore eid/path indexes disagree for {}:{path} ({eid} not in {candidates:?})",
                    s.name(),
                ));
            }
            if store.element_by_path(s.name(), &path).is_none() {
                return Err(format!("metastore cannot resolve {}:{path}", s.name()));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// XML round-trip
// ---------------------------------------------------------------------------

/// Annotated write → parse reproduces every instance of the scenario
/// byte-for-byte in the canonical rendering (values, structure, element and
/// mapping annotations).
pub fn law_xml_roundtrip(
    scen: &Scenario,
    tagged: &dtr_core::tagged::TaggedInstance,
) -> Result<(), String> {
    let mut pairs: Vec<(&dtr_model::schema::Schema, &Instance)> =
        scen.sources.iter().map(|(s, i)| (s, i)).collect();
    pairs.push((tagged.setting().target_schema(), tagged.target()));
    for (schema, inst) in pairs {
        let xml = instance_to_xml(inst, WriteOptions::annotated());
        let back = instance_from_xml(&xml, schema)
            .map_err(|e| format!("xml for `{}` fails to parse back: {e}", inst.db()))?;
        if canon(inst) != canon(&back) {
            return Err(format!(
                "xml round-trip changed instance `{}`\nbefore: {}\n after: {}",
                inst.db(),
                canon(inst),
                canon(&back)
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Durability: crash-recovery adjacency (storage-fault soak)
// ---------------------------------------------------------------------------

/// The crash-recovery law over a seeded update stream: at every injected
/// crash point — after the WAL commit but before the epoch publish, inside
/// a torn frame append, under a bit flip, mid-checkpoint-rotation, and
/// after an exhausted-fsync commit failure — reopening the log recovers a
/// state byte-identical to exactly one of the two adjacent epochs
/// (pre-delta if the frame never became durable, post-delta if it did).
pub fn law_recovery(rng: &mut TestRng, scen: &Scenario, cfg: &GenConfig) -> Result<(), String> {
    use dtr_core::store::{DurableOptions, DurableSession};
    use dtr_mapping::durable::{
        encode_frame, FaultVfs, FrameKind, MemVfs, StorageFault, Vfs, WAL_MAGIC,
    };
    use std::sync::Arc;

    let make_setting = || -> Result<MappingSetting, String> {
        MappingSetting::new(
            scen.sources.iter().map(|(s, _)| s.clone()).collect(),
            scen.target.clone(),
            scen.mappings.clone(),
        )
        .map_err(|e| format!("setting failed to build: {e}"))
    };
    let sources: Vec<Instance> = scen.sources.iter().map(|(_, i)| i.clone()).collect();
    let opts = || DurableOptions {
        checkpoint_every: 0,
        backoff_ms: 0,
        ..DurableOptions::default()
    };
    let recover_canon = |image: MemVfs, what: &str| -> Result<String, String> {
        let (rs, _report) = DurableSession::open(Arc::new(image), "wal", opts())
            .map_err(|e| format!("recovery failed ({what}): {e}"))?;
        Ok(rs.pin().canonical().to_string())
    };

    let vfs = Arc::new(MemVfs::new());
    let mut s = DurableSession::create(
        make_setting()?,
        sources.clone(),
        None,
        vfs.clone(),
        "wal",
        opts(),
    )
    .map_err(|e| format!("durable create failed: {e}"))?;
    let stream = generators::gen_update_stream(rng, scen, cfg, 3);

    for (step, delta) in stream.iter().enumerate() {
        let pre = s.pin().canonical().to_string();
        let pre_len = s.wal_committed_len();
        s.apply(delta)
            .map_err(|e| format!("durable apply failed at step {step} ({delta:?}): {e}"))?;
        let post = s.pin().canonical().to_string();
        let post_len = s.wal_committed_len();
        let path = format!("wal/wal-{:06}.log", s.wal_segment());

        // Crash point: after commit, before publish — the frame is
        // durable, so recovery must land on the post-delta epoch.
        let got = recover_canon(vfs.clone_files(), "post-commit")?;
        if got != post {
            return Err(format!(
                "step {step}: crash between WAL commit and publish did not \
                 recover the post-delta state"
            ));
        }

        // Crash points: torn appends at several byte offsets inside the
        // frame — the commit never happened, so recovery must land on the
        // pre-delta epoch (and truncate the torn tail, not fail).
        let span = post_len - pre_len;
        for cut in [pre_len + 1, pre_len + span / 2, post_len - 1] {
            if cut <= pre_len || cut >= post_len {
                continue;
            }
            let img = vfs.clone_files();
            img.truncate(&path, cut)
                .map_err(|e| format!("step {step}: image truncate failed: {e}"))?;
            let got = recover_canon(img, "torn frame")?;
            if got != pre {
                return Err(format!(
                    "step {step}: torn frame (cut at byte {cut} of \
                     {pre_len}..{post_len}) did not recover the pre-delta state"
                ));
            }
        }

        // Crash point: a bit flip inside the committed frame — the CRC
        // must reject the frame, recovering the pre-delta epoch.
        let img = vfs.clone_files();
        let bytes = img
            .read(&path)
            .map_err(|e| format!("step {step}: image read failed: {e}"))?;
        let mut flipped = bytes.clone();
        let off = (pre_len + rng.below(span)) as usize;
        let bit = rng.below(8) as u8;
        flipped[off] ^= 1 << bit;
        img.truncate(&path, 0)
            .map_err(|e| format!("step {step}: image reset failed: {e}"))?;
        img.append(&path, &flipped)
            .map_err(|e| format!("step {step}: image rewrite failed: {e}"))?;
        let got = recover_canon(img, "bit flip")?;
        if got != pre {
            return Err(format!(
                "step {step}: bit flip at byte {off} bit {bit} did not recover \
                 the pre-delta state"
            ));
        }
    }

    // Crash point: mid-checkpoint-rotation — the next segment exists but
    // its leading checkpoint frame is torn. Recovery must discard it and
    // replay the old segment, landing on the pre-checkpoint state.
    let pre_ckpt = s.pin().canonical().to_string();
    let img = vfs.clone_files();
    let next = format!("wal/wal-{:06}.log", s.wal_segment() + 1);
    let frame = encode_frame(FrameKind::Checkpoint, b"never finished");
    let mut torn = WAL_MAGIC.to_vec();
    torn.extend_from_slice(&frame[..frame.len() - 5]);
    img.append(&next, &torn)
        .map_err(|e| format!("torn rotation image failed: {e}"))?;
    let got = recover_canon(img, "mid-checkpoint")?;
    if got != pre_ckpt {
        return Err(
            "crash mid-checkpoint-rotation did not recover the pre-checkpoint state".to_string(),
        );
    }

    // A completed checkpoint is itself a recovery point: reopening the
    // rotated log must reproduce the post-checkpoint state byte-for-byte.
    s.checkpoint()
        .map_err(|e| format!("checkpoint failed: {e}"))?;
    let post_ckpt = s.pin().canonical().to_string();
    let got = recover_canon(vfs.clone_files(), "post-checkpoint")?;
    if got != post_ckpt {
        return Err("reopen after checkpoint did not recover the checkpointed state".to_string());
    }

    // Crash point: fsync failures exhaust the retry budget — the commit
    // never lands, the session degrades to read-only, and recovery lands
    // on the pre-delta epoch.
    if let Some(delta) = stream.first() {
        let fvfs = Arc::new(FaultVfs::new(MemVfs::new()));
        let mut s2 = DurableSession::create(
            make_setting()?,
            sources,
            None,
            fvfs.clone(),
            "wal",
            DurableOptions {
                checkpoint_every: 0,
                retries: 1,
                backoff_ms: 0,
                ..DurableOptions::default()
            },
        )
        .map_err(|e| format!("durable create (fault vfs) failed: {e}"))?;
        let pre = s2.pin().canonical().to_string();
        fvfs.schedule(StorageFault::FsyncFail {
            at: 1,
            count: u64::MAX,
        });
        if s2.apply(delta).is_ok() {
            return Err("apply under persistent fsync failure reported success".to_string());
        }
        if s2.read_only().is_none() {
            return Err("persistent fsync failure did not degrade the session".to_string());
        }
        let got = recover_canon(fvfs.inner().clone_files(), "fsync failure")?;
        if got != pre {
            return Err(
                "crash after failed fsync commit did not recover the pre-delta state".to_string(),
            );
        }
    }
    Ok(())
}
