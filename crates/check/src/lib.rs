//! # dtr-check — conformance harness
//!
//! Differential and metamorphic testing for the whole pipeline: random
//! *nested* scenarios (schemas mixing Rcd/Set/Choice per Definition 4.1,
//! conforming instances, well-formed queries, GLAV mappings) are pushed
//! through every subsystem and checked against
//!
//! * a [naive reference oracle](oracle) for query evaluation (differential
//!   testing, including the pushdown ablation and the §7.3 translation);
//! * [metamorphic laws](laws) lifted from the paper's theorems: PNF
//!   idempotence/commutativity/absorption, mapping satisfaction of the
//!   exchange output, the `q_where ⊑ q_what ⊑ q_why` provenance chain and
//!   Theorems 6.1/6.4, metastore encode→view round-trips, and
//!   `Display`→parse round-trips for queries, MXQL and XML.
//!
//! Everything is keyed by a `u64` seed: `run_case(seed, &cfg)` is fully
//! deterministic, so any failure reported by the test suite or the
//! `dtr-check` soak binary is reproducible with
//! `cargo run -p dtr-check -- --cases 1 --seed <seed>`.

pub mod faults;
pub mod generators;
pub mod laws;
pub mod oracle;

pub use dtr_mapping::exchange::ExchangeOptions;
pub use generators::{GenConfig, Scenario};

/// Runs every conformance law over the scenario drawn from `seed`.
/// Returns a description of the first violated law, if any.
pub fn run_case(seed: u64, cfg: &GenConfig) -> Result<(), String> {
    run_case_with(seed, cfg, &ExchangeOptions::default())
}

/// [`run_case`] with explicit exchange options for the primary exchange:
/// the soak binary uses this to run the whole law suite on top of a
/// parallel (or nested-loop) exchange as well as the default one.
pub fn run_case_with(seed: u64, cfg: &GenConfig, exchange: &ExchangeOptions) -> Result<(), String> {
    let mut rng = proptest::test_runner::TestRng::from_seed(seed);
    let scen = generators::gen_scenario(&mut rng, cfg);
    let tagged = scen
        .tagged_with(exchange)
        .map_err(|e| format!("exchange failed on generated scenario: {e}"))?;
    laws::law_source_queries(&mut rng, &scen, cfg)?;
    laws::law_mxql_queries(&mut rng, &scen, &tagged, cfg)?;
    laws::law_analyze(&mut rng, &scen, &tagged, cfg)?;
    laws::law_plan(&mut rng, &scen, &tagged, cfg)?;
    laws::law_pnf(&mut rng, cfg)?;
    laws::law_mappings(&scen, &tagged)?;
    laws::law_provenance(&tagged)?;
    laws::law_metastore(&tagged)?;
    laws::law_xml_roundtrip(&scen, &tagged)?;
    laws::law_parallel_exchange(&scen)?;
    laws::law_flight(&mut rng, &scen, cfg)?;
    laws::law_incremental(&mut rng, &scen, cfg, exchange)?;
    Ok(())
}

/// Runs the crash-recovery law over the scenario drawn from `seed`: a
/// seeded update stream committed through the durable session, with
/// storage faults (torn writes, bit flips, fsync failures, a torn
/// checkpoint rotation) injected at every crash point and recovery
/// asserted byte-identical to one of the two adjacent epochs. The soak
/// binary's `--storage-faults` mode drives this.
pub fn run_case_storage_faults(seed: u64, cfg: &GenConfig) -> Result<(), String> {
    let mut rng = proptest::test_runner::TestRng::from_seed(seed);
    let scen = generators::gen_scenario(&mut rng, cfg);
    laws::law_recovery(&mut rng, &scen, cfg)
}

/// The repro command for a failing case — printed by both the soak binary
/// and the proptest suites so any failure is one copy-paste away from a
/// deterministic rerun.
pub fn repro_command(seed: u64) -> String {
    format!("cargo run --release -p dtr-check -- --cases 1 --seed {seed}")
}

/// The repro command for a failing fault-injection case.
pub fn repro_command_faults(seed: u64) -> String {
    format!("cargo run --release -p dtr-check -- --faults --cases 1 --seed {seed}")
}

/// The repro command for a failing storage-fault (crash-recovery) case.
pub fn repro_command_storage_faults(seed: u64) -> String {
    format!("cargo run --release -p dtr-check -- --storage-faults --cases 1 --seed {seed}")
}
