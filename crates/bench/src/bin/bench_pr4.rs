//! Wall-clock comparison of the PR4 performance work: hash-join binding
//! enumeration and parallel mapping evaluation versus the previous
//! nested-loop, serial configuration, measured on the Section 8 portal
//! scenario (exchange + a representative MXQL query workload).
//!
//! ```text
//! bench_pr4 [--quick] [--out PATH]
//! ```
//!
//! Emits a JSON report (default `BENCH_PR4.json`) with per-scale timings
//! and speedups. Criterion is a dev-dependency and not available to bins,
//! so this runner uses plain `std::time` with repeated runs, keeping the
//! fastest of each configuration (the usual minimum-is-signal rule).

use dtr_mapping::exchange::ExchangeOptions;
use dtr_portal::scenario::{build, ScenarioConfig};
use dtr_query::ast::Query;
use dtr_query::eval::EvalOptions;
use dtr_query::parser::parse_query;
use std::time::Instant;

/// The query workload: a plain selection (engine-insensitive floor), a
/// target-side join, a nested-set join (resolving each house's
/// `housesInNeighborhood` stubs — the Section 8 debugging case — back to
/// full listings), an `@map` extension, and an MXQL mapping predicate
/// (exercising the triple index).
const QUERIES: &[&str] = &[
    "select h.hid, h.price from Portal.houses h where h.price > 800000",
    "select h.hid, a.phone from Portal.houses h, Portal.agents a where h.contact.name = a.name",
    "select h.hid, n.hid, h2.price \
     from Portal.houses h, h.housesInNeighborhood n, Portal.houses h2 \
     where n.hid = h2.hid",
    "select h.hid, h.price, m from Portal.houses h, h.price@map m where h.price > 800000",
    "select h.hid, m from Portal.houses h, h.price@map m \
     where h.price > 800000 and e = h.price@elem \
       and <'Yahoo':'/Yahoo/listings/price' -> m -> 'Portal':e>",
];

struct PathTiming {
    exchange_ms: f64,
    query_ms: f64,
    rows: usize,
}

/// How many times the query workload runs against each exchanged portal.
/// A portal materializes once and then serves queries, so the path under
/// test weights the query side accordingly (and the repetition smooths
/// per-query timer noise).
const QUERY_REPS: usize = 3;

fn run_path(n: usize, opts: &ExchangeOptions, queries: &[Query]) -> PathTiming {
    let scenario = build(ScenarioConfig {
        listings_per_source: n,
        ..Default::default()
    });
    let t0 = Instant::now();
    let tagged = scenario.exchange_with(opts).expect("exchange succeeds");
    let exchange_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let mut rows = 0usize;
    for _ in 0..QUERY_REPS {
        rows = 0;
        for q in queries {
            rows += tagged
                .run_with_options(q, opts.eval)
                .expect("query succeeds")
                .len();
        }
    }
    PathTiming {
        exchange_ms,
        query_ms: t1.elapsed().as_secs_f64() * 1e3,
        rows,
    }
}

fn best_of(reps: usize, n: usize, opts: &ExchangeOptions, queries: &[Query]) -> PathTiming {
    let mut best: Option<PathTiming> = None;
    for _ in 0..reps {
        let t = run_path(n, opts, queries);
        let better = match &best {
            Some(b) => t.exchange_ms + t.query_ms < b.exchange_ms + b.query_ms,
            None => true,
        };
        if better {
            best = Some(t);
        }
    }
    best.expect("at least one rep")
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_PR4.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out = args.next().expect("--out takes a path"),
            other => {
                eprintln!("bench_pr4: unknown argument `{other}`");
                eprintln!("usage: bench_pr4 [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let scales: &[usize] = if quick {
        &[25, 50]
    } else {
        &[25, 50, 100, 200, 400]
    };
    let reps = if quick { 1 } else { 5 };

    let queries: Vec<Query> = QUERIES
        .iter()
        .map(|t| parse_query(t).expect("workload query parses"))
        .collect();
    // The pre-optimization configuration this PR replaced as the default:
    // serial exchange, nested-loop binding enumeration, and per-row member
    // construction. All three knobs remain selectable so the comparison is
    // reproducible from this tree alone.
    let baseline_opts = ExchangeOptions {
        parallel: false,
        workers: 0,
        eval: EvalOptions {
            pushdown: true,
            hash_join: false,
        },
        member_templates: false,
    };
    // Everything this PR turned on: hash-join evaluation, compiled member
    // templates, and parallel foreach evaluation (auto-sized; on a
    // single-core host this resolves to the serial insert path).
    let optimized_opts = ExchangeOptions {
        parallel: true,
        ..ExchangeOptions::default()
    };

    let mut entries = Vec::new();
    for &n in scales {
        eprintln!("bench_pr4: scale {n} listings/source ({reps} rep(s) per config)");
        let base = best_of(reps, n, &baseline_opts, &queries);
        let opt = best_of(reps, n, &optimized_opts, &queries);
        assert_eq!(
            base.rows, opt.rows,
            "engines disagree on workload rows at scale {n}"
        );
        let total_base = base.exchange_ms + base.query_ms;
        let total_opt = opt.exchange_ms + opt.query_ms;
        eprintln!(
            "  serial+nested {total_base:.1} ms vs parallel+hash {total_opt:.1} ms \
             (speedup {:.2}x)",
            total_base / total_opt
        );
        entries.push(format!(
            "    {{\n      \"listings_per_source\": {n},\n      \"workload_rows\": {rows},\n      \
             \"baseline\": {{ \"config\": \"serial exchange + nested-loop eval + per-row member construction\", \
             \"exchange_ms\": {be:.3}, \"query_ms\": {bq:.3}, \"total_ms\": {bt:.3} }},\n      \
             \"optimized\": {{ \"config\": \"parallel exchange (auto-sized) + hash-join eval + member templates\", \
             \"exchange_ms\": {oe:.3}, \"query_ms\": {oq:.3}, \"total_ms\": {ot:.3} }},\n      \
             \"speedup_exchange\": {sx:.3},\n      \"speedup_query\": {sq:.3},\n      \
             \"speedup_total\": {st:.3}\n    }}",
            rows = base.rows,
            be = base.exchange_ms,
            bq = base.query_ms,
            bt = total_base,
            oe = opt.exchange_ms,
            oq = opt.query_ms,
            ot = total_opt,
            sx = base.exchange_ms / opt.exchange_ms,
            sq = base.query_ms / opt.query_ms,
            st = total_base / total_opt,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"PR4 hash-join + parallel exchange\",\n  \
         \"command\": \"cargo run --release -p dtr-bench --bin bench_pr4\",\n  \
         \"workload\": \"portal exchange (16 mappings, 5 sources) + {nq} MXQL queries x {qr} passes\",\n  \
         \"reps_per_config\": {reps},\n  \"query_reps\": {qr},\n  \"results\": [\n{body}\n  ]\n}}\n",
        nq = QUERIES.len(),
        qr = QUERY_REPS,
        body = entries.join(",\n"),
    );
    std::fs::write(&out, &json).expect("write report");
    println!("bench_pr4: wrote {out}");
}
