//! Wall-clock comparison of the PR4 performance work: hash-join binding
//! enumeration and parallel mapping evaluation versus the previous
//! nested-loop, serial configuration, measured on the Section 8 portal
//! scenario (exchange + a representative MXQL query workload).
//!
//! ```text
//! bench_pr4 [--quick] [--out PATH]
//! ```
//!
//! Emits a JSON report (default `BENCH_PR4.json`) with per-scale timings
//! and speedups. Criterion is a dev-dependency and not available to bins,
//! so this runner uses plain `std::time` with repeated runs, keeping the
//! fastest of each configuration (the usual minimum-is-signal rule).
//!
//! A fourth `instrumented` configuration runs the optimized path with the
//! statistics catalog and EXPLAIN ANALYZE enabled on every query; its
//! `stats_overhead_pct` is the cost of asking for full observability. A
//! fifth `flight` configuration runs the optimized path with the flight
//! recorder and audit log capturing; its `flight_overhead_pct` is the
//! marginal cost of the always-on time-domain tiers. A sixth `incremental`
//! configuration prices delta-driven maintenance: 1 % and 10 % modify
//! churn on `Yahoo.listings` applied through an `IncrementalSession`
//! versus a full re-exchange over the same mutated sources; the ratio at
//! 1 % churn is `delta_speedup`. A seventh `planned` configuration prices
//! the cost-based planner: the same query workload run from raw text
//! through `run_planned` with a cold plan cache (cleared before every
//! pass), a warm cache, and the legacy pre-parsed `run_with_options`
//! path; the cold/warm ratio is `plan_cache_hit_speedup`. An eighth
//! `durable` configuration prices the write-ahead log: the same churn
//! batches committed through a WAL-backed `DurableSession` (delta frame +
//! CRC + sync point + epoch publish) versus plain in-memory applies —
//! the gap is `wal_overhead_pct` — plus recovery wall time at two log
//! lengths (a full delta suffix to replay vs a fresh checkpoint).
//! Compare reports across commits with `bench_diff` (same crate).

use dtr_core::incremental::IncrementalSession;
use dtr_core::store::{DurableOptions, DurableSession};
use dtr_mapping::delta::SourceDelta;
use dtr_mapping::durable::MemVfs;
use dtr_mapping::exchange::{execute_mappings_with, ExchangeOptions};
use dtr_model::instance::Value;
use dtr_obs::guard::Budget;
use dtr_portal::scenario::{build, ScenarioConfig};
use dtr_query::ast::Query;
use dtr_query::eval::{EvalOptions, Source};
use dtr_query::functions::FunctionRegistry;
use dtr_query::parser::parse_query;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The query workload: a plain selection (engine-insensitive floor), a
/// target-side join, a nested-set join (resolving each house's
/// `housesInNeighborhood` stubs — the Section 8 debugging case — back to
/// full listings), an `@map` extension, and an MXQL mapping predicate
/// (exercising the triple index).
const QUERIES: &[&str] = &[
    "select h.hid, h.price from Portal.houses h where h.price > 800000",
    "select h.hid, a.phone from Portal.houses h, Portal.agents a where h.contact.name = a.name",
    "select h.hid, n.hid, h2.price \
     from Portal.houses h, h.housesInNeighborhood n, Portal.houses h2 \
     where n.hid = h2.hid",
    "select h.hid, h.price, m from Portal.houses h, h.price@map m where h.price > 800000",
    "select h.hid, m from Portal.houses h, h.price@map m \
     where h.price > 800000 and e = h.price@elem \
       and <'Yahoo':'/Yahoo/listings/price' -> m -> 'Portal':e>",
];

struct PathTiming {
    exchange_ms: f64,
    query_ms: f64,
    rows: usize,
    /// Per-mapping exchange wall-time percentiles `(p50, p90, p99)` in ns.
    latency_ns: Option<(u64, u64, u64)>,
}

/// What observability runs alongside a configuration.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Instrumentation compiled in but every tier gated off.
    Plain,
    /// Statistics catalog + EXPLAIN ANALYZE on every query (the PR6 cost).
    Instrumented,
    /// Optimized plus the time-domain tiers this PR adds: the flight
    /// recorder (span events feed its ring whether or not full profiling
    /// is on) and the audit log. The gap to `optimized` is
    /// `flight_overhead_pct` — the marginal cost of always-on recording.
    /// (Profile spans, the decision journal, and EXPLAIN ANALYZE have
    /// their own dedicated overhead measurements and stay off here.)
    Flight,
}

/// How many times the query workload runs against each exchanged portal.
/// A portal materializes once and then serves queries, so the path under
/// test weights the query side accordingly (and the repetition smooths
/// per-query timer noise).
const QUERY_REPS: usize = 3;

fn run_path(n: usize, opts: &ExchangeOptions, queries: &[Query], mode: Mode) -> PathTiming {
    let scenario = build(ScenarioConfig {
        listings_per_source: n,
        ..Default::default()
    });
    if mode == Mode::Instrumented {
        dtr_obs::stats::set_enabled(true);
    }
    if mode == Mode::Flight {
        dtr_obs::recorder::set_enabled(true);
        dtr_obs::audit::set_enabled(true);
    }
    let t0 = Instant::now();
    let tagged = scenario.exchange_with(opts).expect("exchange succeeds");
    let exchange_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let mut rows = 0usize;
    for _ in 0..QUERY_REPS {
        rows = 0;
        for q in queries {
            // The instrumented path is the full EXPLAIN ANALYZE mode: the
            // statistics catalog records scans/joins and every operator is
            // timed. Results are byte-identical to the plain path, which
            // the cross-config row assertion in `main` re-checks.
            // The flight path runs the same plain query loop (the recorder
            // and audit log capture it from the inside), so its gap to
            // `optimized` isolates the time-domain tiers.
            rows += if mode == Mode::Instrumented {
                tagged.run_analyzed(q).expect("query succeeds").0.len()
            } else {
                tagged
                    .run_with_options(q, opts.eval.clone())
                    .expect("query succeeds")
                    .len()
            };
        }
    }
    let query_ms = t1.elapsed().as_secs_f64() * 1e3;
    if mode == Mode::Instrumented {
        dtr_obs::stats::set_enabled(false);
    }
    if mode == Mode::Flight {
        dtr_obs::recorder::set_enabled(false);
        dtr_obs::audit::set_enabled(false);
        dtr_obs::recorder::reset();
        dtr_obs::audit::reset();
    }
    PathTiming {
        exchange_ms,
        query_ms,
        rows,
        latency_ns: tagged.report().latency_percentiles(),
    }
}

/// Runs every config once per rep, interleaved, keeping each config's best
/// total. Interleaving matters: consecutive same-config reps would let a
/// slow stretch of the host (noisy neighbour, thermal dip) land entirely
/// on one config and masquerade as a real difference.
fn best_of_each(
    reps: usize,
    n: usize,
    configs: &[(&ExchangeOptions, Mode)],
    queries: &[Query],
) -> Vec<PathTiming> {
    let mut best: Vec<Option<PathTiming>> = configs.iter().map(|_| None).collect();
    for _ in 0..reps {
        for (slot, (opts, mode)) in best.iter_mut().zip(configs) {
            let t = run_path(n, opts, queries, *mode);
            let better = match slot {
                Some(b) => t.exchange_ms + t.query_ms < b.exchange_ms + b.query_ms,
                None => true,
            };
            if better {
                *slot = Some(t);
            }
        }
    }
    best.into_iter()
        .map(|b| b.expect("at least one rep"))
        .collect()
}

/// Timings for the `planned` configuration: the query workload run from
/// raw text through the cost-based planner with a cold cache (plan
/// compiled every pass), a warm cache (compiled once, structurally
/// confirmed on every hit), and the legacy pre-parsed evaluation path.
struct PlannedTiming {
    legacy_ms: f64,
    cold_ms: f64,
    cached_ms: f64,
    rows: usize,
}

/// One rep of the planned path. One exchange serves all three variants so
/// the comparison isolates query-side planning cost; each variant runs the
/// full workload `QUERY_REPS` times like `run_path` does.
fn run_planned(n: usize, opts: &ExchangeOptions, queries: &[Query]) -> PlannedTiming {
    let scenario = build(ScenarioConfig {
        listings_per_source: n,
        ..Default::default()
    });
    let tagged = scenario.exchange_with(opts).expect("exchange succeeds");
    let t0 = Instant::now();
    let mut legacy_rows = 0usize;
    for _ in 0..QUERY_REPS {
        legacy_rows = 0;
        for q in queries {
            legacy_rows += tagged
                .run_with_options(q, opts.eval.clone())
                .expect("query succeeds")
                .len();
        }
    }
    let legacy_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let mut cold_rows = 0usize;
    for _ in 0..QUERY_REPS {
        cold_rows = 0;
        tagged.clear_plan_cache();
        for text in QUERIES {
            cold_rows += tagged
                .run_planned(text)
                .expect("planned query succeeds")
                .len();
        }
    }
    let cold_ms = t1.elapsed().as_secs_f64() * 1e3;
    // The cache is warm from the last cold pass; every lookup below is a
    // (structurally confirmed) hit.
    let t2 = Instant::now();
    let mut cached_rows = 0usize;
    for _ in 0..QUERY_REPS {
        cached_rows = 0;
        for text in QUERIES {
            cached_rows += tagged
                .run_planned(text)
                .expect("planned query succeeds")
                .len();
        }
    }
    let cached_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        legacy_rows, cold_rows,
        "planned (cold) run changed workload rows at scale {n}"
    );
    assert_eq!(
        cold_rows, cached_rows,
        "plan-cache hit changed workload rows at scale {n}"
    );
    let stats = tagged.plan_cache_stats();
    assert_eq!(stats.collisions, 0, "unexpected plan-cache collision");
    PlannedTiming {
        legacy_ms,
        cold_ms,
        cached_ms,
        rows: cached_rows,
    }
}

/// Best-of-`reps` for the planned path, keeping the rep with the best
/// combined time across the three variants.
fn best_planned(reps: usize, n: usize, opts: &ExchangeOptions, queries: &[Query]) -> PlannedTiming {
    (0..reps)
        .map(|_| run_planned(n, opts, queries))
        .min_by(|a, b| {
            (a.legacy_ms + a.cold_ms + a.cached_ms)
                .total_cmp(&(b.legacy_ms + b.cold_ms + b.cached_ms))
        })
        .expect("at least one rep")
}

/// Timings for the `incremental` configuration: delta-driven maintenance
/// at 1 % and 10 % churn versus a full re-exchange over the same mutated
/// sources.
struct IncrementalTiming {
    build_ms: f64,
    delta_1pct_ms: f64,
    delta_10pct_ms: f64,
    full_reexchange_ms: f64,
    edits_1pct: usize,
    edits_10pct: usize,
}

/// A churn batch: modifies the first `frac·n` members of `Yahoo.listings`
/// (rewriting their free-text `comments` field so every touched member is
/// a genuine change). Indices descend so each modify (a delete + append
/// under batch resolution) leaves the earlier targets in place.
fn churn_delta(session: &IncrementalSession, frac: f64, tag: &str) -> (SourceDelta, usize) {
    let inst = &session.sources()[0];
    let root = inst.root("Yahoo").expect("Yahoo root");
    let set = inst.child_by_label(root, "listings").expect("listings set");
    let members = inst.set_members(set).expect("set members").to_vec();
    let k = ((frac * members.len() as f64).ceil() as usize).clamp(1, members.len());
    let mut delta = SourceDelta::new();
    for i in (0..k).rev() {
        let mut v = inst.to_value(members[i]);
        if let Value::Record(fields) = &mut v {
            for (l, f) in fields.iter_mut() {
                if l.as_str() == "comments" {
                    *f = Value::str(format!("churn-{tag}-{i}"));
                }
            }
        }
        delta = delta.modify("Yahoo.listings", i, v);
    }
    (delta, k)
}

/// One rep of the incremental path: build the session (a full exchange plus
/// the retraction index), apply a 1 % then a 10 % churn batch, then price a
/// full re-exchange over the same mutated sources — what a non-incremental
/// pipeline pays for the identical update.
fn run_incremental(n: usize, opts: &ExchangeOptions, rep: usize) -> IncrementalTiming {
    let scenario = build(ScenarioConfig {
        listings_per_source: n,
        ..Default::default()
    });
    let t0 = Instant::now();
    let mut session =
        IncrementalSession::with_options(scenario.setting, scenario.sources, opts.clone())
            .expect("incremental session builds");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (d1, edits_1pct) = churn_delta(&session, 0.01, &format!("a{rep}"));
    let t1 = Instant::now();
    session.apply(&d1).expect("1% churn applies");
    let delta_1pct_ms = t1.elapsed().as_secs_f64() * 1e3;
    let (d10, edits_10pct) = churn_delta(&session, 0.10, &format!("b{rep}"));
    let t10 = Instant::now();
    session.apply(&d10).expect("10% churn applies");
    let delta_10pct_ms = t10.elapsed().as_secs_f64() * 1e3;
    let views: Vec<Source> = session
        .setting()
        .source_schemas()
        .iter()
        .zip(session.sources())
        .map(|(schema, instance)| Source { schema, instance })
        .collect();
    let funcs = FunctionRegistry::with_builtins();
    let tf = Instant::now();
    execute_mappings_with(
        &views,
        session.setting().target_schema(),
        session.setting().mappings(),
        &funcs,
        opts,
    )
    .expect("full re-exchange succeeds");
    let full_reexchange_ms = tf.elapsed().as_secs_f64() * 1e3;
    IncrementalTiming {
        build_ms,
        delta_1pct_ms,
        delta_10pct_ms,
        full_reexchange_ms,
        edits_1pct,
        edits_10pct,
    }
}

/// Best-of-`reps` for the incremental path, keeping the rep with the best
/// combined delta + full-re-exchange time (the two sides of the ratio).
fn best_incremental(reps: usize, n: usize, opts: &ExchangeOptions) -> IncrementalTiming {
    (0..reps)
        .map(|r| run_incremental(n, opts, r))
        .min_by(|a, b| {
            let ka = a.delta_1pct_ms + a.delta_10pct_ms + a.full_reexchange_ms;
            let kb = b.delta_1pct_ms + b.delta_10pct_ms + b.full_reexchange_ms;
            ka.total_cmp(&kb)
        })
        .expect("at least one rep")
}

/// Timings for the `durable` configuration: the same churn batches
/// committed through a WAL-backed [`DurableSession`] versus plain
/// in-memory [`IncrementalSession`] applies, plus recovery wall time at
/// two log lengths. The log lives on [`MemVfs`] so the numbers price the
/// commit protocol (delta serialization, framing, CRC, sync points,
/// epoch publish) rather than one host's disk latency.
struct DurableTiming {
    inmem_build_ms: f64,
    create_ms: f64,
    inmem_apply_ms: f64,
    wal_apply_ms: f64,
    /// Time inside the WAL commit path alone (serialize + frame + CRC +
    /// append + sync) — the marginal cost of durability. The rest of the
    /// `wal_apply_ms` − `inmem_apply_ms` gap is `publish_ms`.
    wal_commit_ms: f64,
    /// Time cloning state into epoch snapshots for concurrent readers —
    /// the cost of snapshot isolation, not of the log.
    publish_ms: f64,
    checkpoint_ms: f64,
    recovery_replay_ms: f64,
    recovery_cold_ms: f64,
    replayed: usize,
    wal_bytes: u64,
}

/// Churn batches committed per durable rep — 10 % modify churn each, so
/// the per-batch WAL cost is priced against real maintenance work,
/// amortized the way production batches are.
const DURABLE_BATCHES: usize = 6;

/// One rep of the durable path: build a plain in-memory session and a
/// WAL-backed one from the same scenario, commit identical churn batches
/// through both, then measure recovery from the resulting log twice —
/// once with the full delta suffix to replay and once right after a
/// checkpoint folded it away.
fn run_durable(n: usize, opts: &ExchangeOptions, rep: usize) -> DurableTiming {
    let scenario = build(ScenarioConfig {
        listings_per_source: n,
        ..Default::default()
    });
    let t0 = Instant::now();
    let mut inmem =
        IncrementalSession::with_options(scenario.setting, scenario.sources, opts.clone())
            .expect("in-memory session builds");
    let inmem_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let scenario = build(ScenarioConfig {
        listings_per_source: n,
        ..Default::default()
    });
    let vfs = Arc::new(MemVfs::new());
    let dopts = DurableOptions {
        exchange: opts.clone(),
        checkpoint_every: 0,
        ..DurableOptions::default()
    };
    let t1 = Instant::now();
    let mut durable = DurableSession::create(
        scenario.setting,
        scenario.sources,
        None,
        vfs.clone(),
        "wal",
        dopts.clone(),
    )
    .expect("durable session creates");
    let create_ms = t1.elapsed().as_secs_f64() * 1e3;
    let (mut inmem_apply_ms, mut wal_apply_ms) = (0.0f64, 0.0f64);
    for b in 0..DURABLE_BATCHES {
        // The delta is derived from the in-memory session's state; both
        // sessions started identical and stay identical, so the exact
        // same batch commits on both sides.
        let (delta, _) = churn_delta(&inmem, 0.10, &format!("w{rep}-{b}"));
        let t = Instant::now();
        inmem.apply(&delta).expect("in-memory churn applies");
        inmem_apply_ms += t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        durable.apply(&delta).expect("durable churn applies");
        wal_apply_ms += t.elapsed().as_secs_f64() * 1e3;
    }
    let wal_bytes = durable.wal_committed_len();
    let wal_commit_ms = durable.wal_commit_nanos() as f64 / 1e6;
    let publish_ms = durable.publish_nanos() as f64 / 1e6;
    // Recovery with the whole delta suffix still in the log.
    let image = vfs.clone_files();
    let t = Instant::now();
    let (_, report) = DurableSession::open(Arc::new(image), "wal", dopts.clone())
        .expect("recovery with replay succeeds");
    let recovery_replay_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report.replayed, DURABLE_BATCHES,
        "every committed batch replays at scale {n}"
    );
    // Fold the suffix into a fresh checkpoint and price recovery again.
    let t = Instant::now();
    durable.checkpoint().expect("checkpoint rotates");
    let checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
    let image = vfs.clone_files();
    let t = Instant::now();
    let (_, report) = DurableSession::open(Arc::new(image), "wal", dopts)
        .expect("post-checkpoint recovery succeeds");
    let recovery_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.replayed, 0, "checkpoint folded the suffix");
    DurableTiming {
        inmem_build_ms,
        create_ms,
        inmem_apply_ms,
        wal_apply_ms,
        wal_commit_ms,
        publish_ms,
        checkpoint_ms,
        recovery_replay_ms,
        recovery_cold_ms,
        replayed: DURABLE_BATCHES,
        wal_bytes,
    }
}

/// Best-of-`reps` for the durable path, keeping the rep with the best
/// combined apply time on both sides of the overhead ratio.
fn best_durable(reps: usize, n: usize, opts: &ExchangeOptions) -> DurableTiming {
    (0..reps)
        .map(|r| run_durable(n, opts, r))
        .min_by(|a, b| {
            (a.wal_apply_ms + a.inmem_apply_ms).total_cmp(&(b.wal_apply_ms + b.inmem_apply_ms))
        })
        .expect("at least one rep")
}

/// The `latency_ns` fragment of one config's JSON object (empty when the
/// exchange produced no per-mapping timings).
fn latency_json(l: Option<(u64, u64, u64)>) -> String {
    match l {
        Some((p50, p90, p99)) => {
            format!(", \"latency_ns\": {{ \"p50\": {p50}, \"p90\": {p90}, \"p99\": {p99} }}")
        }
        None => String::new(),
    }
}

fn main() {
    let mut quick = false;
    let mut out = String::from("BENCH_PR4.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("bench_pr4: --out takes a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("bench_pr4: unknown argument `{other}`");
                eprintln!("usage: bench_pr4 [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let scales: &[usize] = if quick {
        &[25, 50]
    } else {
        &[25, 50, 100, 200, 400]
    };
    // Even quick runs take 3 interleaved reps: the overhead percentages
    // compare configs pairwise, and min-of-1 on a shared runner is pure
    // noise.
    let reps = if quick { 3 } else { 5 };

    let queries: Vec<Query> = QUERIES
        .iter()
        .map(|t| parse_query(t).expect("workload query parses"))
        .collect();
    // The pre-optimization configuration this PR replaced as the default:
    // serial exchange, nested-loop binding enumeration, and per-row member
    // construction. All three knobs remain selectable so the comparison is
    // reproducible from this tree alone.
    let baseline_opts = ExchangeOptions {
        parallel: false,
        workers: 0,
        eval: EvalOptions {
            pushdown: true,
            hash_join: false,
            ..Default::default()
        },
        member_templates: false,
        ..Default::default()
    };
    // Everything this PR turned on: hash-join evaluation, compiled member
    // templates, and parallel foreach evaluation (auto-sized; on a
    // single-core host this resolves to the serial insert path).
    let optimized_opts = ExchangeOptions {
        parallel: true,
        ..ExchangeOptions::default()
    };
    // The optimized path with a guard budget far above the workload (1 h
    // deadline, billion-row caps): measures what the PR5 resource meters
    // cost on a run that never trips — the acceptance bar is < 3 %. The
    // budget goes on both the exchange and the query workload's eval
    // options so every meter in the pipeline is armed.
    let generous = Budget {
        max_bindings: Some(1_000_000_000),
        max_rows: Some(1_000_000_000),
        max_result_bytes: Some(1 << 40),
        deadline: Some(Duration::from_secs(3600)),
        ..Budget::default()
    };
    let guarded_opts = ExchangeOptions {
        budget: generous.clone(),
        eval: EvalOptions {
            budget: generous,
            ..optimized_opts.eval.clone()
        },
        ..optimized_opts.clone()
    };

    let mut entries = Vec::new();
    for &n in scales {
        eprintln!("bench_pr4: scale {n} listings/source ({reps} rep(s) per config)");
        let mut timings = best_of_each(
            reps,
            n,
            &[
                (&baseline_opts, Mode::Plain),
                (&optimized_opts, Mode::Plain),
                (&guarded_opts, Mode::Plain),
                // The optimized configuration with the full dtr-stats
                // instrumentation on: statistics catalog collection during
                // the exchange and EXPLAIN ANALYZE per-operator timing on
                // every query. The gap between `optimized` (instrumentation
                // compiled in but disabled) and `instrumented` is what the
                // observability work costs when you ask for it; `optimized`
                // against the committed report (via bench_diff) is what it
                // costs when you don't.
                (&optimized_opts, Mode::Instrumented),
                // Optimized plus the flight recorder and audit log. The
                // gap to `optimized` is `flight_overhead_pct`.
                (&optimized_opts, Mode::Flight),
            ],
            &queries,
        );
        let flight = timings.pop().expect("flight timing");
        let instrumented = timings.pop().expect("instrumented timing");
        let guarded = timings.pop().expect("guarded timing");
        let opt = timings.pop().expect("optimized timing");
        let base = timings.pop().expect("baseline timing");
        assert_eq!(
            base.rows, opt.rows,
            "engines disagree on workload rows at scale {n}"
        );
        assert_eq!(
            opt.rows, guarded.rows,
            "guarded run changed workload rows at scale {n}"
        );
        assert_eq!(
            opt.rows, instrumented.rows,
            "EXPLAIN ANALYZE changed workload rows at scale {n}"
        );
        assert_eq!(
            opt.rows, flight.rows,
            "flight recording changed workload rows at scale {n}"
        );
        let total_base = base.exchange_ms + base.query_ms;
        let total_opt = opt.exchange_ms + opt.query_ms;
        let total_guarded = guarded.exchange_ms + guarded.query_ms;
        let total_instr = instrumented.exchange_ms + instrumented.query_ms;
        let total_flight = flight.exchange_ms + flight.query_ms;
        let guard_overhead_pct = 100.0 * (total_guarded - total_opt) / total_opt;
        let stats_overhead_pct = 100.0 * (total_instr - total_opt) / total_opt;
        let flight_overhead_pct = 100.0 * (total_flight - total_opt) / total_opt;
        // The incremental configuration: delta maintenance at 1 %/10 %
        // churn against a full re-exchange over the same mutated sources.
        let inc = best_incremental(reps.min(3), n, &optimized_opts);
        let delta_speedup = inc.full_reexchange_ms / inc.delta_1pct_ms;
        // The planned configuration: cold-plan vs cached-plan vs legacy
        // query evaluation on one shared exchange.
        let planned = best_planned(reps.min(3), n, &optimized_opts, &queries);
        let plan_cache_hit_speedup = planned.cold_ms / planned.cached_ms;
        // The durable configuration: WAL-backed applies vs in-memory
        // applies of the same churn, plus recovery at two log lengths.
        let dur = best_durable(reps.min(3), n, &optimized_opts);
        // The WAL overhead is the log-commit path alone, priced against
        // the bare engine apply; the epoch-snapshot clone is a separate
        // line item (`publish_ms`) since it buys reader isolation, not
        // durability, and is paid whether or not the log is on.
        let wal_overhead_pct = 100.0 * dur.wal_commit_ms / dur.inmem_apply_ms;
        assert_eq!(
            planned.rows, base.rows,
            "planner changed workload rows at scale {n}"
        );
        eprintln!(
            "  planned: legacy {:.1} ms; cold plans {:.1} ms; cached plans {:.1} ms \
             (plan_cache_hit_speedup {plan_cache_hit_speedup:.2}x)",
            planned.legacy_ms, planned.cold_ms, planned.cached_ms,
        );
        eprintln!(
            "  incremental: build {:.1} ms; 1% churn ({} edit(s)) {:.2} ms vs full \
             re-exchange {:.1} ms (delta_speedup {:.1}x); 10% churn ({} edit(s)) {:.2} ms",
            inc.build_ms,
            inc.edits_1pct,
            inc.delta_1pct_ms,
            inc.full_reexchange_ms,
            delta_speedup,
            inc.edits_10pct,
            inc.delta_10pct_ms,
        );
        eprintln!(
            "  durable: {} x 10% churn in-memory {:.2} ms vs WAL-backed {:.2} ms \
             (log commit {:.2} ms, wal_overhead_pct {wal_overhead_pct:+.2} %; \
             snapshot publish {:.2} ms); recovery replay({}) {:.1} ms vs \
             post-checkpoint {:.1} ms (checkpoint {:.1} ms, log {} bytes)",
            dur.replayed,
            dur.inmem_apply_ms,
            dur.wal_apply_ms,
            dur.wal_commit_ms,
            dur.publish_ms,
            dur.replayed,
            dur.recovery_replay_ms,
            dur.recovery_cold_ms,
            dur.checkpoint_ms,
            dur.wal_bytes,
        );
        eprintln!(
            "  serial+nested {total_base:.1} ms vs parallel+hash {total_opt:.1} ms \
             (speedup {:.2}x); guarded {total_guarded:.1} ms ({guard_overhead_pct:+.2} %); \
             stats+analyze {total_instr:.1} ms ({stats_overhead_pct:+.2} %); \
             flight+audit {total_flight:.1} ms ({flight_overhead_pct:+.2} %)",
            total_base / total_opt
        );
        entries.push(format!(
            "    {{\n      \"listings_per_source\": {n},\n      \"workload_rows\": {rows},\n      \
             \"baseline\": {{ \"config\": \"serial exchange + nested-loop eval + per-row member construction\", \
             \"exchange_ms\": {be:.3}, \"query_ms\": {bq:.3}, \"total_ms\": {bt:.3}{bl} }},\n      \
             \"optimized\": {{ \"config\": \"parallel exchange (auto-sized) + hash-join eval + member templates\", \
             \"exchange_ms\": {oe:.3}, \"query_ms\": {oq:.3}, \"total_ms\": {ot:.3}{ol} }},\n      \
             \"guarded\": {{ \"config\": \"optimized + generous resource budget (1h deadline, 1e9-row caps; never trips)\", \
             \"exchange_ms\": {ge:.3}, \"query_ms\": {gq:.3}, \"total_ms\": {gt:.3}{gl} }},\n      \
             \"instrumented\": {{ \"config\": \"optimized + stats catalog + EXPLAIN ANALYZE on every query\", \
             \"exchange_ms\": {ie:.3}, \"query_ms\": {iq:.3}, \"total_ms\": {it:.3}{il} }},\n      \
             \"flight\": {{ \"config\": \"optimized + flight recorder + audit log\", \
             \"exchange_ms\": {fe:.3}, \"query_ms\": {fq:.3}, \"total_ms\": {ft:.3}{fl} }},\n      \
             \"incremental\": {{ \"config\": \"delta-driven maintenance (IncrementalSession) vs full re-exchange, modify churn on Yahoo.listings\", \
             \"build_ms\": {nb:.3}, \"delta_1pct_ms\": {n1:.3}, \"delta_10pct_ms\": {n10:.3}, \
             \"full_reexchange_ms\": {nf:.3}, \"edits_1pct\": {k1}, \"edits_10pct\": {k10}, \"total_ms\": {nt:.3} }},\n      \
             \"planned\": {{ \"config\": \"cost-based planner: run_planned from raw text, cold cache vs warm cache vs legacy pre-parsed eval\", \
             \"legacy_query_ms\": {pl:.3}, \"cold_plan_query_ms\": {pc:.3}, \"cached_plan_query_ms\": {pw:.3}, \"total_ms\": {pt:.3} }},\n      \
             \"durable\": {{ \"config\": \"WAL-backed DurableSession (MemVfs) vs in-memory applies, {db} x 10% churn batches; wal_overhead_pct prices the log-commit path, publish_ms the epoch-snapshot clone; recovery at full-suffix and post-checkpoint log lengths\", \
             \"inmem_build_ms\": {dib:.3}, \"create_ms\": {dcr:.3}, \"inmem_apply_ms\": {dia:.3}, \"wal_apply_ms\": {dwa:.3}, \
             \"wal_commit_ms\": {dwc:.3}, \"publish_ms\": {dpu:.3}, \
             \"checkpoint_ms\": {dck:.3}, \"recovery_replay_ms\": {drr:.3}, \"recovery_cold_ms\": {drc:.3}, \
             \"replayed_deltas\": {drp}, \"wal_bytes\": {dwb}, \"total_ms\": {dwa:.3} }},\n      \
             \"speedup_exchange\": {sx:.3},\n      \"speedup_query\": {sq:.3},\n      \
             \"speedup_total\": {st:.3},\n      \"delta_speedup\": {ds:.3},\n      \
             \"plan_cache_hit_speedup\": {ph:.3},\n      \"wal_overhead_pct\": {wo:.3},\n      \"guard_overhead_pct\": {gp:.3},\n      \
             \"stats_overhead_pct\": {sp:.3},\n      \"flight_overhead_pct\": {fp:.3}\n    }}",
            rows = base.rows,
            be = base.exchange_ms,
            bq = base.query_ms,
            bt = total_base,
            bl = latency_json(base.latency_ns),
            oe = opt.exchange_ms,
            oq = opt.query_ms,
            ot = total_opt,
            ol = latency_json(opt.latency_ns),
            ge = guarded.exchange_ms,
            gq = guarded.query_ms,
            gt = total_guarded,
            gl = latency_json(guarded.latency_ns),
            ie = instrumented.exchange_ms,
            iq = instrumented.query_ms,
            it = total_instr,
            il = latency_json(instrumented.latency_ns),
            fe = flight.exchange_ms,
            fq = flight.query_ms,
            ft = total_flight,
            fl = latency_json(flight.latency_ns),
            nb = inc.build_ms,
            n1 = inc.delta_1pct_ms,
            n10 = inc.delta_10pct_ms,
            nf = inc.full_reexchange_ms,
            k1 = inc.edits_1pct,
            k10 = inc.edits_10pct,
            nt = inc.delta_1pct_ms + inc.delta_10pct_ms,
            pl = planned.legacy_ms,
            pc = planned.cold_ms,
            pw = planned.cached_ms,
            pt = planned.cold_ms + planned.cached_ms,
            ph = plan_cache_hit_speedup,
            db = DURABLE_BATCHES,
            dib = dur.inmem_build_ms,
            dcr = dur.create_ms,
            dia = dur.inmem_apply_ms,
            dwa = dur.wal_apply_ms,
            dwc = dur.wal_commit_ms,
            dpu = dur.publish_ms,
            dck = dur.checkpoint_ms,
            drr = dur.recovery_replay_ms,
            drc = dur.recovery_cold_ms,
            drp = dur.replayed,
            dwb = dur.wal_bytes,
            wo = wal_overhead_pct,
            ds = delta_speedup,
            sx = base.exchange_ms / opt.exchange_ms,
            sq = base.query_ms / opt.query_ms,
            st = total_base / total_opt,
            gp = guard_overhead_pct,
            sp = stats_overhead_pct,
            fp = flight_overhead_pct,
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"PR4 hash-join + parallel exchange\",\n  \
         \"command\": \"cargo run --release -p dtr-bench --bin bench_pr4\",\n  \
         \"workload\": \"portal exchange (16 mappings, 5 sources) + {nq} MXQL queries x {qr} passes\",\n  \
         \"reps_per_config\": {reps},\n  \"query_reps\": {qr},\n  \"results\": [\n{body}\n  ]\n}}\n",
        nq = QUERIES.len(),
        qr = QUERY_REPS,
        body = entries.join(",\n"),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("bench_pr4: io error: write report {out}: {e}");
        std::process::exit(4);
    }
    println!("bench_pr4: wrote {out}");
}
