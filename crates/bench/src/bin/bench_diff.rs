//! Bench-regression diff: compares two `BENCH_*.json` reports (the schema
//! `bench_pr4` emits) and reports per-scale, per-config timing deltas.
//!
//! ```text
//! bench_diff BASELINE.json CANDIDATE.json [--threshold-pct N] [--report-only]
//! ```
//!
//! Scales are matched by `listings_per_source` (the intersection of both
//! reports); configs (`baseline`, `optimized`, `guarded`, `instrumented`)
//! are compared when present in both entries, so reports from trees before
//! and after a config was added still diff cleanly. A positive delta means
//! the candidate is slower. The process exits nonzero when any config's
//! `total_ms` regressed by more than the threshold (default 10 %) unless
//! `--report-only` is given — wall-clock benches on shared CI runners are
//! noisy, so CI runs report-only and humans read the table.

use serde_json::Value;
use std::process::exit;

/// The per-scale config objects `bench_pr4` may emit, in report order.
const CONFIGS: &[&str] = &["baseline", "optimized", "guarded", "instrumented"];

struct Entry {
    scale: u64,
    /// `(config, total_ms)` for each config present.
    totals: Vec<(String, f64)>,
}

fn load(path: &str) -> Vec<Entry> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let v: Value =
        serde_json::from_str(&text).unwrap_or_else(|_| die(&format!("{path}: not valid JSON")));
    let Some(results) = v.get("results").and_then(Value::as_array) else {
        die(&format!("{path}: no `results` array"));
    };
    results
        .iter()
        .filter_map(|r| {
            let scale = r.get("listings_per_source").and_then(Value::as_u64)?;
            let totals = CONFIGS
                .iter()
                .filter_map(|&c| {
                    let ms = r.get(c)?.get("total_ms").and_then(Value::as_f64)?;
                    Some((c.to_string(), ms))
                })
                .collect();
            Some(Entry { scale, totals })
        })
        .collect()
}

fn die(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    exit(2)
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut report_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold-pct" => {
                threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threshold-pct takes a number"));
            }
            "--report-only" => report_only = true,
            other if other.starts_with("--") => {
                die(&format!(
                    "unknown flag {other}\nusage: bench_diff BASELINE.json CANDIDATE.json \
                     [--threshold-pct N] [--report-only]"
                ));
            }
            path => paths.push(path.to_string()),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        die("expected exactly two report paths\nusage: bench_diff BASELINE.json CANDIDATE.json [--threshold-pct N] [--report-only]");
    };
    let base = load(base_path);
    let cand = load(cand_path);

    println!("bench_diff: {base_path} (baseline) vs {cand_path} (candidate)");
    println!("  threshold: {threshold_pct:.1} % on total_ms (positive delta = candidate slower)");
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for b in &base {
        let Some(c) = cand.iter().find(|c| c.scale == b.scale) else {
            println!("  scale {:>6}: only in baseline (skipped)", b.scale);
            continue;
        };
        println!("  scale {:>6}:", b.scale);
        for (config, base_ms) in &b.totals {
            let Some((_, cand_ms)) = c.totals.iter().find(|(k, _)| k == config) else {
                println!("    {config:<12} only in baseline (skipped)");
                continue;
            };
            let delta_pct = 100.0 * (cand_ms - base_ms) / base_ms;
            let flag = if delta_pct > threshold_pct {
                regressions.push(format!(
                    "scale {} {config}: {base_ms:.1} ms -> {cand_ms:.1} ms ({delta_pct:+.1} %)",
                    b.scale
                ));
                "  REGRESSION"
            } else {
                ""
            };
            println!(
                "    {config:<12} {base_ms:>10.1} ms -> {cand_ms:>10.1} ms  ({delta_pct:+6.1} %){flag}"
            );
            compared += 1;
        }
    }
    for c in &cand {
        if !base.iter().any(|b| b.scale == c.scale) {
            println!("  scale {:>6}: only in candidate (skipped)", c.scale);
        }
    }
    if compared == 0 {
        die("no comparable (scale, config) pairs between the two reports");
    }
    if regressions.is_empty() {
        println!("bench_diff: OK — {compared} comparison(s), none past the threshold");
    } else {
        println!(
            "bench_diff: {} of {compared} comparison(s) regressed past {threshold_pct:.1} %:",
            regressions.len()
        );
        for r in &regressions {
            println!("  {r}");
        }
        if report_only {
            println!("bench_diff: --report-only, exiting 0");
        } else {
            exit(1);
        }
    }
}
