//! Bench-regression diff: compares two `BENCH_*.json` reports (the schema
//! `bench_pr4` emits) and reports per-scale, per-config timing deltas.
//!
//! ```text
//! bench_diff BASELINE.json CANDIDATE.json [--threshold-pct N]
//!            [--latency-threshold-pct N] [--report-only]
//! ```
//!
//! Scales are matched by `listings_per_source` (the intersection of both
//! reports); configs (`baseline`, `optimized`, `guarded`, `instrumented`,
//! `flight`, `incremental`, `planned`) are compared when present in both
//! entries, so reports from
//! trees before and after a config was added still diff cleanly. A positive
//! delta means the candidate is slower. Two metrics are checked:
//!
//! * `total_ms` per config, against `--threshold-pct` (default 10 %);
//! * per-mapping exchange latency percentiles (`latency_ns.p50` /
//!   `latency_ns.p99`), against `--latency-threshold-pct` (default 25 % —
//!   tail percentiles quantize to histogram-ish steps and jitter more than
//!   totals). When only one side carries `latency_ns` (pre-flight-recorder
//!   trees, or configs that never emit it) the latency comparison is
//!   skipped with a one-line notice.
//!
//! The process exits nonzero when any comparison regressed past its
//! threshold unless `--report-only` is given — wall-clock benches on shared
//! CI runners are noisy, so CI runs report-only and humans read the table.

use dtr_obs::health::delta_pct;
use serde_json::Value;
use std::process::exit;

/// The per-scale config objects `bench_pr4` may emit, in report order.
const CONFIGS: &[&str] = &[
    "baseline",
    "optimized",
    "guarded",
    "instrumented",
    "flight",
    // `total_ms` for the incremental config is the combined 1 % + 10 %
    // churn delta-apply time (its full-re-exchange yardstick is priced
    // separately inside bench_pr4).
    "incremental",
    // `total_ms` for the planned config is the combined cold + cached
    // plan query time (its legacy yardstick is priced separately).
    "planned",
    // `total_ms` for the durable config is the WAL-backed apply time for
    // the churn batches (its in-memory yardstick and the recovery
    // timings are priced separately inside bench_pr4).
    "durable",
];

struct ConfigNumbers {
    config: String,
    total_ms: f64,
    /// `(p50, p99)` exchange latency in ns, when the report carries it.
    latency_ns: Option<(f64, f64)>,
}

struct Entry {
    scale: u64,
    configs: Vec<ConfigNumbers>,
}

fn load(path: &str) -> Vec<Entry> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let v: Value =
        serde_json::from_str(&text).unwrap_or_else(|_| die(&format!("{path}: not valid JSON")));
    let Some(results) = v.get("results").and_then(Value::as_array) else {
        die(&format!("{path}: no `results` array"));
    };
    results
        .iter()
        .filter_map(|r| {
            let scale = r.get("listings_per_source").and_then(Value::as_u64)?;
            let configs = CONFIGS
                .iter()
                .filter_map(|&c| {
                    let obj = r.get(c)?;
                    let total_ms = obj.get("total_ms").and_then(Value::as_f64)?;
                    let latency_ns = obj.get("latency_ns").and_then(|l| {
                        Some((
                            l.get("p50").and_then(Value::as_f64)?,
                            l.get("p99").and_then(Value::as_f64)?,
                        ))
                    });
                    Some(ConfigNumbers {
                        config: c.to_string(),
                        total_ms,
                        latency_ns,
                    })
                })
                .collect();
            Some(Entry { scale, configs })
        })
        .collect()
}

fn die(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    exit(2)
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold_pct = 10.0f64;
    let mut latency_threshold_pct = 25.0f64;
    let mut report_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold-pct" => {
                threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threshold-pct takes a number"));
            }
            "--latency-threshold-pct" => {
                latency_threshold_pct = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--latency-threshold-pct takes a number"));
            }
            "--report-only" => report_only = true,
            other if other.starts_with("--") => {
                die(&format!(
                    "unknown flag {other}\nusage: bench_diff BASELINE.json CANDIDATE.json \
                     [--threshold-pct N] [--latency-threshold-pct N] [--report-only]"
                ));
            }
            path => paths.push(path.to_string()),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        die("expected exactly two report paths\nusage: bench_diff BASELINE.json CANDIDATE.json [--threshold-pct N] [--latency-threshold-pct N] [--report-only]");
    };
    let base = load(base_path);
    let cand = load(cand_path);

    println!("bench_diff: {base_path} (baseline) vs {cand_path} (candidate)");
    println!(
        "  thresholds: {threshold_pct:.1} % on total_ms, {latency_threshold_pct:.1} % on \
         latency_ns p50/p99 (positive delta = candidate slower)"
    );
    let mut compared = 0usize;
    let mut regressions: Vec<String> = Vec::new();
    for b in &base {
        let Some(c) = cand.iter().find(|c| c.scale == b.scale) else {
            println!("  scale {:>6}: only in baseline (skipped)", b.scale);
            continue;
        };
        println!("  scale {:>6}:", b.scale);
        for bc in &b.configs {
            let config = &bc.config;
            let Some(cc) = c.configs.iter().find(|cc| cc.config == *config) else {
                println!("    {config:<12} only in baseline (skipped)");
                continue;
            };
            let total_delta = delta_pct(bc.total_ms, cc.total_ms);
            let flag = if total_delta > threshold_pct {
                regressions.push(format!(
                    "scale {} {config} total_ms: {:.1} ms -> {:.1} ms ({total_delta:+.1} %)",
                    b.scale, bc.total_ms, cc.total_ms
                ));
                "  REGRESSION"
            } else {
                ""
            };
            println!(
                "    {config:<12} {:>10.1} ms -> {:>10.1} ms  ({total_delta:+6.1} %){flag}",
                bc.total_ms, cc.total_ms
            );
            compared += 1;
            // Latency percentiles compare only when both reports carry
            // them: older reports predate the flight-recorder work, and
            // some configs never emit per-mapping latencies at all.
            if bc.latency_ns.is_some() != cc.latency_ns.is_some() {
                println!(
                    "    {:<12} latency_ns in only one report (comparison skipped)",
                    format!("  {config}")
                );
            }
            if let (Some((bp50, bp99)), Some((cp50, cp99))) = (bc.latency_ns, cc.latency_ns) {
                for (name, base_ns, cand_ns) in [("p50", bp50, cp50), ("p99", bp99, cp99)] {
                    let delta = delta_pct(base_ns, cand_ns);
                    let flag = if delta > latency_threshold_pct {
                        regressions.push(format!(
                            "scale {} {config} latency {name}: {base_ns:.0} ns -> {cand_ns:.0} ns \
                             ({delta:+.1} %)",
                            b.scale
                        ));
                        "  REGRESSION"
                    } else {
                        ""
                    };
                    println!(
                        "    {:<12} {base_ns:>10.0} ns -> {cand_ns:>10.0} ns  ({delta:+6.1} %){flag}",
                        format!("  {name}")
                    );
                    compared += 1;
                }
            }
        }
    }
    for c in &cand {
        if !base.iter().any(|b| b.scale == c.scale) {
            println!("  scale {:>6}: only in candidate (skipped)", c.scale);
        }
    }
    if compared == 0 {
        die("no comparable (scale, config) pairs between the two reports");
    }
    if regressions.is_empty() {
        println!("bench_diff: OK — {compared} comparison(s), none past the threshold");
    } else {
        println!(
            "bench_diff: {} of {compared} comparison(s) regressed past the threshold:",
            regressions.len()
        );
        for r in &regressions {
            println!("  {r}");
        }
        if report_only {
            println!("bench_diff: --report-only, exiting 0");
        } else {
            exit(1);
        }
    }
}
