//! Provenance computation benchmarks (Section 6): building and evaluating
//! the where/what/why-provenance queries of a portal value, and the
//! Theorem 6.1/6.4 exhaustive checks on the running example.

use criterion::{criterion_group, criterion_main, Criterion};
use dtr_bench::small_portal;
use dtr_core::provenance::{check_theorem_6_1, check_theorem_6_4, provenance_of, ProvenanceKind};
use dtr_core::testkit::figure1;
use dtr_model::value::MappingName;
use std::hint::black_box;

fn provenance_kinds(c: &mut Criterion) {
    let tagged = small_portal();
    // A Yahoo-generated price value.
    let (node, _) = tagged
        .target_values("/Portal/houses/price")
        .into_iter()
        .next()
        .expect("portal has prices");
    let m = MappingName::new("y1");

    let mut g = c.benchmark_group("provenance");
    g.sample_size(20);
    for (name, kind) in [
        ("where", ProvenanceKind::Where),
        ("what", ProvenanceKind::What),
        ("why", ProvenanceKind::Why),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    provenance_of(&tagged, kind, &m, node)
                        .expect("provenance computes")
                        .facts
                        .len(),
                )
            })
        });
    }
    g.finish();
}

fn theorem_checks(c: &mut Criterion) {
    let tagged = figure1();
    let mut g = c.benchmark_group("theorems_figure1");
    g.sample_size(10);
    g.bench_function("theorem_6_1_all_mappings", |b| {
        b.iter(|| {
            for m in ["m1", "m2", "m3"] {
                assert_eq!(
                    black_box(check_theorem_6_1(&tagged, &MappingName::new(m)).unwrap()),
                    None
                );
            }
        })
    });
    g.bench_function("theorem_6_4_all_mappings", |b| {
        b.iter(|| {
            for m in ["m1", "m2", "m3"] {
                assert_eq!(
                    black_box(check_theorem_6_4(&tagged, &MappingName::new(m)).unwrap()),
                    None
                );
            }
        })
    });
    g.finish();
}

criterion_group!(benches, provenance_kinds, theorem_checks);
criterion_main!(benches);
