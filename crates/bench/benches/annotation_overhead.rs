//! E2/E3/E6 timing companions: the byte-size results are produced by the
//! `experiments` binary; these benches measure the *serialization cost* of
//! the three annotation schemes (plain, naive, PNF-suppressed) and of the
//! standalone PNF normalizer.

use criterion::{criterion_group, criterion_main, Criterion};
use dtr_bench::bench_portal;
use dtr_model::pnf::to_pnf;
use dtr_portal::nesting::nested_tagged;
use dtr_xml::writer::{instance_to_xml, WriteOptions};
use std::hint::black_box;

fn serialization_schemes(c: &mut Criterion) {
    let tagged = bench_portal();
    let mut g = c.benchmark_group("xml_serialization");
    g.sample_size(20);
    g.bench_function("plain", |b| {
        b.iter(|| black_box(instance_to_xml(tagged.target(), WriteOptions::plain()).len()))
    });
    g.bench_function("mapping_annotations_naive", |b| {
        b.iter(|| black_box(instance_to_xml(tagged.target(), WriteOptions::mapping_only()).len()))
    });
    g.bench_function("mapping_annotations_pnf", |b| {
        b.iter(|| {
            black_box(instance_to_xml(tagged.target(), WriteOptions::mapping_only_pnf()).len())
        })
    });
    g.finish();
}

fn pnf_normalization(c: &mut Criterion) {
    let tagged = bench_portal();
    let mut g = c.benchmark_group("pnf");
    g.sample_size(10);
    g.bench_function("to_pnf_portal", |b| {
        b.iter(|| black_box(to_pnf(tagged.target()).len()))
    });
    g.finish();
}

fn nesting_depths(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_nesting_serialization");
    g.sample_size(10);
    for (depth, width) in [(1usize, 512usize), (2, 23), (3, 8)] {
        let tagged = nested_tagged(depth, width);
        g.bench_function(format!("depth_{depth}"), |b| {
            b.iter(|| {
                black_box(instance_to_xml(tagged.target(), WriteOptions::mapping_only_pnf()).len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    serialization_schemes,
    pnf_normalization,
    nesting_depths
);
criterion_main!(benches);
