//! Measures the cost of the `dtr-obs` instrumentation: the same exchange
//! and query workload with profiling disabled (the default — every span
//! and counter reduces to one relaxed atomic load and a branch) and with
//! profiling enabled (spans aggregate into the thread-local collector).
//!
//! The acceptance bar is that the disabled path stays within noise (<3 %)
//! of the pre-instrumentation baseline; comparing `off` vs `on` here
//! bounds how much work the gate is skipping.

use criterion::{criterion_group, criterion_main, Criterion};
use dtr_portal::scenario::{build, ScenarioConfig};
use dtr_query::parser::parse_query;
use std::hint::black_box;

fn config() -> ScenarioConfig {
    ScenarioConfig {
        listings_per_source: 50,
        ..Default::default()
    }
}

fn exchange_profiling_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("profiling_overhead/exchange");
    g.sample_size(10);
    for (label, enabled) in [("off", false), ("on", true)] {
        g.bench_function(label, |b| {
            dtr_obs::set_enabled(enabled);
            dtr_obs::profile_reset();
            b.iter_batched(
                || build(config()),
                |scenario| black_box(scenario.exchange().unwrap().target().len()),
                criterion::BatchSize::LargeInput,
            );
            dtr_obs::set_enabled(false);
        });
    }
    g.finish();
}

fn query_profiling_overhead(c: &mut Criterion) {
    let tagged = build(config()).exchange().unwrap();
    let q = parse_query(
        "select h.hid, h.price, m from Portal.houses h, h.price@map m
         where h.price > 500000",
    )
    .unwrap();
    let mut g = c.benchmark_group("profiling_overhead/query");
    g.sample_size(10);
    for (label, enabled) in [("off", false), ("on", true)] {
        g.bench_function(label, |b| {
            dtr_obs::set_enabled(enabled);
            dtr_obs::profile_reset();
            b.iter(|| black_box(tagged.run(&q).unwrap().len()));
            dtr_obs::set_enabled(false);
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    exchange_profiling_overhead,
    query_profiling_overhead
);
criterion_main!(benches);
