//! Metastore benchmarks (Section 7): encoding schemas and mappings into the
//! storage relations, materializing the queryable view, and translating
//! MXQL queries (the compile-time cost of the Section 7.3 pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use dtr_bench::small_portal;
use dtr_core::runner::MetaRunner;
use dtr_core::translate::translate;
use dtr_metastore::store::MetaStore;
use dtr_metastore::view::{meta_instance, meta_schema};
use dtr_model::schema::Schema;
use dtr_query::parser::parse_query;
use std::hint::black_box;

fn encoding(c: &mut Criterion) {
    let tagged = small_portal();
    let setting = tagged.setting();
    let mut g = c.benchmark_group("metastore");
    g.bench_function("encode_schemas_and_mappings", |b| {
        b.iter(|| {
            let mut store = MetaStore::new();
            for s in setting.source_schemas() {
                store.add_schema(s).unwrap();
            }
            store.add_schema(setting.target_schema()).unwrap();
            let refs: Vec<&Schema> = setting.source_schemas().iter().collect();
            for m in setting.mappings() {
                store
                    .add_mapping(m, &refs, setting.target_schema())
                    .unwrap();
            }
            black_box(store.correspondences.len())
        })
    });
    g.bench_function("materialize_view", |b| {
        let mut store = MetaStore::new();
        for s in setting.source_schemas() {
            store.add_schema(s).unwrap();
        }
        store.add_schema(setting.target_schema()).unwrap();
        let refs: Vec<&Schema> = setting.source_schemas().iter().collect();
        for m in setting.mappings() {
            store
                .add_mapping(m, &refs, setting.target_schema())
                .unwrap();
        }
        let schema = meta_schema();
        b.iter(|| black_box(meta_instance(&store, &schema).len()))
    });
    g.finish();
}

fn translation(c: &mut Criterion) {
    let single = parse_query(
        "select s.hid, m
         from Portal.houses s, s.price@map m
         where e = s.price@elem
           and <'Yahoo':'/Yahoo/listings/price' -> m -> 'Portal':e>",
    )
    .unwrap();
    let double =
        parse_query("select es from where <db:es => m => 'Portal':'/Portal/houses/price'>")
            .unwrap();
    let mut g = c.benchmark_group("translate");
    g.bench_function("single_arrow", |b| {
        b.iter(|| black_box(translate(&single, "Portal").unwrap().len()))
    });
    g.bench_function("double_arrow_union", |b| {
        b.iter(|| black_box(translate(&double, "Portal").unwrap().len()))
    });
    g.finish();
}

fn end_to_end_runner(c: &mut Criterion) {
    let tagged = small_portal();
    let mut g = c.benchmark_group("meta_runner");
    g.sample_size(10);
    g.bench_function("build_runner", |b| {
        b.iter(|| {
            black_box(
                MetaRunner::new(tagged.setting())
                    .unwrap()
                    .store()
                    .elements
                    .len(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, encoding, translation, end_to_end_runner);
criterion_main!(benches);
