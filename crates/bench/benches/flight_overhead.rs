//! Measures the cost of the flight recorder: the same exchange + query
//! workload with the recorder disabled (the default — every event site
//! reduces to one relaxed atomic load and a branch) and with it capturing
//! (span begin/end events, periodic counter samples, and per-mapping
//! exchange windows pushed into the ring buffer under its mutex).
//!
//! The acceptance bar is that the disabled path stays within noise of the
//! un-instrumented baseline; comparing `off` vs `on` bounds what one
//! recorded event costs end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use dtr_obs::recorder;
use dtr_portal::scenario::{build, ScenarioConfig};
use dtr_query::parser::parse_query;
use std::hint::black_box;

fn config() -> ScenarioConfig {
    ScenarioConfig {
        listings_per_source: 50,
        ..Default::default()
    }
}

fn exchange_flight_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("flight_overhead/exchange");
    g.sample_size(10);
    for (label, enabled) in [("off", false), ("on", true)] {
        g.bench_function(label, |b| {
            dtr_obs::set_enabled(false);
            recorder::set_enabled(enabled);
            recorder::reset();
            b.iter_batched(
                || build(config()),
                |scenario| black_box(scenario.exchange().unwrap().target().len()),
                criterion::BatchSize::LargeInput,
            );
            recorder::set_enabled(false);
            recorder::reset();
        });
    }
    g.finish();
}

fn query_flight_overhead(c: &mut Criterion) {
    let tagged = build(config()).exchange().unwrap();
    let q = parse_query(
        "select h.hid, h.price, m from Portal.houses h, h.price@map m where h.price > 800000",
    )
    .unwrap();
    let mut g = c.benchmark_group("flight_overhead/query");
    g.sample_size(10);
    for (label, enabled) in [("off", false), ("on", true)] {
        g.bench_function(label, |b| {
            dtr_obs::set_enabled(false);
            recorder::set_enabled(enabled);
            recorder::reset();
            b.iter(|| black_box(tagged.run(&q).unwrap().len()));
            recorder::set_enabled(false);
            recorder::reset();
        });
    }
    g.finish();
}

criterion_group!(benches, exchange_flight_overhead, query_flight_overhead);
criterion_main!(benches);
