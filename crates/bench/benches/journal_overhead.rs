//! Measures the cost of the `dtr-journal` event stream: the same exchange
//! workload with the journal disabled (the default — every event site
//! reduces to one relaxed atomic load and a branch) and with the journal
//! capturing (events are built, fingerprinted, and pushed into the ring
//! buffer under its mutex).
//!
//! The acceptance bar is that the disabled path stays within noise of the
//! un-instrumented baseline; comparing `off` vs `on` bounds how much work
//! the gate skips per insert/merge/annotation.

use criterion::{criterion_group, criterion_main, Criterion};
use dtr_obs::journal;
use dtr_portal::scenario::{build, ScenarioConfig};
use std::hint::black_box;

fn config() -> ScenarioConfig {
    ScenarioConfig {
        listings_per_source: 50,
        ..Default::default()
    }
}

fn exchange_journal_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal_overhead/exchange");
    g.sample_size(10);
    for (label, enabled) in [("off", false), ("on", true)] {
        g.bench_function(label, |b| {
            dtr_obs::set_enabled(false);
            journal::set_enabled(enabled);
            journal::reset();
            b.iter_batched(
                || build(config()),
                |scenario| black_box(scenario.exchange().unwrap().target().len()),
                criterion::BatchSize::LargeInput,
            );
            journal::set_enabled(false);
            journal::reset();
        });
    }
    g.finish();
}

fn lineage_lookup(c: &mut Criterion) {
    // Capture one exchange worth of events, then measure index lookups.
    dtr_obs::set_enabled(false);
    journal::set_enabled(true);
    journal::reset();
    let tagged = build(config()).exchange().unwrap();
    journal::set_enabled(false);
    let targets: Vec<u64> = journal::events().iter().filter_map(|e| e.target).collect();
    assert!(!targets.is_empty(), "the exchange journaled insert events");
    let _ = tagged;

    let mut g = c.benchmark_group("journal_overhead/lineage");
    g.sample_size(10);
    g.bench_function("lineage_of", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &t in &targets {
                hits += journal::lineage_of(black_box(t)).len();
            }
            black_box(hits)
        })
    });
    g.finish();
    journal::reset();
}

criterion_group!(benches, exchange_journal_overhead, lineage_lookup);
criterion_main!(benches);
