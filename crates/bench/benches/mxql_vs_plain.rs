//! E7 — "We executed a number of MXQL queries over the annotated instance,
//! but we noticed no significant execution time increase."
//!
//! Benchmarks a plain selection, the same query extended with `@map`, a
//! query with a mapping predicate, and the Section 7.3 translated forms of
//! both, all over the same annotated portal instance.

use criterion::{criterion_group, criterion_main, Criterion};
use dtr_bench::bench_portal;
use dtr_core::runner::MetaRunner;
use dtr_query::parser::parse_query;
use std::hint::black_box;

fn mxql_vs_plain(c: &mut Criterion) {
    let tagged = bench_portal();
    let runner = MetaRunner::new(tagged.setting()).expect("metastore builds");

    let plain =
        parse_query("select h.hid, h.price from Portal.houses h where h.price > 800000").unwrap();
    let with_map = parse_query(
        "select h.hid, h.price, m from Portal.houses h, h.price@map m \
         where h.price > 800000",
    )
    .unwrap();
    let with_pred = parse_query(
        "select h.hid, m from Portal.houses h, h.price@map m \
         where h.price > 800000 and e = h.price@elem \
           and <'Yahoo':'/Yahoo/listings/price' -> m -> 'Portal':e>",
    )
    .unwrap();
    let meta_only =
        parse_query("select e from where <db:e -> m -> 'Portal':'/Portal/houses/stories'>")
            .unwrap();

    let mut g = c.benchmark_group("e7_query_time");
    g.bench_function("plain_selection", |b| {
        b.iter(|| black_box(tagged.run(&plain).unwrap().len()))
    });
    g.bench_function("mxql_at_map", |b| {
        b.iter(|| black_box(tagged.run(&with_map).unwrap().len()))
    });
    g.bench_function("mxql_mapping_predicate", |b| {
        b.iter(|| black_box(tagged.run(&with_pred).unwrap().len()))
    });
    g.bench_function("mxql_pure_metadata", |b| {
        b.iter(|| black_box(tagged.run(&meta_only).unwrap().len()))
    });
    g.bench_function("translated_at_map", |b| {
        b.iter(|| black_box(runner.run(&tagged, &with_map).unwrap().len()))
    });
    g.bench_function("translated_mapping_predicate", |b| {
        b.iter(|| black_box(runner.run(&tagged, &with_pred).unwrap().len()))
    });
    g.finish();
}

criterion_group!(benches, mxql_vs_plain);
criterion_main!(benches);
