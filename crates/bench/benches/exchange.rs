//! Exchange-engine benchmarks: materializing the annotated portal from the
//! five sources (the generation step of every Section 8 experiment), plus
//! the evaluator ablations DESIGN.md calls out — incremental predicate
//! pushdown vs naive evaluate-at-the-end, hash-join vs nested-loop binding
//! enumeration, and serial vs parallel mapping evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtr_mapping::exchange::ExchangeOptions;
use dtr_portal::scenario::{build, ScenarioConfig};
use dtr_query::eval::{Catalog, EvalOptions, Evaluator, Source};
use dtr_query::functions::FunctionRegistry;
use dtr_query::parser::parse_query;
use std::hint::black_box;

fn exchange_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("exchange");
    g.sample_size(10);
    for n in [25usize, 50, 100] {
        g.bench_with_input(BenchmarkId::new("listings_per_source", n), &n, |b, &n| {
            b.iter_batched(
                || {
                    build(ScenarioConfig {
                        listings_per_source: n,
                        ..Default::default()
                    })
                },
                |scenario| black_box(scenario.exchange().unwrap().target().len()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn parallel_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_exchange");
    g.sample_size(10);
    let configs = [
        (
            "pre_pr_reference",
            // Serial, nested-loop, per-row member construction: the
            // configuration this PR replaced as the default.
            ExchangeOptions {
                eval: EvalOptions {
                    pushdown: true,
                    hash_join: false,
                    ..Default::default()
                },
                member_templates: false,
                ..ExchangeOptions::default()
            },
        ),
        (
            "serial_nested_loop",
            ExchangeOptions {
                eval: EvalOptions {
                    pushdown: true,
                    hash_join: false,
                    ..Default::default()
                },
                ..ExchangeOptions::default()
            },
        ),
        ("serial_hash_join", ExchangeOptions::default()),
        (
            "parallel_hash_join",
            ExchangeOptions {
                parallel: true,
                ..ExchangeOptions::default()
            },
        ),
    ];
    for (name, opts) in configs {
        g.bench_with_input(BenchmarkId::new(name, 100usize), &opts, |b, opts| {
            b.iter_batched(
                || {
                    build(ScenarioConfig {
                        listings_per_source: 100,
                        ..Default::default()
                    })
                },
                |scenario| black_box(scenario.exchange_with(opts).unwrap().target().len()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn pushdown_ablation(c: &mut Criterion) {
    // A three-way join over the Windermere source: homes x agents x opens.
    let scenario = build(ScenarioConfig {
        listings_per_source: 150,
        ..Default::default()
    });
    let mut wm = scenario.sources[2].clone();
    wm.annotate_elements(&scenario.setting.source_schemas()[2])
        .unwrap();
    let catalog = Catalog::new(vec![Source {
        schema: &scenario.setting.source_schemas()[2],
        instance: &wm,
    }]);
    let funcs = FunctionRegistry::with_builtins();
    let q = parse_query(
        "select h.hid, a.phone, o.date
         from WM.homes h, WM.agents a, WM.opens o
         where h.agentId = a.agentId and o.hid = h.hid",
    )
    .unwrap();

    let mut g = c.benchmark_group("pushdown_ablation");
    g.sample_size(10);
    let modes = [
        (
            "hash_join",
            EvalOptions {
                pushdown: true,
                hash_join: true,
                ..Default::default()
            },
        ),
        (
            "incremental_pushdown",
            EvalOptions {
                pushdown: true,
                hash_join: false,
                ..Default::default()
            },
        ),
        (
            "naive_cross_product",
            EvalOptions {
                pushdown: false,
                hash_join: false,
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in &modes {
        g.bench_function(*name, |b| {
            b.iter(|| {
                black_box(
                    Evaluator::new(&catalog, &funcs)
                        .with_options(opts.clone())
                        .run(&q)
                        .unwrap()
                        .len(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    exchange_scaling,
    parallel_exchange,
    pushdown_ablation
);
criterion_main!(benches);
