//! The delta model for incremental exchange: [`SourceDelta`] describes
//! insert/delete/modify edits against source tuples addressed by
//! root-rooted set paths, and [`TargetDelta`] summarizes what one
//! [`crate::incremental::IncrementalExchange::apply`] did to the target —
//! which members were inserted or retracted, how many member classes were
//! rebuilt, and how the mapping set was pruned.
//!
//! Addressing convention: an edit path is a dot path of record projections
//! from a source root to a *top-level* set (`Yahoo.listings`,
//! `Portal.estates`). Members are addressed positionally by their current
//! index in that set. Changes inside a member — including its nested sets —
//! are expressed as a [`EditOp::Modify`] replacing the whole member, which
//! matches the granularity of the paper's foreach tuples: a source tuple
//! is a top-level set member, and `f_mp` retraction happens at tuple
//! granularity.

use dtr_model::instance::Value;
use std::fmt;

/// One edit against a source set.
#[derive(Clone, Debug, PartialEq)]
pub enum EditOp {
    /// Append a new member to the set.
    Insert(Value),
    /// Remove the member at the given (current) index.
    Delete(usize),
    /// Replace the member at the given (current) index with a new value.
    /// Equivalent to `Delete(idx)` followed by `Insert(value)`.
    Modify(usize, Value),
}

/// One addressed edit: a root-rooted set path plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Edit {
    /// Dot path from a source root to a top-level set, e.g.
    /// `"Yahoo.listings"`. Record projections only (no choice steps, no
    /// indices) — the path names the set, the op names the member.
    pub path: String,
    /// The operation to apply.
    pub op: EditOp,
}

/// A batch of source edits, applied atomically by
/// [`crate::incremental::IncrementalExchange::apply`]: edits resolve
/// sequentially (a `Delete(2)` after an `Insert` sees the post-insert
/// indices), and an insert-then-delete of the same member inside one batch
/// cancels to a no-op.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SourceDelta {
    /// The edits, in application order.
    pub edits: Vec<Edit>,
}

impl SourceDelta {
    /// An empty batch.
    pub fn new() -> Self {
        SourceDelta::default()
    }

    /// Appends an insert edit.
    pub fn insert(mut self, path: impl Into<String>, value: Value) -> Self {
        self.edits.push(Edit {
            path: path.into(),
            op: EditOp::Insert(value),
        });
        self
    }

    /// Appends a delete edit.
    pub fn delete(mut self, path: impl Into<String>, idx: usize) -> Self {
        self.edits.push(Edit {
            path: path.into(),
            op: EditOp::Delete(idx),
        });
        self
    }

    /// Appends a modify edit.
    pub fn modify(mut self, path: impl Into<String>, idx: usize, value: Value) -> Self {
        self.edits.push(Edit {
            path: path.into(),
            op: EditOp::Modify(idx, value),
        });
        self
    }
}

/// One target-side membership change: a member node that appeared in (or
/// was retracted from) the set at `set_path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetChange {
    /// Root-rooted dot path of the target set the member belongs to.
    pub set_path: String,
    /// The member's arena node id (stable until the next `.rebase`).
    pub member: u32,
}

/// What one delta application did to the target instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TargetDelta {
    /// Monotonic batch number within this incremental session.
    pub batch: u64,
    /// Edits in the applied [`SourceDelta`].
    pub edits: usize,
    /// Top-level target members newly materialized by this batch.
    pub inserted: Vec<TargetChange>,
    /// Top-level target members retracted by this batch (their node ids
    /// are detached arena garbage after the apply).
    pub retracted: Vec<TargetChange>,
    /// Member classes rebuilt in place (detach + journal-replay of the
    /// surviving binding fingerprints).
    pub classes_rebuilt: usize,
    /// Mappings skipped entirely because no foreach binding could touch a
    /// changed path.
    pub mappings_pruned: usize,
    /// Mappings whose foreach was re-enumerated (restricted or full).
    pub mappings_reevaluated: usize,
    /// Foreach rows added across all re-evaluated mappings (multiplicity
    /// counted).
    pub rows_added: usize,
    /// Foreach rows removed across all re-evaluated mappings.
    pub rows_removed: usize,
}

impl TargetDelta {
    /// `true` when the batch changed nothing in the target.
    pub fn is_noop(&self) -> bool {
        self.inserted.is_empty() && self.retracted.is_empty() && self.classes_rebuilt == 0
    }

    /// Serializes to a JSON object (stable key set; see [`TargetDelta::from_json`]).
    pub fn to_json(&self) -> serde_json::Value {
        let change = |c: &TargetChange| serde_json::json!({ "set_path": c.set_path.as_str(), "member": c.member });
        serde_json::json!({
            "batch": self.batch,
            "edits": self.edits,
            "inserted": self.inserted.iter().map(change).collect::<Vec<_>>(),
            "retracted": self.retracted.iter().map(change).collect::<Vec<_>>(),
            "classes_rebuilt": self.classes_rebuilt,
            "mappings_pruned": self.mappings_pruned,
            "mappings_reevaluated": self.mappings_reevaluated,
            "rows_added": self.rows_added,
            "rows_removed": self.rows_removed,
        })
    }

    /// Deserializes from the [`TargetDelta::to_json`] shape. Returns `None`
    /// on a malformed value.
    pub fn from_json(v: &serde_json::Value) -> Option<TargetDelta> {
        let usize_of = |k: &str| v.get(k)?.as_u64().map(|n| n as usize);
        let changes = |k: &str| -> Option<Vec<TargetChange>> {
            v.get(k)?
                .as_array()?
                .iter()
                .map(|c| {
                    Some(TargetChange {
                        set_path: c.get("set_path")?.as_str()?.to_string(),
                        member: c.get("member")?.as_u64()? as u32,
                    })
                })
                .collect()
        };
        Some(TargetDelta {
            batch: v.get("batch")?.as_u64()?,
            edits: usize_of("edits")?,
            inserted: changes("inserted")?,
            retracted: changes("retracted")?,
            classes_rebuilt: usize_of("classes_rebuilt")?,
            mappings_pruned: usize_of("mappings_pruned")?,
            mappings_reevaluated: usize_of("mappings_reevaluated")?,
            rows_added: usize_of("rows_added")?,
            rows_removed: usize_of("rows_removed")?,
        })
    }
}

/// Errors raised while applying a [`SourceDelta`].
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaError {
    /// An edit path did not resolve to a top-level set of any source.
    Path(String),
    /// A delete/modify index was out of range for its set.
    Index(String),
    /// The exchange layer failed while re-evaluating or rebuilding (guard
    /// trips surface here; the apply was rolled back).
    Exchange(crate::exchange::ExchangeError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Path(m) => write!(f, "delta path error: {m}"),
            DeltaError::Index(m) => write!(f, "delta index error: {m}"),
            DeltaError::Exchange(e) => write!(f, "delta exchange error: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<crate::exchange::ExchangeError> for DeltaError {
    fn from(e: crate::exchange::ExchangeError) -> Self {
        DeltaError::Exchange(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_delta_json_round_trip() {
        let d = TargetDelta {
            batch: 3,
            edits: 2,
            inserted: vec![TargetChange {
                set_path: "Portal.houses".into(),
                member: 17,
            }],
            retracted: vec![
                TargetChange {
                    set_path: "Portal.houses".into(),
                    member: 4,
                },
                TargetChange {
                    set_path: "Portal.agents".into(),
                    member: 9,
                },
            ],
            classes_rebuilt: 2,
            mappings_pruned: 3,
            mappings_reevaluated: 1,
            rows_added: 5,
            rows_removed: 4,
        };
        let json = d.to_json();
        let text = serde_json::to_string(&json).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(TargetDelta::from_json(&back), Some(d));
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        assert_eq!(TargetDelta::from_json(&serde_json::json!({})), None);
        assert_eq!(
            TargetDelta::from_json(&serde_json::json!({ "batch": "three" })),
            None
        );
    }
}
