//! The delta model for incremental exchange: [`SourceDelta`] describes
//! insert/delete/modify edits against source tuples addressed by
//! root-rooted set paths, and [`TargetDelta`] summarizes what one
//! [`crate::incremental::IncrementalExchange::apply`] did to the target —
//! which members were inserted or retracted, how many member classes were
//! rebuilt, and how the mapping set was pruned.
//!
//! Addressing convention: an edit path is a dot path of record projections
//! from a source root to a *top-level* set (`Yahoo.listings`,
//! `Portal.estates`). Members are addressed positionally by their current
//! index in that set. Changes inside a member — including its nested sets —
//! are expressed as a [`EditOp::Modify`] replacing the whole member, which
//! matches the granularity of the paper's foreach tuples: a source tuple
//! is a top-level set member, and `f_mp` retraction happens at tuple
//! granularity.

use dtr_model::instance::Value;
use dtr_model::value::{AtomicValue, ElementRef, MappingName};
use std::fmt;

/// Serializes a [`Value`] as a tagged JSON object. Every variant —
/// including the meta-data atoms and non-finite floats (encoded as exact
/// IEEE-754 bit patterns) — round-trips through [`value_from_json`].
pub fn value_to_json(v: &Value) -> serde_json::Value {
    match v {
        Value::Atomic(a) => match a {
            AtomicValue::Str(s) => serde_json::json!({ "s": s }),
            AtomicValue::Int(i) => serde_json::json!({ "i": *i }),
            AtomicValue::Float(x) => serde_json::json!({ "f": x.to_bits() }),
            AtomicValue::Bool(b) => serde_json::json!({ "b": *b }),
            AtomicValue::Db(d) => serde_json::json!({ "db": d }),
            AtomicValue::Map(m) => serde_json::json!({ "map": m.as_str() }),
            AtomicValue::Elem(e) => {
                serde_json::json!({ "elem": [e.db.as_str(), e.path.as_str()] })
            }
        },
        Value::Record(fields) => serde_json::json!({
            "rec": fields
                .iter()
                .map(|(l, v)| serde_json::json!([l.as_str(), value_to_json(v)]))
                .collect::<Vec<_>>(),
        }),
        Value::Choice(label, inner) => {
            serde_json::json!({ "ch": [label.as_str(), value_to_json(inner)] })
        }
        Value::Set(members) => serde_json::json!({
            "set": members.iter().map(value_to_json).collect::<Vec<_>>(),
        }),
    }
}

/// Deserializes the [`value_to_json`] shape. Returns `None` on any
/// malformed value (never panics — WAL payloads may be corrupt).
pub fn value_from_json(v: &serde_json::Value) -> Option<Value> {
    let obj = v.as_object()?;
    if obj.len() != 1 {
        return None;
    }
    let (tag, body) = obj.iter().next()?;
    Some(match tag.as_str() {
        "s" => Value::Atomic(AtomicValue::Str(body.as_str()?.to_string())),
        "i" => Value::Atomic(AtomicValue::Int(body.as_i64()?)),
        "f" => Value::Atomic(AtomicValue::Float(f64::from_bits(body.as_u64()?))),
        "b" => Value::Atomic(AtomicValue::Bool(body.as_bool()?)),
        "db" => Value::Atomic(AtomicValue::Db(body.as_str()?.to_string())),
        "map" => Value::Atomic(AtomicValue::Map(MappingName::new(body.as_str()?))),
        "elem" => {
            let pair = body.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            Value::Atomic(AtomicValue::Elem(ElementRef::new(
                pair[0].as_str()?,
                pair[1].as_str()?,
            )))
        }
        "rec" => Value::Record(
            body.as_array()?
                .iter()
                .map(|f| {
                    let pair = f.as_array()?;
                    if pair.len() != 2 {
                        return None;
                    }
                    Some((pair[0].as_str()?.into(), value_from_json(&pair[1])?))
                })
                .collect::<Option<Vec<_>>>()?,
        ),
        "ch" => {
            let pair = body.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            Value::Choice(
                pair[0].as_str()?.into(),
                Box::new(value_from_json(&pair[1])?),
            )
        }
        "set" => Value::Set(
            body.as_array()?
                .iter()
                .map(value_from_json)
                .collect::<Option<Vec<_>>>()?,
        ),
        _ => return None,
    })
}

/// One edit against a source set.
#[derive(Clone, Debug, PartialEq)]
pub enum EditOp {
    /// Append a new member to the set.
    Insert(Value),
    /// Remove the member at the given (current) index.
    Delete(usize),
    /// Replace the member at the given (current) index with a new value.
    /// Equivalent to `Delete(idx)` followed by `Insert(value)`.
    Modify(usize, Value),
}

/// One addressed edit: a root-rooted set path plus the operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Edit {
    /// Dot path from a source root to a top-level set, e.g.
    /// `"Yahoo.listings"`. Record projections only (no choice steps, no
    /// indices) — the path names the set, the op names the member.
    pub path: String,
    /// The operation to apply.
    pub op: EditOp,
}

impl Edit {
    /// The payload value of an insert/modify edit (`None` for deletes).
    pub fn value(&self) -> Option<&Value> {
        match &self.op {
            EditOp::Insert(v) | EditOp::Modify(_, v) => Some(v),
            EditOp::Delete(_) => None,
        }
    }
}

/// A batch of source edits, applied atomically by
/// [`crate::incremental::IncrementalExchange::apply`]: edits resolve
/// sequentially (a `Delete(2)` after an `Insert` sees the post-insert
/// indices), and an insert-then-delete of the same member inside one batch
/// cancels to a no-op.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SourceDelta {
    /// The edits, in application order.
    pub edits: Vec<Edit>,
}

impl SourceDelta {
    /// An empty batch.
    pub fn new() -> Self {
        SourceDelta::default()
    }

    /// Appends an insert edit.
    pub fn insert(mut self, path: impl Into<String>, value: Value) -> Self {
        self.edits.push(Edit {
            path: path.into(),
            op: EditOp::Insert(value),
        });
        self
    }

    /// Appends a delete edit.
    pub fn delete(mut self, path: impl Into<String>, idx: usize) -> Self {
        self.edits.push(Edit {
            path: path.into(),
            op: EditOp::Delete(idx),
        });
        self
    }

    /// Appends a modify edit.
    pub fn modify(mut self, path: impl Into<String>, idx: usize, value: Value) -> Self {
        self.edits.push(Edit {
            path: path.into(),
            op: EditOp::Modify(idx, value),
        });
        self
    }

    /// Serializes to a JSON object (stable key set; the write-ahead log
    /// payload format — see [`SourceDelta::from_json`]).
    pub fn to_json(&self) -> serde_json::Value {
        let edits: Vec<serde_json::Value> = self
            .edits
            .iter()
            .map(|e| {
                let op = match &e.op {
                    EditOp::Insert(v) => serde_json::json!({ "insert": value_to_json(v) }),
                    EditOp::Delete(idx) => serde_json::json!({ "delete": *idx }),
                    EditOp::Modify(idx, v) => {
                        serde_json::json!({ "modify": [*idx, value_to_json(v)] })
                    }
                };
                serde_json::json!({ "path": e.path.as_str(), "op": op })
            })
            .collect();
        serde_json::json!({ "edits": edits })
    }

    /// Deserializes from the [`SourceDelta::to_json`] shape. Returns
    /// `None` on a malformed value (corrupt WAL payloads must surface as
    /// recoverable errors, never panics).
    pub fn from_json(v: &serde_json::Value) -> Option<SourceDelta> {
        let edits = v
            .get("edits")?
            .as_array()?
            .iter()
            .map(|e| {
                let path = e.get("path")?.as_str()?.to_string();
                let op = e.get("op")?.as_object()?;
                if op.len() != 1 {
                    return None;
                }
                let (tag, body) = op.iter().next()?;
                let op = match tag.as_str() {
                    "insert" => EditOp::Insert(value_from_json(body)?),
                    "delete" => EditOp::Delete(body.as_u64()? as usize),
                    "modify" => {
                        let pair = body.as_array()?;
                        if pair.len() != 2 {
                            return None;
                        }
                        EditOp::Modify(pair[0].as_u64()? as usize, value_from_json(&pair[1])?)
                    }
                    _ => return None,
                };
                Some(Edit { path, op })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(SourceDelta { edits })
    }
}

/// One target-side membership change: a member node that appeared in (or
/// was retracted from) the set at `set_path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetChange {
    /// Root-rooted dot path of the target set the member belongs to.
    pub set_path: String,
    /// The member's arena node id (stable until the next `.rebase`).
    pub member: u32,
}

/// What one delta application did to the target instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TargetDelta {
    /// Monotonic batch number within this incremental session.
    pub batch: u64,
    /// Edits in the applied [`SourceDelta`].
    pub edits: usize,
    /// Top-level target members newly materialized by this batch.
    pub inserted: Vec<TargetChange>,
    /// Top-level target members retracted by this batch (their node ids
    /// are detached arena garbage after the apply).
    pub retracted: Vec<TargetChange>,
    /// Member classes rebuilt in place (detach + journal-replay of the
    /// surviving binding fingerprints).
    pub classes_rebuilt: usize,
    /// Mappings skipped entirely because no foreach binding could touch a
    /// changed path.
    pub mappings_pruned: usize,
    /// Mappings whose foreach was re-enumerated (restricted or full).
    pub mappings_reevaluated: usize,
    /// Foreach rows added across all re-evaluated mappings (multiplicity
    /// counted).
    pub rows_added: usize,
    /// Foreach rows removed across all re-evaluated mappings.
    pub rows_removed: usize,
}

impl TargetDelta {
    /// `true` when the batch changed nothing in the target.
    pub fn is_noop(&self) -> bool {
        self.inserted.is_empty() && self.retracted.is_empty() && self.classes_rebuilt == 0
    }

    /// Serializes to a JSON object (stable key set; see [`TargetDelta::from_json`]).
    pub fn to_json(&self) -> serde_json::Value {
        let change = |c: &TargetChange| serde_json::json!({ "set_path": c.set_path.as_str(), "member": c.member });
        serde_json::json!({
            "batch": self.batch,
            "edits": self.edits,
            "inserted": self.inserted.iter().map(change).collect::<Vec<_>>(),
            "retracted": self.retracted.iter().map(change).collect::<Vec<_>>(),
            "classes_rebuilt": self.classes_rebuilt,
            "mappings_pruned": self.mappings_pruned,
            "mappings_reevaluated": self.mappings_reevaluated,
            "rows_added": self.rows_added,
            "rows_removed": self.rows_removed,
        })
    }

    /// Deserializes from the [`TargetDelta::to_json`] shape. Returns `None`
    /// on a malformed value.
    pub fn from_json(v: &serde_json::Value) -> Option<TargetDelta> {
        let usize_of = |k: &str| v.get(k)?.as_u64().map(|n| n as usize);
        let changes = |k: &str| -> Option<Vec<TargetChange>> {
            v.get(k)?
                .as_array()?
                .iter()
                .map(|c| {
                    Some(TargetChange {
                        set_path: c.get("set_path")?.as_str()?.to_string(),
                        member: c.get("member")?.as_u64()? as u32,
                    })
                })
                .collect()
        };
        Some(TargetDelta {
            batch: v.get("batch")?.as_u64()?,
            edits: usize_of("edits")?,
            inserted: changes("inserted")?,
            retracted: changes("retracted")?,
            classes_rebuilt: usize_of("classes_rebuilt")?,
            mappings_pruned: usize_of("mappings_pruned")?,
            mappings_reevaluated: usize_of("mappings_reevaluated")?,
            rows_added: usize_of("rows_added")?,
            rows_removed: usize_of("rows_removed")?,
        })
    }
}

/// Errors raised while applying a [`SourceDelta`].
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaError {
    /// An edit path did not resolve to a top-level set of any source.
    Path(String),
    /// A delete/modify index was out of range for its set.
    Index(String),
    /// The exchange layer failed while re-evaluating or rebuilding (guard
    /// trips surface here; the apply was rolled back).
    Exchange(crate::exchange::ExchangeError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Path(m) => write!(f, "delta path error: {m}"),
            DeltaError::Index(m) => write!(f, "delta index error: {m}"),
            DeltaError::Exchange(e) => write!(f, "delta exchange error: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<crate::exchange::ExchangeError> for DeltaError {
    fn from(e: crate::exchange::ExchangeError) -> Self {
        DeltaError::Exchange(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_delta_json_round_trip() {
        let d = TargetDelta {
            batch: 3,
            edits: 2,
            inserted: vec![TargetChange {
                set_path: "Portal.houses".into(),
                member: 17,
            }],
            retracted: vec![
                TargetChange {
                    set_path: "Portal.houses".into(),
                    member: 4,
                },
                TargetChange {
                    set_path: "Portal.agents".into(),
                    member: 9,
                },
            ],
            classes_rebuilt: 2,
            mappings_pruned: 3,
            mappings_reevaluated: 1,
            rows_added: 5,
            rows_removed: 4,
        };
        let json = d.to_json();
        let text = serde_json::to_string(&json).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(TargetDelta::from_json(&back), Some(d));
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        assert_eq!(TargetDelta::from_json(&serde_json::json!({})), None);
        assert_eq!(
            TargetDelta::from_json(&serde_json::json!({ "batch": "three" })),
            None
        );
    }

    #[test]
    fn source_delta_json_round_trip() {
        use dtr_model::value::{AtomicValue, ElementRef, MappingName};
        let member = Value::record(vec![
            ("hid", Value::str("H7")),
            ("price", Value::int(450)),
            ("rate", Value::Atomic(AtomicValue::Float(0.25))),
            ("sold", Value::Atomic(AtomicValue::Bool(false))),
            ("src", Value::Atomic(AtomicValue::Db("USdb".into()))),
            (
                "by",
                Value::Atomic(AtomicValue::Map(MappingName::new("m1"))),
            ),
            (
                "at",
                Value::Atomic(AtomicValue::Elem(ElementRef::new("USdb", "/US/houses"))),
            ),
            ("contact", Value::choice("phone", Value::str("555"))),
            ("rooms", Value::set(vec![Value::str("kitchen")])),
        ]);
        let d = SourceDelta::new()
            .insert("Yahoo.listings", member.clone())
            .delete("US.houses", 2)
            .modify("EU.postings", 0, member);
        let text = serde_json::to_string(&d.to_json()).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(SourceDelta::from_json(&back), Some(d));
    }

    #[test]
    fn source_delta_non_finite_floats_round_trip_exactly() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0] {
            let d = SourceDelta::new().insert(
                "US.houses",
                Value::record(vec![("rate", Value::Atomic(AtomicValue::Float(x)))]),
            );
            let back = SourceDelta::from_json(&d.to_json()).unwrap();
            let Value::Record(fields) = back.edits[0].value().unwrap() else {
                panic!("expected record");
            };
            let Value::Atomic(AtomicValue::Float(y)) = fields[0].1 else {
                panic!("expected float");
            };
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn malformed_source_delta_json_is_rejected_not_panicked() {
        for bad in [
            serde_json::json!({}),
            serde_json::json!({ "edits": [{ "path": "US.houses" }] }),
            serde_json::json!({ "edits": [{ "path": "US.houses", "op": { "warp": 9 } }] }),
            serde_json::json!({ "edits": [{ "path": "US.houses", "op": { "insert": { "q": 1 } } }] }),
        ] {
            assert_eq!(SourceDelta::from_json(&bad), None);
        }
    }
}
