//! # dtr-mapping — GLAV mappings and the data exchange engine
//!
//! Implements Section 4.3 of *Representing and Querying Data
//! Transformations* and the annotation-generating exchange of Section 7.2:
//!
//! * [`glav`] — the `foreach Qs exists Qt` mapping abstraction, parsing and
//!   validation.
//! * [`triple`] — the `⟨Es, Et, Wc⟩` model of a mapping, the basis of the
//!   MXQL mapping predicates.
//! * [`exchange`] — executes mappings to materialize an **annotated**
//!   target instance with PNF merging (the engine the paper borrows from
//!   "Translating Web Data", reference \[21\], rebuilt from scratch).
//! * [`lint`] — automated mapping diagnostics (the Section 8 debugging
//!   sessions as checks).
//! * [`satisfy`] — checks `∀t ∈ Qs(Is) ⇒ t ∈ Qt(It)`.
//! * [`rewrite`] — the Section 7.2 rewrite that makes annotation
//!   generation explicit (Example 7.2).

#![warn(missing_docs)]

pub mod delta;
pub mod durable;
pub mod exchange;
pub mod glav;
pub mod incremental;
pub mod lint;
pub mod rewrite;
pub mod satisfy;
pub mod triple;

/// Convenient glob-import of the most used names.
pub mod prelude {
    pub use crate::delta::{DeltaError, Edit, EditOp, SourceDelta, TargetChange, TargetDelta};
    pub use crate::exchange::{
        execute_mappings, execute_mappings_with, Exchange, ExchangeError, ExchangeOptions,
        ExchangeReport,
    };
    pub use crate::glav::{Mapping, MappingError};
    pub use crate::incremental::IncrementalExchange;
    pub use crate::lint::{lint_mappings, Lint};
    pub use crate::rewrite::rewrite_with_annotations;
    pub use crate::satisfy::{is_satisfied, violations};
    pub use crate::triple::{extract_triple, MappingTriple};
}

pub use prelude::*;
