//! Mapping diagnostics.
//!
//! Section 8 reports that MXQL "helped identify the meaning of some
//! elements" and "helped detect ill-defined mappings". This module distills
//! those manual debugging sessions into automated checks over the mapping
//! triples `⟨Es, Et, Wc⟩`:
//!
//! * [`Lint::MultiSourceTarget`] — a target element populated from several
//!   *different* source elements (the `stories` ← {floors, levels} and
//!   price-with/without-tax situations: worth checking the semantics
//!   agree);
//! * [`Lint::FanOutSource`] — one source element feeding several target
//!   elements (Yahoo's phone → business *and* home phone; NK's single
//!   `schoolDistrict` → all three school levels);
//! * [`Lint::UnpopulatedTarget`] — atomic target elements no mapping
//!   populates (dead schema);
//! * [`Lint::SelfJoin`] — a mapping joining a relation with itself (the
//!   `housesInNeighborhood` computation): self-joins on too few attributes
//!   caused the paper's cross-state neighbors, so they deserve review.

use crate::glav::Mapping;
use crate::triple::{extract_triple, MappingTriple};
use dtr_model::schema::{ElementKind, Schema};
use dtr_model::value::{ElementRef, MappingName};
use dtr_query::ast::{Condition, Expr, PathStart};
use dtr_query::check::CheckError;
use std::fmt;

/// One diagnostic finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lint {
    /// A target element receives values from several distinct source
    /// elements (possibly via different mappings).
    MultiSourceTarget {
        /// The populated target element.
        target: ElementRef,
        /// The distinct source elements feeding it, with the mapping.
        sources: Vec<(ElementRef, MappingName)>,
    },
    /// A source element feeds several distinct target elements.
    FanOutSource {
        /// The source element.
        source: ElementRef,
        /// The target elements it populates, with the mapping.
        targets: Vec<(ElementRef, MappingName)>,
    },
    /// An atomic target element no mapping populates.
    UnpopulatedTarget {
        /// The dead element.
        target: ElementRef,
    },
    /// A mapping whose foreach clause binds the same set twice — a
    /// self-join. The `join_elements` are the elements its where clause
    /// compares; review whether they qualify the join sufficiently.
    SelfJoin {
        /// The mapping.
        mapping: MappingName,
        /// The self-joined set element.
        relation: ElementRef,
        /// Elements used in the join conditions.
        join_elements: Vec<ElementRef>,
    },
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::MultiSourceTarget { target, sources } => {
                write!(f, "{target} is populated from multiple source elements:")?;
                for (s, m) in sources {
                    write!(f, " {s} (via {m})")?;
                }
                write!(f, " — check that their semantics agree")
            }
            Lint::FanOutSource { source, targets } => {
                write!(f, "{source} feeds multiple target elements:")?;
                for (t, m) in targets {
                    write!(f, " {t} (via {m})")?;
                }
                Ok(())
            }
            Lint::UnpopulatedTarget { target } => {
                write!(f, "no mapping populates {target}")
            }
            Lint::SelfJoin {
                mapping,
                relation,
                join_elements,
            } => {
                write!(
                    f,
                    "{mapping} self-joins {relation} on {join_elements:?} — verify the \
                     join attributes identify what you mean"
                )
            }
        }
    }
}

/// Runs every lint over a set of mappings.
pub fn lint_mappings(
    mappings: &[Mapping],
    source_schemas: &[&Schema],
    target_schema: &Schema,
) -> Result<Vec<Lint>, CheckError> {
    let triples: Vec<(&Mapping, MappingTriple)> = mappings
        .iter()
        .map(|m| extract_triple(m, source_schemas, target_schema).map(|t| (m, t)))
        .collect::<Result<_, _>>()?;

    let mut lints = Vec::new();

    // Gather all (source, target, mapping) correspondences.
    let mut pairs: Vec<(ElementRef, ElementRef, MappingName)> = Vec::new();
    for (m, t) in &triples {
        for (s, tgt) in &t.correspondences {
            pairs.push((s.clone(), tgt.clone(), m.name.clone()));
        }
    }

    // MultiSourceTarget.
    let mut targets: Vec<ElementRef> = pairs.iter().map(|(_, t, _)| t.clone()).collect();
    targets.sort();
    targets.dedup();
    for target in &targets {
        let mut sources: Vec<(ElementRef, MappingName)> = pairs
            .iter()
            .filter(|(_, t, _)| t == target)
            .map(|(s, _, m)| (s.clone(), m.clone()))
            .collect();
        sources.sort_by(|a, b| (&a.0, a.1.as_str()).cmp(&(&b.0, b.1.as_str())));
        sources.dedup();
        let mut distinct: Vec<&ElementRef> = sources.iter().map(|(s, _)| s).collect();
        distinct.sort();
        distinct.dedup();
        if distinct.len() > 1 {
            lints.push(Lint::MultiSourceTarget {
                target: target.clone(),
                sources,
            });
        }
    }

    // FanOutSource (within a single mapping — cross-mapping fan-out to the
    // same contract is expected).
    for (m, t) in &triples {
        let mut srcs: Vec<&ElementRef> = t.correspondences.iter().map(|(s, _)| s).collect();
        srcs.sort();
        srcs.dedup();
        for src in srcs {
            let targets: Vec<(ElementRef, MappingName)> = t
                .correspondences
                .iter()
                .filter(|(s, _)| s == src)
                .map(|(_, tgt)| (tgt.clone(), m.name.clone()))
                .collect();
            if targets.len() > 1 {
                lints.push(Lint::FanOutSource {
                    source: src.clone(),
                    targets,
                });
            }
        }
    }

    // UnpopulatedTarget.
    let populated: Vec<&ElementRef> = pairs.iter().map(|(_, t, _)| t).collect();
    for e in target_schema.atomic_elements() {
        let r = ElementRef::new(target_schema.name(), target_schema.path(e));
        if !populated.contains(&&r) {
            lints.push(Lint::UnpopulatedTarget { target: r });
        }
    }

    // SelfJoin: the foreach clause binds one set expression twice.
    for (m, t) in &triples {
        let mut seen: Vec<String> = Vec::new();
        for b in &m.foreach.from {
            if let Expr::Path(p) = &b.source {
                if matches!(p.start, PathStart::Root(_)) {
                    let key = p.to_string();
                    if seen.contains(&key) {
                        // Collect the join elements (where-clause operands).
                        let mut join_elements: Vec<ElementRef> = Vec::new();
                        for c in &m.foreach.conditions {
                            if let Condition::Cmp(_) = c {
                                for e in &t.foreach_where_elements {
                                    if !join_elements.contains(e) {
                                        join_elements.push(e.clone());
                                    }
                                }
                            }
                        }
                        // The relation element (resolve the set path).
                        if let Some((s, rel)) = resolve_root_path(p, source_schemas) {
                            lints.push(Lint::SelfJoin {
                                mapping: m.name.clone(),
                                relation: ElementRef::new(s.name(), s.path(rel)),
                                join_elements,
                            });
                        }
                    }
                    seen.push(key);
                }
            }
        }
    }

    Ok(lints)
}

fn resolve_root_path<'a>(
    p: &dtr_query::ast::PathExpr,
    schemas: &[&'a Schema],
) -> Option<(&'a Schema, dtr_model::schema::ElementId)> {
    let PathStart::Root(r) = &p.start else {
        return None;
    };
    for s in schemas {
        if let Some(root) = s.root(r) {
            let mut cur = root;
            for step in &p.steps {
                let label = match step {
                    dtr_query::ast::Step::Project(l) | dtr_query::ast::Step::Choice(l) => l,
                };
                while s.element(cur).kind == ElementKind::Set {
                    cur = s.set_member(cur)?;
                }
                cur = s.child(cur, label)?;
            }
            return Some((s, cur));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::types::{AtomicType, Type};

    fn schemas() -> (Schema, Schema) {
        let src = Schema::build(
            "S",
            vec![(
                "R",
                Type::relation(vec![
                    ("k", AtomicType::String),
                    ("v", AtomicType::String),
                    ("grp", AtomicType::String),
                ]),
            )],
        )
        .unwrap();
        let tgt = Schema::build(
            "D",
            vec![(
                "Q",
                Type::relation(vec![
                    ("a", AtomicType::String),
                    ("b", AtomicType::String),
                    ("dead", AtomicType::String),
                ]),
            )],
        )
        .unwrap();
        (src, tgt)
    }

    #[test]
    fn detects_fan_out_and_unpopulated() {
        let (src, tgt) = schemas();
        // v feeds both a and b; dead is never populated.
        let m = Mapping::parse(
            "m1",
            "foreach select r.v, r.v from R r
             exists select q.a, q.b from Q q",
        )
        .unwrap();
        let lints = lint_mappings(&[m], &[&src], &tgt).unwrap();
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::FanOutSource { source, .. }
            if source.path == "/R/v")));
        assert!(lints
            .iter()
            .any(|l| matches!(l, Lint::UnpopulatedTarget { target }
            if target.path == "/Q/dead")));
    }

    #[test]
    fn detects_multi_source_target() {
        let (src, tgt) = schemas();
        let m1 = Mapping::parse(
            "m1",
            "foreach select r.v from R r exists select q.a from Q q",
        )
        .unwrap();
        let m2 = Mapping::parse(
            "m2",
            "foreach select r.k from R r exists select q.a from Q q",
        )
        .unwrap();
        let lints = lint_mappings(&[m1, m2], &[&src], &tgt).unwrap();
        let multi = lints
            .iter()
            .find_map(|l| match l {
                Lint::MultiSourceTarget { target, sources } if target.path == "/Q/a" => {
                    Some(sources.len())
                }
                _ => None,
            })
            .expect("multi-source lint fires");
        assert_eq!(multi, 2);
    }

    #[test]
    fn detects_self_join() {
        let (src, tgt) = schemas();
        let m = Mapping::parse(
            "nbr",
            "foreach select r.k, n.k from R r, R n where r.grp = n.grp
             exists select q.a, q.b from Q q",
        )
        .unwrap();
        let lints = lint_mappings(&[m], &[&src], &tgt).unwrap();
        let self_join = lints
            .iter()
            .find_map(|l| match l {
                Lint::SelfJoin {
                    mapping,
                    relation,
                    join_elements,
                } => Some((mapping.clone(), relation.clone(), join_elements.clone())),
                _ => None,
            })
            .expect("self-join lint fires");
        assert_eq!(self_join.0.as_str(), "nbr");
        assert_eq!(self_join.1.path, "/R");
        assert!(self_join.2.iter().any(|e| e.path == "/R/grp"));
    }

    #[test]
    fn clean_mapping_produces_no_spurious_lints() {
        let (src, tgt) = schemas();
        let m = Mapping::parse(
            "ok",
            "foreach select r.k, r.v, r.grp from R r
             exists select q.a, q.b, q.dead from Q q",
        )
        .unwrap();
        let lints = lint_mappings(&[m], &[&src], &tgt).unwrap();
        assert!(lints.is_empty(), "{lints:?}");
    }

    #[test]
    fn lints_render() {
        let (src, tgt) = schemas();
        let m = Mapping::parse(
            "m1",
            "foreach select r.v, r.v from R r exists select q.a, q.b from Q q",
        )
        .unwrap();
        for l in lint_mappings(&[m], &[&src], &tgt).unwrap() {
            assert!(!l.to_string().is_empty());
        }
    }
}
