//! The mapping triple `⟨Es, Et, Wc⟩` (Section 4.3).
//!
//! "A mapping from a schema `<E1,fp1>` to schema `<E2,fp2>` can be modeled
//! as a triple `<Es, Et, Wc>` where `Es ⊆ E1`, `Et ⊆ E2`, and `Wc` is a set
//! of atomic type element pairs. The sets `Es` and `Et` consist of all the
//! schema elements that are referred to by the expressions in the foreach
//! and exists clauses of the mapping, respectively. The set `Wc` consists of
//! pairs of elements that are referred to either by two expressions in a
//! binary predicate in a where clause, or by two expressions in the same
//! position of the two mapping select clauses."
//!
//! This is the representation the MXQL mapping predicates are evaluated
//! against (Section 5) and that the metastore serializes (Section 7.1).

use crate::glav::Mapping;
use dtr_model::schema::Schema;
use dtr_model::value::ElementRef;
use dtr_query::ast::{Condition, Expr};
use dtr_query::check::{check_query, CheckError, Resolved, SchemaCatalog};

/// The `⟨Es, Et, Wc⟩` model of a mapping, with enough structure retained to
/// answer both the single-arrow and the double-arrow predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MappingTriple {
    /// `Es`: every source element referred to by a foreach expression.
    pub source_elements: Vec<ElementRef>,
    /// `Et`: every target element referred to by an exists expression.
    pub target_elements: Vec<ElementRef>,
    /// The cross-schema pairs of `Wc`: `(source element, target element)`
    /// at the same select position — the *correspondences* (what the
    /// metastore's `Correspondence` relation stores).
    pub correspondences: Vec<(ElementRef, ElementRef)>,
    /// The intra-source pairs of `Wc`: elements equated by a binary
    /// predicate in the foreach where clause.
    pub source_where_pairs: Vec<(ElementRef, ElementRef)>,
    /// The intra-target pairs of `Wc` (exists where clause).
    pub target_where_pairs: Vec<(ElementRef, ElementRef)>,
    /// Elements referenced by foreach *select* expressions.
    pub foreach_select_elements: Vec<ElementRef>,
    /// Elements referenced by foreach *where* expressions.
    pub foreach_where_elements: Vec<ElementRef>,
}

impl MappingTriple {
    /// All source elements the mapping's foreach query references in its
    /// select **or** where clause — the element set of what-provenance
    /// (Definition 6.2's set `U`).
    pub fn what_elements(&self) -> Vec<ElementRef> {
        let mut out = self.foreach_select_elements.clone();
        for e in &self.foreach_where_elements {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        out
    }

    /// The target elements the mapping populates (correspondence targets).
    pub fn populated_elements(&self) -> Vec<ElementRef> {
        let mut out = Vec::new();
        for (_, et) in &self.correspondences {
            if !out.contains(et) {
                out.push(et.clone());
            }
        }
        out
    }

    /// True iff `<src → m → tgt>` holds for this mapping: some select
    /// position copies `src` into `tgt` (Theorem 6.1: schema-level
    /// where-provenance).
    pub fn single_arrow(&self, src: &ElementRef, tgt: &ElementRef) -> bool {
        self.correspondences
            .iter()
            .any(|(s, t)| s == src && t == tgt)
    }

    /// True iff `<src ⇒ m ⇒ tgt>` holds: the mapping populates `tgt` and
    /// references `src` in its foreach select or where clause (Theorem 6.4:
    /// schema-level what-provenance).
    pub fn double_arrow(&self, src: &ElementRef, tgt: &ElementRef) -> bool {
        self.populated_elements().contains(tgt)
            && (self.foreach_select_elements.contains(src)
                || self.foreach_where_elements.contains(src))
    }
}

fn push_unique(v: &mut Vec<ElementRef>, e: ElementRef) {
    if !v.contains(&e) {
        v.push(e);
    }
}

fn expr_ref(resolved: &Resolved<'_>, e: &Expr) -> Option<ElementRef> {
    let (s, eid) = resolved.expr_element(e)?;
    let schema = resolved.catalog().schema(s);
    Some(ElementRef::new(schema.name(), schema.path(eid)))
}

/// All elements an expression refers to. A function call refers to every
/// element of its arguments: a mapping may "combine more than one element
/// of one schema to an element of a second schema" (Section 4.3), in which
/// case the combined value originates from all of them.
fn expr_refs(resolved: &Resolved<'_>, e: &Expr) -> Vec<ElementRef> {
    match e {
        Expr::Call(_, args) => args.iter().flat_map(|a| expr_refs(resolved, a)).collect(),
        other => expr_ref(resolved, other).into_iter().collect(),
    }
}

/// Extracts the `⟨Es, Et, Wc⟩` triple of a mapping.
pub fn extract_triple(
    m: &Mapping,
    source_schemas: &[&Schema],
    target_schema: &Schema,
) -> Result<MappingTriple, CheckError> {
    let src = check_query(&m.foreach, SchemaCatalog::new(source_schemas.to_vec()))?;
    let tgt = check_query(&m.exists, SchemaCatalog::new(vec![target_schema]))?;

    let mut triple = MappingTriple {
        source_elements: Vec::new(),
        target_elements: Vec::new(),
        correspondences: Vec::new(),
        source_where_pairs: Vec::new(),
        target_where_pairs: Vec::new(),
        foreach_select_elements: Vec::new(),
        foreach_where_elements: Vec::new(),
    };

    // Es / Et: elements of every expression (select, binding sources,
    // where operands).
    let collect =
        |resolved: &Resolved<'_>, q: &dtr_query::ast::Query, out: &mut Vec<ElementRef>| {
            for e in &q.select {
                for r in expr_refs(resolved, e) {
                    push_unique(out, r);
                }
            }
            for b in &q.from {
                if let Some(r) = expr_ref(resolved, &b.source) {
                    push_unique(out, r);
                }
            }
            for c in &q.conditions {
                if let Condition::Cmp(cmp) = c {
                    for e in [&cmp.left, &cmp.right] {
                        if let Some(r) = expr_ref(resolved, e) {
                            push_unique(out, r);
                        }
                    }
                }
            }
        };
    collect(&src, &m.foreach, &mut triple.source_elements);
    collect(&tgt, &m.exists, &mut triple.target_elements);

    // Correspondences: same select position in the two clauses. A function
    // call on the foreach side yields one correspondence per combined
    // source element.
    for (fe, ee) in m.foreach.select.iter().zip(&m.exists.select) {
        if let Some(t) = expr_ref(&tgt, ee) {
            for s in expr_refs(&src, fe) {
                if !triple.correspondences.contains(&(s.clone(), t.clone())) {
                    triple.correspondences.push((s, t.clone()));
                }
            }
        }
    }

    // Where pairs.
    let collect_pairs = |resolved: &Resolved<'_>,
                         q: &dtr_query::ast::Query,
                         out: &mut Vec<(ElementRef, ElementRef)>| {
        for c in &q.conditions {
            if let Condition::Cmp(cmp) = c {
                if let (Some(l), Some(r)) = (
                    expr_ref(resolved, &cmp.left),
                    expr_ref(resolved, &cmp.right),
                ) {
                    if !out.contains(&(l.clone(), r.clone())) {
                        out.push((l, r));
                    }
                }
            }
        }
    };
    collect_pairs(&src, &m.foreach, &mut triple.source_where_pairs);
    collect_pairs(&tgt, &m.exists, &mut triple.target_where_pairs);

    // Foreach select / where element sets (for the double arrow).
    for e in &m.foreach.select {
        for r in expr_refs(&src, e) {
            push_unique(&mut triple.foreach_select_elements, r);
        }
    }
    for c in &m.foreach.conditions {
        if let Condition::Cmp(cmp) = c {
            for e in [&cmp.left, &cmp.right] {
                if let Some(r) = expr_ref(&src, e) {
                    push_unique(&mut triple.foreach_where_elements, r);
                }
            }
        }
    }

    Ok(triple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::types::{AtomicType, Type};

    fn us_schema() -> Schema {
        Schema::build(
            "USdb",
            vec![(
                "US",
                Type::record(vec![
                    (
                        "houses",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("floors", AtomicType::String),
                            ("price", AtomicType::String),
                            ("aid", AtomicType::String),
                        ]),
                    ),
                    (
                        "agents",
                        Type::set(Type::record(vec![
                            ("aid", Type::string()),
                            (
                                "title",
                                Type::choice(vec![
                                    ("name", Type::string()),
                                    ("firm", Type::string()),
                                ]),
                            ),
                            ("phone", Type::string()),
                        ])),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn portal_schema() -> Schema {
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn m2() -> Mapping {
        // Mapping m2 of Figure 1 (firms).
        Mapping::parse(
            "m2",
            "foreach
               select h.hid, h.floors, h.price, f, a.phone
               from US.houses h, US.agents a, a.title->firm f
               where h.aid = a.aid
             exists
               select e.hid, e.stories, e.value, c.title, c.phone
               from Portal.estates e, Portal.contacts c
               where e.contact = c.title",
        )
        .unwrap()
    }

    #[test]
    fn correspondences_follow_select_positions() {
        let us = us_schema();
        let portal = portal_schema();
        let t = extract_triple(&m2(), &[&us], &portal).unwrap();
        // Example 4.5: price corresponds to value (third select position).
        assert!(t.single_arrow(
            &ElementRef::new("USdb", "/US/houses/price"),
            &ElementRef::new("Pdb", "/Portal/estates/value"),
        ));
        // The firm alternative feeds the contact title.
        assert!(t.single_arrow(
            &ElementRef::new("USdb", "/US/agents/title/firm"),
            &ElementRef::new("Pdb", "/Portal/contacts/title"),
        ));
        // But not crosswise.
        assert!(!t.single_arrow(
            &ElementRef::new("USdb", "/US/houses/price"),
            &ElementRef::new("Pdb", "/Portal/estates/hid"),
        ));
    }

    #[test]
    fn double_arrow_includes_join_elements() {
        let us = us_schema();
        let portal = portal_schema();
        let t = extract_triple(&m2(), &[&us], &portal).unwrap();
        // Example 5.7: aid is used only in the join, yet affects the
        // population of every target element.
        let aid = ElementRef::new("USdb", "/US/houses/aid");
        let value = ElementRef::new("Pdb", "/Portal/estates/value");
        assert!(t.double_arrow(&aid, &value));
        assert!(!t.single_arrow(&aid, &value));
        // The single-arrow cases are also double-arrow cases
        // (where-provenance ⊆ what-provenance).
        let price = ElementRef::new("USdb", "/US/houses/price");
        assert!(t.double_arrow(&price, &value));
    }

    #[test]
    fn element_sets_cover_all_references() {
        let us = us_schema();
        let portal = portal_schema();
        let t = extract_triple(&m2(), &[&us], &portal).unwrap();
        // houses, agents, the choice alternative, and all atomic fields.
        let paths: Vec<&str> = t.source_elements.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"/US/houses/hid"));
        assert!(paths.contains(&"/US/houses"));
        assert!(paths.contains(&"/US/agents"));
        assert!(paths.contains(&"/US/agents/title/firm"));
        assert!(paths.contains(&"/US/houses/aid"));
        assert!(paths.contains(&"/US/agents/aid"));

        let tpaths: Vec<&str> = t.target_elements.iter().map(|e| e.path.as_str()).collect();
        assert!(tpaths.contains(&"/Portal/estates/contact"));
        assert!(tpaths.contains(&"/Portal/contacts/title"));
    }

    #[test]
    fn where_pairs_recorded() {
        let us = us_schema();
        let portal = portal_schema();
        let t = extract_triple(&m2(), &[&us], &portal).unwrap();
        assert_eq!(t.source_where_pairs.len(), 1);
        assert_eq!(
            t.source_where_pairs[0],
            (
                ElementRef::new("USdb", "/US/houses/aid"),
                ElementRef::new("USdb", "/US/agents/aid")
            )
        );
        assert_eq!(t.target_where_pairs.len(), 1);
    }

    #[test]
    fn what_elements_union() {
        let us = us_schema();
        let portal = portal_schema();
        let t = extract_triple(&m2(), &[&us], &portal).unwrap();
        let what = t.what_elements();
        assert!(what.contains(&ElementRef::new("USdb", "/US/houses/price")));
        assert!(what.contains(&ElementRef::new("USdb", "/US/houses/aid")));
        // `pool` (if it existed) is not referenced: what-provenance excludes
        // untouched elements. `phone` of houses does not exist here; check
        // that a non-referenced element is absent by size reasoning:
        assert_eq!(what.len(), t.foreach_select_elements.len() + 2); // aid pair adds two
    }

    #[test]
    fn populated_elements_are_correspondence_targets() {
        let us = us_schema();
        let portal = portal_schema();
        let t = extract_triple(&m2(), &[&us], &portal).unwrap();
        let pop = t.populated_elements();
        assert_eq!(pop.len(), 5);
        assert!(pop.contains(&ElementRef::new("Pdb", "/Portal/contacts/phone")));
    }
}
