//! Mapping satisfaction (Section 4.3).
//!
//! "Given a pair of instances `Is` of schema `Ss` and `It` of schema `St`,
//! the mapping is satisfied if `∀t ∈ Qs(Is) ⇒ t ∈ Qt(It)`" — the target
//! must contain every tuple the source query retrieves.

use crate::glav::Mapping;
use dtr_query::eval::{Catalog, EvalError, Evaluator, Source};
use dtr_query::functions::FunctionRegistry;
use std::collections::HashSet;

/// Checks whether `m` is satisfied by the given source and target
/// instances.
pub fn is_satisfied(
    m: &Mapping,
    sources: &[Source<'_>],
    target: Source<'_>,
    functions: &FunctionRegistry,
) -> Result<bool, EvalError> {
    Ok(violations(m, sources, target, functions)?.is_empty())
}

/// The tuples of `Qs(Is)` that are missing from `Qt(It)` — empty iff the
/// mapping is satisfied. Useful for debugging mapping definitions.
pub fn violations(
    m: &Mapping,
    sources: &[Source<'_>],
    target: Source<'_>,
    functions: &FunctionRegistry,
) -> Result<Vec<Vec<dtr_model::value::AtomicValue>>, EvalError> {
    let src_catalog = Catalog::new(sources.to_vec());
    let src_rows = Evaluator::new(&src_catalog, functions)
        .run(&m.foreach)?
        .tuples();
    let tgt_catalog = Catalog::new(vec![target]);
    let tgt_rows = Evaluator::new(&tgt_catalog, functions)
        .run(&m.exists)?
        .tuples();
    let tgt_set: HashSet<Vec<dtr_model::value::AtomicValue>> = tgt_rows.into_iter().collect();
    Ok(src_rows
        .into_iter()
        .filter(|t| !tgt_set.contains(t))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::instance::{Instance, Value};
    use dtr_model::schema::Schema;
    use dtr_model::types::{AtomicType, Type};

    fn setup() -> (Schema, Instance, Schema, Instance) {
        let src_s = Schema::build(
            "S",
            vec![(
                "R",
                Type::relation(vec![("a", AtomicType::String), ("b", AtomicType::String)]),
            )],
        )
        .unwrap();
        let tgt_s = Schema::build(
            "T",
            vec![(
                "Q",
                Type::relation(vec![("x", AtomicType::String), ("y", AtomicType::String)]),
            )],
        )
        .unwrap();
        let mut src_i = Instance::new("S");
        src_i.install_root(
            "R",
            Value::set(vec![
                Value::record(vec![("a", Value::str("1")), ("b", Value::str("2"))]),
                Value::record(vec![("a", Value::str("3")), ("b", Value::str("4"))]),
            ]),
        );
        src_i.annotate_elements(&src_s).unwrap();
        let mut tgt_i = Instance::new("T");
        tgt_i.install_root(
            "Q",
            Value::set(vec![Value::record(vec![
                ("x", Value::str("1")),
                ("y", Value::str("2")),
            ])]),
        );
        tgt_i.annotate_elements(&tgt_s).unwrap();
        (src_s, src_i, tgt_s, tgt_i)
    }

    #[test]
    fn detects_missing_tuples() {
        let (src_s, src_i, tgt_s, tgt_i) = setup();
        let m = Mapping::parse(
            "m",
            "foreach select r.a, r.b from R r exists select q.x, q.y from Q q",
        )
        .unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let v = violations(
            &m,
            &[Source {
                schema: &src_s,
                instance: &src_i,
            }],
            Source {
                schema: &tgt_s,
                instance: &tgt_i,
            },
            &funcs,
        )
        .unwrap();
        // (3,4) is missing in the target.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0][0].to_string(), "3");
        assert!(!is_satisfied(
            &m,
            &[Source {
                schema: &src_s,
                instance: &src_i
            }],
            Source {
                schema: &tgt_s,
                instance: &tgt_i
            },
            &funcs,
        )
        .unwrap());
    }

    #[test]
    fn satisfied_when_target_superset() {
        let (src_s, src_i, tgt_s, mut tgt_i) = setup();
        let q = tgt_i.root("Q").unwrap();
        tgt_i.push_set_member(
            q,
            Value::record(vec![("x", Value::str("3")), ("y", Value::str("4"))]),
        );
        // An extra target tuple is fine: satisfaction is containment.
        tgt_i.push_set_member(
            q,
            Value::record(vec![("x", Value::str("9")), ("y", Value::str("9"))]),
        );
        tgt_i.annotate_elements(&tgt_s).unwrap();
        let m = Mapping::parse(
            "m",
            "foreach select r.a, r.b from R r exists select q.x, q.y from Q q",
        )
        .unwrap();
        let funcs = FunctionRegistry::with_builtins();
        assert!(is_satisfied(
            &m,
            &[Source {
                schema: &src_s,
                instance: &src_i
            }],
            Source {
                schema: &tgt_s,
                instance: &tgt_i
            },
            &funcs,
        )
        .unwrap());
    }
}
