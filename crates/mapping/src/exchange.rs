//! The data exchange engine: executing mappings to materialize an
//! annotated target instance.
//!
//! The paper builds on the generation methodology of Popa et al. (reference \[21\])
//! ("Translating Web Data"): every tuple retrieved by a mapping's `foreach`
//! query is inserted into the target instance following the structure of the
//! `exists` query, merging values into Partition Normal Form. Section 7.2
//! adds annotation generation: every created value is annotated with its
//! schema element (`f_el`) and with the mapping that generated it (`f_mp`);
//! when two mappings generate the same value the annotation sets are
//! unioned — Figure 3's `title:"HomeGain" {m2,m3}`.
//!
//! The engine natively attaches annotations while inserting (the observable
//! contract of the §7.2 rewrite, which is also provided verbatim in
//! [`crate::rewrite`] for fidelity).

use crate::glav::Mapping;
use dtr_model::instance::{Instance, NodeData, NodeId, Value};
use dtr_model::label::Label;
use dtr_model::schema::{ElementId, ElementKind, Schema};
use dtr_model::value::AtomicValue;
use dtr_obs::guard::{Budget, GuardError, Meter};
use dtr_query::ast::{CmpOp, Condition, Expr, PathExpr, PathStart, Step};
use dtr_query::check::{check_query, CheckError, ExprKind, SchemaCatalog};
use dtr_query::eval::{Catalog, EvalError, EvalOptions, Evaluator, Source};
use dtr_query::functions::FunctionRegistry;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Errors raised by the exchange engine.
#[derive(Clone, Debug, PartialEq)]
pub enum ExchangeError {
    /// A mapping query failed static checking.
    Check(CheckError),
    /// The foreach query failed at runtime.
    Eval(EvalError),
    /// The exists query uses a construct the generator does not support.
    Unsupported(String),
    /// Two select positions assigned conflicting values to one target slot.
    Conflict(String),
    /// The generated instance failed conformance (engine bug or malformed
    /// mapping).
    Conformance(String),
    /// A resource budget was exhausted (see [`ExchangeOptions::budget`]).
    /// The in-flight mapping's inserts were rolled back, so the target
    /// holds exactly the first `mappings_completed` mappings.
    Guard {
        /// The structured budget violation.
        error: GuardError,
        /// Mappings fully applied before the abort.
        mappings_completed: usize,
    },
}

impl fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExchangeError::Check(e) => write!(f, "check error: {e}"),
            ExchangeError::Eval(e) => write!(f, "evaluation error: {e}"),
            ExchangeError::Unsupported(m) => write!(f, "unsupported mapping construct: {m}"),
            ExchangeError::Conflict(m) => write!(f, "conflicting assignment: {m}"),
            ExchangeError::Conformance(m) => write!(f, "conformance failure: {m}"),
            ExchangeError::Guard {
                error,
                mappings_completed,
            } => write!(
                f,
                "guard abort after {mappings_completed} completed mapping(s): {error}"
            ),
        }
    }
}

impl std::error::Error for ExchangeError {}

impl From<CheckError> for ExchangeError {
    fn from(e: CheckError) -> Self {
        ExchangeError::Check(e)
    }
}

impl From<EvalError> for ExchangeError {
    fn from(e: EvalError) -> Self {
        ExchangeError::Eval(e)
    }
}

/// Per-mapping exchange statistics, collected unconditionally (plain
/// integer bumps on the engine's own loop) so reports and the E2 experiment
/// can attribute overhead to individual mappings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MappingStats {
    /// The mapping these numbers describe.
    pub mapping: dtr_model::value::MappingName,
    /// Tuples retrieved by the mapping's foreach query.
    pub tuples: usize,
    /// Exists-clause member bindings instantiated (one merge decision
    /// each); always equals `rows_inserted + rows_merged`.
    pub bindings: usize,
    /// Fresh target set members materialized.
    pub rows_inserted: usize,
    /// Bindings folded into an existing member by PNF merging.
    pub rows_merged: usize,
    /// `f_mp` annotations newly written onto target nodes.
    pub annotations_written: usize,
    /// Annotation writes that were no-ops (name already present).
    pub annotations_suppressed: usize,
    /// Wall time spent running this mapping (foreach eval + insertion).
    pub wall_ns: u64,
    /// Journal offset when this mapping started (0 when journaling is off).
    pub started_at_event: u64,
    /// Journal offset when this mapping finished (0 when journaling is off).
    pub ended_at_event: u64,
}

impl MappingStats {
    /// The journal event window `[started_at_event, ended_at_event)` of this
    /// mapping's run, if the journal captured one. Slice the buffer with
    /// `dtr_obs::journal::events_in` instead of scanning all events.
    pub fn event_window(&self) -> Option<(u64, u64)> {
        (self.ended_at_event > self.started_at_event)
            .then_some((self.started_at_event, self.ended_at_event))
    }
}

/// Options controlling one exchange run.
#[derive(Clone, Debug)]
pub struct ExchangeOptions {
    /// Evaluate independent mappings' foreach queries on scoped worker
    /// threads feeding the single-writer insert stage. The produced
    /// instance is identical to a serial run; off by default. When the
    /// worker count resolves to one (auto sizing on a single-core host),
    /// the exchange falls back to the serial path — one worker thread is
    /// pure pipeline overhead.
    pub parallel: bool,
    /// Worker-thread cap for `parallel`; `0` means one per available core.
    pub workers: usize,
    /// Evaluator options for the foreach queries.
    pub eval: EvalOptions,
    /// Compile each plan binding's member structure into a reusable
    /// template (grouping, schema resolution, and field ordering done once
    /// per mapping instead of once per row). On by default; `false` selects
    /// the per-row reference construction kept for differential testing
    /// and as the pre-optimization benchmark baseline.
    pub member_templates: bool,
    /// Resource budget for the whole exchange: `max_rows` caps the foreach
    /// rows inserted cumulatively across mappings, `deadline`/`cancel`
    /// bound the insert stage, and the budget is propagated into the
    /// foreach evaluations (including parallel workers) so every thread
    /// observes cancellation. Exceeding it aborts with
    /// [`ExchangeError::Guard`] after rolling the in-flight mapping's
    /// inserts back. Unlimited by default.
    pub budget: Budget,
}

impl Default for ExchangeOptions {
    fn default() -> Self {
        ExchangeOptions {
            parallel: false,
            workers: 0,
            eval: EvalOptions::default(),
            member_templates: true,
            budget: Budget::default(),
        }
    }
}

/// The evaluator options a run's foreach queries actually use: when the
/// caller gave `eval` no budget of its own, the exchange budget bounds the
/// foreach stage too; otherwise the eval budget stands, but the exchange
/// cancel flag is shared so one `request_cancel` reaches every thread.
pub(crate) fn effective_eval(opts: &ExchangeOptions) -> EvalOptions {
    let mut eval = opts.eval.clone();
    if eval.budget.is_limited() {
        eval.budget.cancel = std::sync::Arc::clone(&opts.budget.cancel);
    } else {
        eval.budget = opts.budget.clone();
    }
    eval
}

/// Statistics of one exchange run.
#[derive(Clone, Debug, Default)]
pub struct ExchangeReport {
    /// `(mapping, tuples retrieved by its foreach query)`. Kept as the
    /// stable summary shape; `per_mapping` carries the full breakdown.
    pub tuples: Vec<(dtr_model::value::MappingName, usize)>,
    /// Full per-mapping row/merge/annotation counts, in execution order.
    pub per_mapping: Vec<MappingStats>,
}

impl ExchangeReport {
    /// The breakdown for one mapping, if it ran.
    pub fn stats_for(&self, name: &str) -> Option<&MappingStats> {
        self.per_mapping.iter().find(|s| s.mapping.as_str() == name)
    }

    /// Totals across all mappings, in `MappingStats` form (the `mapping`
    /// field keeps its default value; the event window spans the whole run).
    pub fn totals(&self) -> MappingStats {
        let mut out = MappingStats::default();
        for s in &self.per_mapping {
            out.tuples += s.tuples;
            out.bindings += s.bindings;
            out.rows_inserted += s.rows_inserted;
            out.rows_merged += s.rows_merged;
            out.annotations_written += s.annotations_written;
            out.annotations_suppressed += s.annotations_suppressed;
            out.wall_ns += s.wall_ns;
        }
        if let Some((start, end)) = self.event_window() {
            out.started_at_event = start;
            out.ended_at_event = end;
        }
        out
    }

    /// The journal event window covering every mapping in this report, if
    /// the journal captured one.
    pub fn event_window(&self) -> Option<(u64, u64)> {
        let windows: Vec<(u64, u64)> = self
            .per_mapping
            .iter()
            .filter_map(MappingStats::event_window)
            .collect();
        let start = windows.iter().map(|&(s, _)| s).min()?;
        let end = windows.iter().map(|&(_, e)| e).max()?;
        Some((start, end))
    }

    /// `(p50, p90, p99)` of per-mapping wall time in nanoseconds, or `None`
    /// when no mapping ran. Exact nearest-rank percentiles over the sorted
    /// `wall_ns` values — the mapping count is small, so no histogram
    /// approximation is needed here (queries use the log₂ histograms in
    /// `dtr_obs::metrics` instead).
    pub fn latency_percentiles(&self) -> Option<(u64, u64, u64)> {
        let mut walls: Vec<u64> = self.per_mapping.iter().map(|s| s.wall_ns).collect();
        if walls.is_empty() {
            return None;
        }
        walls.sort_unstable();
        let pick = |q: f64| {
            let rank = ((q * walls.len() as f64).ceil() as usize).clamp(1, walls.len());
            walls[rank - 1]
        };
        Some((pick(0.50), pick(0.90), pick(0.99)))
    }

    /// Synthesizes an EXPLAIN ANALYZE operator tree for the exchange from
    /// the per-mapping statistics: each mapping contributes a
    /// `foreach → nest → pnf-merge` chain (upstream operator as the first
    /// child, matching the query-side convention), and the root `exchange`
    /// node aggregates all mappings. Row accounting per mapping:
    /// `foreach` emits `tuples`, `nest` fans them out into `bindings`
    /// member instantiations, and `pnf-merge` keeps `rows_inserted` of
    /// them (the rest folded into existing members).
    pub fn analyze_plan(&self) -> dtr_obs::OpNode {
        let mut root =
            dtr_obs::OpNode::new("exchange", format!("{} mapping(s)", self.per_mapping.len()));
        for s in &self.per_mapping {
            let mut foreach = dtr_obs::OpNode::new("foreach", s.mapping.as_str().to_string());
            foreach.rows_out = s.tuples as u64;
            foreach.elapsed_ns = s.wall_ns;
            let mut nest = dtr_obs::OpNode::new("nest", s.mapping.as_str().to_string());
            nest.rows_in = s.tuples as u64;
            nest.rows_out = s.bindings as u64;
            nest.children.push(foreach);
            let mut merge = dtr_obs::OpNode::new("pnf-merge", s.mapping.as_str().to_string());
            merge.rows_in = s.bindings as u64;
            merge.rows_out = s.rows_inserted as u64;
            merge.children.push(nest);
            root.rows_in += s.bindings as u64;
            root.rows_out += s.rows_inserted as u64;
            root.elapsed_ns += s.wall_ns;
            root.children.push(merge);
        }
        root
    }
}

/// Where a target binding's set lives.
pub(crate) enum Parent {
    /// Under a schema root: `(root label, projection labels to the set)`.
    Root(Label, Vec<Label>),
    /// Under an earlier binding's member: `(binding index, projection
    /// labels to the set)`.
    Var(usize, Vec<Label>),
}

/// One exists-clause binding, planned.
pub(crate) struct PlanBinding {
    pub(crate) parent: Parent,
    pub(crate) member_elem: ElementId,
    /// Atomic assignments: `(steps relative to the member, slot class)`.
    pub(crate) fields: Vec<(Vec<Step>, usize)>,
}

/// The insertion plan derived from a mapping's exists query.
pub(crate) struct Plan {
    pub(crate) bindings: Vec<PlanBinding>,
    /// Slot class of each select position.
    pub(crate) select_classes: Vec<usize>,
    pub(crate) n_classes: usize,
}

impl Plan {
    /// For each binding, the index of the `Parent::Root` binding its chain
    /// hangs under (a root binding maps to itself). The incremental engine
    /// groups member classes by root chain through this.
    pub(crate) fn root_of(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.bindings.len());
        for (bi, b) in self.bindings.iter().enumerate() {
            match &b.parent {
                Parent::Root(..) => out.push(bi),
                Parent::Var(idx, _) => out.push(out[*idx]),
            }
        }
        out
    }
}

/// Simple union-find for slot classes.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind { parent: Vec::new() }
    }
    fn make(&mut self) -> usize {
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

fn path_key(p: &PathExpr) -> String {
    p.to_string()
}

pub(crate) fn plan_exists(m: &Mapping, target_schema: &Schema) -> Result<Plan, ExchangeError> {
    let resolved = check_query(&m.exists, SchemaCatalog::new(vec![target_schema]))?;
    let mut var_index: HashMap<&str, usize> = HashMap::new();
    let mut bindings: Vec<PlanBinding> = Vec::new();

    for b in &m.exists.from {
        let Expr::Path(p) = &b.source else {
            return Err(ExchangeError::Unsupported(format!(
                "exists binding `{}` must be a path",
                b.source
            )));
        };
        if p.steps.iter().any(|s| matches!(s, Step::Choice(_))) {
            return Err(ExchangeError::Unsupported(format!(
                "choice step in exists binding `{p}`"
            )));
        }
        let labels: Vec<Label> = p
            .steps
            .iter()
            .map(|s| match s {
                Step::Project(l) => l.clone(),
                Step::Choice(l) => l.clone(),
            })
            .collect();
        let parent = match &p.start {
            PathStart::Root(r) => Parent::Root(r.clone(), labels),
            PathStart::Var(v) => {
                let idx = *var_index.get(v.as_str()).ok_or_else(|| {
                    ExchangeError::Unsupported(format!(
                        "exists binding uses unknown variable `{v}`"
                    ))
                })?;
                Parent::Var(idx, labels)
            }
        };
        let member_elem = match resolved.path_kind(p)? {
            ExprKind::Complex(_, e, ElementKind::Set) => target_schema
                .set_member(e)
                .expect("set element has a member"),
            other => {
                return Err(ExchangeError::Unsupported(format!(
                    "exists binding `{p}` is not a set ({other:?})"
                )))
            }
        };
        var_index.insert(b.var.as_str(), bindings.len());
        bindings.push(PlanBinding {
            parent,
            member_elem,
            fields: Vec::new(),
        });
    }

    // Slot classes over (var, steps) paths.
    let mut uf = UnionFind::new();
    let mut slot_of: HashMap<String, (usize, usize, Vec<Step>)> = HashMap::new(); // key -> (class, binding idx, steps)

    let slot = |p: &PathExpr,
                uf: &mut UnionFind,
                slot_of: &mut HashMap<String, (usize, usize, Vec<Step>)>|
     -> Result<usize, ExchangeError> {
        let PathStart::Var(v) = &p.start else {
            return Err(ExchangeError::Unsupported(format!(
                "exists expression `{p}` must start from a variable"
            )));
        };
        let Some(&bidx) = var_index.get(v.as_str()) else {
            return Err(ExchangeError::Unsupported(format!(
                "exists expression uses unknown variable `{v}`"
            )));
        };
        let key = path_key(p);
        if let Some((c, _, _)) = slot_of.get(&key) {
            return Ok(*c);
        }
        let c = uf.make();
        slot_of.insert(key, (c, bidx, p.steps.clone()));
        Ok(c)
    };

    let mut select_classes = Vec::with_capacity(m.exists.select.len());
    for e in &m.exists.select {
        let Expr::Path(p) = e else {
            return Err(ExchangeError::Unsupported(format!(
                "exists select item `{e}` must be a path"
            )));
        };
        select_classes.push(slot(p, &mut uf, &mut slot_of)?);
    }

    for c in &m.exists.conditions {
        match c {
            Condition::Cmp(cmp) if cmp.op == CmpOp::Eq => {
                let (Expr::Path(l), Expr::Path(r)) = (&cmp.left, &cmp.right) else {
                    return Err(ExchangeError::Unsupported(format!(
                        "exists condition `{cmp}` must equate two paths"
                    )));
                };
                let cl = slot(l, &mut uf, &mut slot_of)?;
                let cr = slot(r, &mut uf, &mut slot_of)?;
                uf.union(cl, cr);
            }
            other => {
                return Err(ExchangeError::Unsupported(format!(
                    "exists condition `{other}` (only equalities are supported)"
                )));
            }
        }
    }

    // Normalize classes and attach fields to their bindings.
    let n = uf.parent.len();
    let mut canon: HashMap<usize, usize> = HashMap::new();
    let mut next = 0usize;
    let mut canon_of = |uf: &mut UnionFind, c: usize, canon: &mut HashMap<usize, usize>| {
        let root = uf.find(c);
        *canon.entry(root).or_insert_with(|| {
            let v = next;
            next += 1;
            v
        })
    };
    let mut plan = Plan {
        bindings,
        select_classes: Vec::new(),
        n_classes: 0,
    };
    for c in select_classes {
        let cc = canon_of(&mut uf, c, &mut canon);
        plan.select_classes.push(cc);
    }
    for (_, (c, bidx, steps)) in slot_of {
        let cc = canon_of(&mut uf, c, &mut canon);
        plan.bindings[bidx].fields.push((steps, cc));
    }
    // Deterministic field order (slot_of is a HashMap).
    for b in &mut plan.bindings {
        b.fields.sort_by(|a, c| {
            let ka: Vec<String> = a.0.iter().map(|s| format!("{s:?}")).collect();
            let kc: Vec<String> = c.0.iter().map(|s| format!("{s:?}")).collect();
            ka.cmp(&kc)
        });
    }
    plan.n_classes = n;
    Ok(plan)
}

/// A compiled member template for one plan binding: the structural work of
/// member construction — grouping field paths, resolving them against the
/// target schema, sorting record fields into declaration order — performed
/// once per mapping run instead of once per row. Filling a template with a
/// row's slot-class values is then a single pass cloning atomic values into
/// the prebuilt shape.
pub(crate) enum MemberShape {
    /// A leaf filled from one slot class.
    Atomic(usize),
    /// A record whose children are already in schema declaration order.
    Record(Vec<(Label, MemberShape)>),
    /// A choice committed to one alternative.
    Choice(Label, Box<MemberShape>),
}

impl MemberShape {
    /// Builds the member [`Value`] for one row. Returns `None` when every
    /// slot class under this shape is unassigned (the subtree is absent) —
    /// which classes are assigned is row-invariant, so this mirrors the
    /// per-row field filtering the template replaced.
    fn fill(&self, class_values: &[Option<AtomicValue>]) -> Option<Value> {
        match self {
            MemberShape::Atomic(c) => class_values[*c].clone().map(Value::Atomic),
            MemberShape::Record(children) => {
                let rec: Vec<(Label, Value)> = children
                    .iter()
                    .filter_map(|(l, s)| s.fill(class_values).map(|v| (l.clone(), v)))
                    .collect();
                (!rec.is_empty()).then_some(Value::Record(rec))
            }
            MemberShape::Choice(l, inner) => inner
                .fill(class_values)
                .map(|v| Value::choice(l.clone(), v)),
        }
    }
}

/// Compiles the member template from field assignments, following the schema
/// to know which intermediates are records and which are choices.
fn build_shape(
    schema: &Schema,
    elem: ElementId,
    fields: &[(&[Step], usize)],
) -> Result<MemberShape, ExchangeError> {
    if fields.is_empty() {
        return Err(ExchangeError::Unsupported(
            "a target member with no assigned fields".into(),
        ));
    }
    // Leaf?
    if fields.len() == 1 && fields[0].0.is_empty() {
        return Ok(MemberShape::Atomic(fields[0].1));
    }
    /// Field assignments grouped under one leading label.
    type Group<'a> = Vec<(&'a [Step], usize)>;
    match schema.element(elem).kind {
        ElementKind::Record => {
            // Group by leading label through an index map — one hash
            // lookup per field instead of a linear scan per field.
            let mut groups: Vec<(Label, Group<'_>)> = Vec::new();
            let mut group_index: HashMap<Label, usize> = HashMap::with_capacity(fields.len());
            for (steps, c) in fields {
                let Some((first, rest)) = steps.split_first() else {
                    return Err(ExchangeError::Conflict(
                        "value assigned to a whole record".into(),
                    ));
                };
                let label = match first {
                    Step::Project(l) => l.clone(),
                    Step::Choice(_) => {
                        return Err(ExchangeError::Unsupported(
                            "choice step on a record element".into(),
                        ))
                    }
                };
                match group_index.get(&label) {
                    Some(&i) => groups[i].1.push((rest, *c)),
                    None => {
                        group_index.insert(label.clone(), groups.len());
                        groups.push((label, vec![(rest, *c)]));
                    }
                }
            }
            let mut rec = Vec::with_capacity(groups.len());
            for (label, group) in groups {
                let child = schema.child(elem, &label).ok_or_else(|| {
                    ExchangeError::Unsupported(format!(
                        "target schema has no field `{label}` under {}",
                        schema.path(elem)
                    ))
                })?;
                rec.push((label, build_shape(schema, child, &group)?));
            }
            // Schema declaration order for deterministic output, via a
            // precomputed label→position map.
            let order_index: HashMap<&Label, usize> = schema
                .element(elem)
                .children
                .iter()
                .enumerate()
                .map(|(i, &c)| (&schema.element(c).label, i))
                .collect();
            rec.sort_by_key(|(l, _)| order_index.get(l).copied().unwrap_or(usize::MAX));
            Ok(MemberShape::Record(rec))
        }
        ElementKind::Choice => {
            let mut label: Option<Label> = None;
            let mut inner: Vec<(&[Step], usize)> = Vec::new();
            for (steps, c) in fields {
                let Some((first, rest)) = steps.split_first() else {
                    return Err(ExchangeError::Conflict(
                        "value assigned to a whole choice".into(),
                    ));
                };
                let l = match first {
                    Step::Choice(l) | Step::Project(l) => l.clone(),
                };
                match &label {
                    None => label = Some(l),
                    Some(prev) if *prev == l => {}
                    Some(prev) => {
                        return Err(ExchangeError::Conflict(format!(
                            "choice assigned two alternatives `{prev}` and `{l}`"
                        )))
                    }
                }
                inner.push((rest, *c));
            }
            let label = label.expect("fields nonempty");
            let child = schema.child(elem, &label).ok_or_else(|| {
                ExchangeError::Unsupported(format!(
                    "target schema has no alternative `{label}` under {}",
                    schema.path(elem)
                ))
            })?;
            Ok(MemberShape::Choice(
                label,
                Box::new(build_shape(schema, child, &inner)?),
            ))
        }
        other => Err(ExchangeError::Unsupported(format!(
            "cannot assign through element kind {other:?}"
        ))),
    }
}

/// The per-row reference member construction: groups field assignments and
/// resolves them against the schema for every single row, rebuilding all
/// intermediate structure each time. This is what member templates replace;
/// it is kept (verbatim) behind [`ExchangeOptions::member_templates`]` =
/// false` so dtr-check can hold the template path to it differentially and
/// so benchmarks can measure the pre-optimization configuration.
pub(crate) fn build_member_reference(
    schema: &Schema,
    elem: ElementId,
    fields: &[(&[Step], AtomicValue)],
) -> Result<Value, ExchangeError> {
    if fields.is_empty() {
        return Err(ExchangeError::Unsupported(
            "a target member with no assigned fields".into(),
        ));
    }
    // Leaf?
    if fields.len() == 1 && fields[0].0.is_empty() {
        return Ok(Value::Atomic(fields[0].1.clone()));
    }
    /// Field assignments grouped under one leading label.
    type Group<'a> = Vec<(&'a [Step], AtomicValue)>;
    match schema.element(elem).kind {
        ElementKind::Record => {
            // Group by leading label, preserving schema field order.
            let mut groups: Vec<(Label, Group<'_>)> = Vec::new();
            for (steps, v) in fields {
                let Some((first, rest)) = steps.split_first() else {
                    return Err(ExchangeError::Conflict(
                        "value assigned to a whole record".into(),
                    ));
                };
                let label = match first {
                    Step::Project(l) => l.clone(),
                    Step::Choice(_) => {
                        return Err(ExchangeError::Unsupported(
                            "choice step on a record element".into(),
                        ))
                    }
                };
                match groups.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, g)) => g.push((rest, v.clone())),
                    None => groups.push((label, vec![(rest, v.clone())])),
                }
            }
            let mut rec = Vec::with_capacity(groups.len());
            for (label, group) in groups {
                let child = schema.child(elem, &label).ok_or_else(|| {
                    ExchangeError::Unsupported(format!(
                        "target schema has no field `{label}` under {}",
                        schema.path(elem)
                    ))
                })?;
                rec.push((label, build_member_reference(schema, child, &group)?));
            }
            // Schema declaration order for deterministic output.
            let order: Vec<&Label> = schema
                .element(elem)
                .children
                .iter()
                .map(|&c| &schema.element(c).label)
                .collect();
            rec.sort_by_key(|(l, _)| order.iter().position(|o| *o == l).unwrap_or(usize::MAX));
            Ok(Value::Record(rec))
        }
        ElementKind::Choice => {
            let mut label: Option<Label> = None;
            let mut inner: Vec<(&[Step], AtomicValue)> = Vec::new();
            for (steps, v) in fields {
                let Some((first, rest)) = steps.split_first() else {
                    return Err(ExchangeError::Conflict(
                        "value assigned to a whole choice".into(),
                    ));
                };
                let l = match first {
                    Step::Choice(l) | Step::Project(l) => l.clone(),
                };
                match &label {
                    None => label = Some(l),
                    Some(prev) if *prev == l => {}
                    Some(prev) => {
                        return Err(ExchangeError::Conflict(format!(
                            "choice assigned two alternatives `{prev}` and `{l}`"
                        )))
                    }
                }
                inner.push((rest, v.clone()));
            }
            let label = label.expect("fields nonempty");
            let child = schema.child(elem, &label).ok_or_else(|| {
                ExchangeError::Unsupported(format!(
                    "target schema has no alternative `{label}` under {}",
                    schema.path(elem)
                ))
            })?;
            Ok(Value::choice(
                label,
                build_member_reference(schema, child, &inner)?,
            ))
        }
        other => Err(ExchangeError::Unsupported(format!(
            "cannot assign through element kind {other:?}"
        ))),
    }
}

/// Fingerprint of one source binding (a foreach tuple) — the label the
/// journal records per insert/merge event, and the key the `.trace`
/// cross-check re-derives by replaying the foreach query.
///
/// This 64-bit hash is never used as an identity: journal events carry
/// their own unique ids and are never merged on this value, so two
/// colliding tuples produce two distinct events. A replay consumer that
/// filters events by fingerprint gets a candidate *set* and narrows it
/// structurally against the replayed foreach tuples, so a collision can
/// widen an intermediate candidate list but never conflate rows.
pub fn row_fingerprint(row: &[AtomicValue]) -> u64 {
    let mut h = DefaultHasher::new();
    row.len().hash(&mut h);
    for v in row {
        v.hash(&mut h);
    }
    h.finish()
}

pub(crate) fn value_fingerprint(v: &Value, h: &mut DefaultHasher) {
    match v {
        Value::Atomic(a) => {
            0u8.hash(h);
            a.hash(h);
        }
        Value::Record(fields) => {
            1u8.hash(h);
            for (l, v) in fields {
                l.hash(h);
                value_fingerprint(v, h);
            }
        }
        Value::Choice(l, v) => {
            2u8.hash(h);
            l.hash(h);
            value_fingerprint(v, h);
        }
        Value::Set(members) => {
            3u8.hash(h);
            members.len().hash(h);
        }
    }
}

/// The exchange engine. Holds the target instance under construction plus
/// the merge index.
pub struct Exchange<'a> {
    pub(crate) sources: Vec<Source<'a>>,
    pub(crate) target_schema: &'a Schema,
    pub(crate) functions: &'a FunctionRegistry,
    pub(crate) target: Instance,
    /// `(set node, member fingerprint) -> candidate members` for PNF
    /// merging. A fingerprint match alone is not proof of equality: each
    /// bucket keeps the built member values so a merge is only taken after
    /// a structural comparison confirms it, and colliding-but-distinct
    /// members split the bucket instead of being folded together.
    pub(crate) merge_index: HashMap<(NodeId, u64), Vec<(Value, NodeId)>>,
    pub(crate) report: ExchangeReport,
    /// Insert-stage budget enforcement: `max_rows` charges accumulate
    /// across mappings; deadline/cancellation are polled per row.
    pub(crate) meter: Meter,
    /// Member-fingerprint override (see
    /// [`Exchange::set_member_fingerprinter`]); `None` uses the default
    /// structural hash.
    pub(crate) member_fp: Option<fn(&Value) -> u64>,
}

/// The outcome of one plan binding for one inserted row: which set was
/// targeted, the member-value fingerprint, the member node the binding
/// resolved to, and whether that member was freshly created (`true`) or
/// PNF-merged into (`false`). Bindings skipped by an [`Exchange::insert_row`]
/// mask report [`BindingTouch::SKIPPED`]. The incremental engine derives its
/// member-class contributor index and per-class insert/merge statistics from
/// these.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BindingTouch {
    pub(crate) set: NodeId,
    pub(crate) fp: u64,
    pub(crate) member: NodeId,
    pub(crate) created: bool,
}

impl BindingTouch {
    /// Sentinel for a binding excluded by the insert mask.
    pub(crate) const SKIPPED: BindingTouch = BindingTouch {
        set: NodeId(u32::MAX),
        fp: 0,
        member: NodeId(u32::MAX),
        created: false,
    };
}

impl<'a> Exchange<'a> {
    /// Creates an engine producing an instance for `target_schema` (the
    /// instance's database name is the schema's name).
    pub fn new(
        sources: Vec<Source<'a>>,
        target_schema: &'a Schema,
        functions: &'a FunctionRegistry,
    ) -> Self {
        let mut target = Instance::new(target_schema.name().to_string());
        // Pre-create every schema root so the target is queryable even when
        // a mapping retrieved no tuples at all.
        for &root in target_schema.roots() {
            let el = target_schema.element(root);
            target.push_raw(el.label.clone(), None, node_data_for(el.kind), true);
        }
        Exchange {
            sources,
            target_schema,
            functions,
            target,
            merge_index: HashMap::new(),
            report: ExchangeReport::default(),
            meter: Budget::default().meter("exchange.insert_row"),
            member_fp: None,
        }
    }

    /// Arms the insert-stage meter with a budget (captures the deadline
    /// now). Call before running any mapping.
    pub fn set_budget(&mut self, budget: &Budget) {
        self.meter = budget.meter("exchange.insert_row");
    }

    /// Overrides the member fingerprint used for PNF-merge bucketing. As
    /// with [`dtr_model::pnf::to_pnf_with`], fingerprints only *bucket*
    /// candidates — every merge is confirmed structurally — so a weaker or
    /// even constant hasher must never change the produced instance, only
    /// the bucketing cost. Exposed for differential/conformance testing
    /// (forcing collision splits on demand).
    pub fn set_member_fingerprinter(&mut self, f: fn(&Value) -> u64) {
        self.member_fp = Some(f);
    }

    /// Executes one mapping: evaluates its foreach query over the sources
    /// and inserts every tuple into the target.
    pub fn run_mapping(&mut self, m: &Mapping) -> Result<(), ExchangeError> {
        self.run_mapping_with(m, EvalOptions::default())
    }

    /// [`Exchange::run_mapping`] with explicit evaluator options for the
    /// foreach query.
    pub fn run_mapping_with(
        &mut self,
        m: &Mapping,
        eval: EvalOptions,
    ) -> Result<(), ExchangeError> {
        let opts = ExchangeOptions {
            eval,
            ..ExchangeOptions::default()
        };
        self.run_mapping_opts(m, &opts)
    }

    fn run_mapping_opts(
        &mut self,
        m: &Mapping,
        opts: &ExchangeOptions,
    ) -> Result<(), ExchangeError> {
        let started = std::time::Instant::now();
        let rows = eval_foreach(&self.sources, self.functions, m, effective_eval(opts));
        let eval_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.insert_mapping_rows(m, rows.map(|r| (r, eval_ns)), opts.member_templates)
    }

    /// Runs every mapping under the given options: parallel foreach
    /// evaluation when enabled (and more than one worker resolves), the
    /// serial engine otherwise. Arms the insert-stage meter with the
    /// options' budget first. On a guard abort the engine keeps exactly the
    /// completed mappings (the in-flight one is rolled back), so callers —
    /// like the fault-injection harness — can still [`Exchange::finish`] to
    /// inspect the consistent prefix.
    pub fn run_mappings(
        &mut self,
        mappings: &[Mapping],
        opts: &ExchangeOptions,
    ) -> Result<(), ExchangeError> {
        self.set_budget(&opts.budget);
        // A single worker is pure pipeline overhead over the serial path
        // (the auto-sized case on a single-core host resolves to one), so
        // parallel mode only spawns threads when at least two would run.
        if opts.parallel && resolved_workers(opts, mappings.len()) > 1 {
            self.run_parallel(mappings, opts)
        } else {
            for m in mappings {
                self.run_mapping_opts(m, opts)?;
            }
            Ok(())
        }
    }

    /// The single-writer insert stage for one mapping whose foreach rows
    /// were already evaluated — by this thread (serial) or by a worker
    /// (parallel). `rows` carries the evaluation result plus the wall time
    /// already spent evaluating (see [`EvaluatedRows`]), so
    /// `MappingStats::wall_ns` keeps covering eval + insertion as it did
    /// when the two stages were fused.
    fn insert_mapping_rows(
        &mut self,
        m: &Mapping,
        rows: EvaluatedRows,
        templates: bool,
    ) -> Result<(), ExchangeError> {
        let span = dtr_obs::span("exchange.run_mapping").field("mapping", &m.name);
        let started = std::time::Instant::now();
        let mut stats = MappingStats {
            mapping: m.name.clone(),
            started_at_event: dtr_obs::journal::next_event_id(),
            ..MappingStats::default()
        };
        // Plan errors surface before eval errors, exactly as in the fused
        // serial path where planning preceded evaluation.
        let plan = plan_exists(m, self.target_schema)?;
        // Rollback snapshot: the arena is append-only, so the target as it
        // was before this mapping is exactly its first `rollback_len` nodes.
        let rollback_len = self.target.len();
        let tuples_len = self.report.tuples.len();
        let (rows, eval_ns) = match rows {
            Ok(v) => v,
            // A guard trip inside the foreach evaluation: nothing was
            // written for this mapping, surface the structured abort.
            Err(ExchangeError::Eval(EvalError::Guard(g))) => return Err(self.guard_abort(m, g)),
            Err(e) => return Err(e),
        };
        stats.tuples = rows.len();
        self.report.tuples.push((m.name.clone(), rows.len()));
        if plan.select_classes.len() != m.foreach.select.len() {
            return Err(ExchangeError::Unsupported(format!(
                "mapping {}: select arity mismatch",
                m.name
            )));
        }
        // Member templates, compiled lazily at the first row (a mapping
        // that retrieved no tuples never validated its member structure,
        // and still shouldn't).
        let mut shapes: Vec<Option<MemberShape>> = Vec::new();
        shapes.resize_with(plan.bindings.len(), || None);
        for row in rows {
            if let Err(g) = self.meter.charge_rows(1) {
                self.rollback_mapping(m, rollback_len, tuples_len);
                return Err(self.guard_abort(m, g));
            }
            self.insert_row(m, &plan, &row, templates, &mut shapes, &mut stats, None)?;
        }
        stats.wall_ns =
            eval_ns.saturating_add(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        stats.ended_at_event = dtr_obs::journal::next_event_id();
        let counters = dtr_obs::counters();
        counters.rows_inserted.add(stats.rows_inserted as u64);
        counters.rows_merged.add(stats.rows_merged as u64);
        counters
            .annotations_written
            .add(stats.annotations_written as u64);
        counters
            .annotations_suppressed
            .add(stats.annotations_suppressed as u64);
        span.record("tuples", stats.tuples);
        span.record("rows_inserted", stats.rows_inserted);
        span.record("rows_merged", stats.rows_merged);
        if dtr_obs::recorder::enabled() {
            // The flight recorder gets this mapping's completed exchange
            // window plus a forced counter sample, so counter tracks in the
            // exported trace bracket every mapping boundary.
            dtr_obs::recorder::record_mapping_window(
                m.name.as_str(),
                stats.tuples as u64,
                stats.rows_inserted as u64,
                stats.rows_merged as u64,
                stats.wall_ns,
            );
            dtr_obs::recorder::sample_counters();
        }
        self.report.per_mapping.push(stats);
        Ok(())
    }

    /// Runs several mappings with their foreach queries evaluated on scoped
    /// worker threads. Insertion stays on this thread (the target instance
    /// has a single writer) and is applied strictly in mapping order, so
    /// the produced instance, annotations, report, and first error are
    /// identical to a serial run.
    fn run_parallel(
        &mut self,
        mappings: &[Mapping],
        opts: &ExchangeOptions,
    ) -> Result<(), ExchangeError> {
        use std::collections::BTreeMap;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc;

        let n = mappings.len();
        let workers = resolved_workers(opts, n);
        dtr_obs::counters().parallel_workers.add(workers as u64);
        // Workers only read sources/functions/mappings; clone the source
        // list out so `self` stays free for the mutable insert stage.
        let sources = self.sources.clone();
        let functions = self.functions;
        // Workers evaluate under the effective budget, sharing the cancel
        // flag, so a trip or user cancellation drains every thread.
        let eval = effective_eval(opts);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        let mut result: Result<(), ExchangeError> = Ok(());
        let mut inserted = 0usize;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let sources = &sources;
                let eval = eval.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let started = std::time::Instant::now();
                    let rows = eval_foreach(sources, functions, &mappings[i], eval.clone());
                    let eval_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    if tx.send((i, rows.map(|r| (r, eval_ns)))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Buffer out-of-order completions and insert in mapping order.
            let mut pending: BTreeMap<usize, EvaluatedRows> = BTreeMap::new();
            while inserted < n {
                if let Some(rows) = pending.remove(&inserted) {
                    if result.is_ok() {
                        result = self.insert_mapping_rows(
                            &mappings[inserted],
                            rows,
                            opts.member_templates,
                        );
                    }
                    inserted += 1;
                    continue;
                }
                match rx.recv() {
                    Ok((i, rows)) => {
                        pending.insert(i, rows);
                    }
                    Err(_) => break,
                }
            }
        });
        if result.is_ok() && inserted < n {
            // Only reachable if a worker died without sending (a panic).
            return Err(ExchangeError::Conformance(format!(
                "parallel exchange lost {} mapping result(s)",
                n - inserted
            )));
        }
        result
    }

    /// Inserts one foreach row's exists-clause bindings into the target.
    /// `mask`, when given, restricts execution to the flagged bindings (a
    /// chain-closed set: a `Parent::Var` binding may only be flagged when
    /// its base is) — the incremental engine replays rows against a single
    /// member class this way. Returns one [`BindingTouch`] per plan
    /// binding, [`BindingTouch::SKIPPED`] for masked-out ones.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn insert_row(
        &mut self,
        m: &Mapping,
        plan: &Plan,
        row: &[AtomicValue],
        templates: bool,
        shapes: &mut [Option<MemberShape>],
        stats: &mut MappingStats,
        mask: Option<&[bool]>,
    ) -> Result<Vec<BindingTouch>, ExchangeError> {
        let _span = dtr_obs::span("exchange.insert_row");
        // One source-binding fingerprint per foreach tuple; only computed
        // when the journal is capturing.
        let row_fp = dtr_obs::journal::enabled().then(|| row_fingerprint(row));
        // Assign slot-class values from the select positions.
        let mut class_values: Vec<Option<AtomicValue>> = vec![None; plan.n_classes];
        for (i, &c) in plan.select_classes.iter().enumerate() {
            match &class_values[c] {
                None => class_values[c] = Some(row[i].clone()),
                Some(prev) if *prev == row[i] => {}
                Some(prev) => {
                    return Err(ExchangeError::Conflict(format!(
                        "mapping {}: positions assign `{prev}` and `{}` to one slot",
                        m.name, row[i]
                    )))
                }
            }
        }

        // Insert bindings in order; remember each binding's member node.
        let mut touches: Vec<BindingTouch> = Vec::with_capacity(plan.bindings.len());
        for (bi, b) in plan.bindings.iter().enumerate() {
            if mask.is_some_and(|mk| !mk[bi]) {
                touches.push(BindingTouch::SKIPPED);
                continue;
            }
            stats.bindings += 1;
            let set_node = match &b.parent {
                Parent::Root(root, steps) => self.skeleton_set(m, root, steps, stats)?,
                Parent::Var(idx, steps) => {
                    let base = touches[*idx].member;
                    self.nested_set(m, base, b.member_elem, steps, stats)?
                }
            };
            let value = if templates {
                if shapes[bi].is_none() {
                    // Which slot classes carry a value is decided by the
                    // select positions alone, so the first row's assignment
                    // pattern holds for every row and the template compiles
                    // once.
                    let live: Vec<(&[Step], usize)> = b
                        .fields
                        .iter()
                        .filter(|(_, c)| class_values[*c].is_some())
                        .map(|(steps, c)| (steps.as_slice(), *c))
                        .collect();
                    shapes[bi] = Some(build_shape(self.target_schema, b.member_elem, &live)?);
                }
                let shape = shapes[bi].as_ref().expect("template compiled above");
                shape.fill(&class_values).ok_or_else(|| {
                    ExchangeError::Unsupported("a target member with no assigned fields".into())
                })?
            } else {
                let fields: Vec<(&[Step], AtomicValue)> = b
                    .fields
                    .iter()
                    .filter_map(|(steps, c)| {
                        class_values[*c]
                            .as_ref()
                            .map(|v| (steps.as_slice(), v.clone()))
                    })
                    .collect();
                build_member_reference(self.target_schema, b.member_elem, &fields)?
            };
            let fp = match self.member_fp {
                Some(f) => f(&value),
                None => {
                    let mut h = DefaultHasher::new();
                    value_fingerprint(&value, &mut h);
                    h.finish()
                }
            };
            // A fingerprint hit only nominates candidates; the merge is
            // confirmed by comparing the stored member values structurally.
            let key = (set_node, fp);
            let (existing, bucket_len) = match self.merge_index.get(&key) {
                Some(bucket) => (
                    bucket.iter().find(|e| e.0 == value).map(|e| e.1),
                    bucket.len(),
                ),
                None => (None, 0),
            };
            let (member, created) = match existing {
                Some(existing) => {
                    stats.rows_merged += 1;
                    if let Some(binding_fp) = row_fp {
                        dtr_obs::journal::record(
                            dtr_obs::journal::event(
                                "exchange.insert_row",
                                dtr_obs::journal::Outcome::PnfMerged {
                                    into: u64::from(existing.0),
                                },
                            )
                            .mapping(&m.name)
                            .binding(binding_fp)
                            .target(u64::from(existing.0)),
                        );
                    }
                    self.annotate_subtree(existing, m, stats);
                    (existing, false)
                }
                None => {
                    stats.rows_inserted += 1;
                    // The bucket keeps the insert-time value snapshot, not
                    // the node: nested-set containers are appended under a
                    // member after installation, so the live node's
                    // structure drifts from the member identity that merge
                    // confirmation must compare against.
                    let node = self.target.push_set_member(set_node, value.clone());
                    self.merge_index.entry(key).or_default().push((value, node));
                    if bucket_len > 0 && dtr_obs::journal::enabled() {
                        dtr_obs::journal::record(
                            dtr_obs::journal::event(
                                "exchange.insert_row",
                                dtr_obs::journal::Outcome::CollisionSplit { fingerprint: fp },
                            )
                            .mapping(&m.name)
                            .target(u64::from(node.0))
                            .detail(format!(
                                "{bucket_len} distinct member(s) already hold this fingerprint"
                            )),
                        );
                    }
                    if let Some(binding_fp) = row_fp {
                        dtr_obs::journal::record(
                            dtr_obs::journal::event(
                                "exchange.insert_row",
                                dtr_obs::journal::Outcome::Inserted,
                            )
                            .mapping(&m.name)
                            .binding(binding_fp)
                            .target(u64::from(node.0)),
                        );
                    }
                    self.annotate_subtree(node, m, stats);
                    (node, true)
                }
            };
            touches.push(BindingTouch {
                set: set_node,
                fp,
                member,
                created,
            });
        }
        Ok(touches)
    }

    /// Ensures the skeleton chain `root / steps... / set` exists, adding the
    /// mapping annotation along it. Returns the set node.
    fn skeleton_set(
        &mut self,
        m: &Mapping,
        root: &Label,
        steps: &[Label],
        stats: &mut MappingStats,
    ) -> Result<NodeId, ExchangeError> {
        let mut elem = self.target_schema.root(root).ok_or_else(|| {
            ExchangeError::Unsupported(format!("target schema has no root `{root}`"))
        })?;
        let mut node = match self.target.root(root) {
            Some(n) => n,
            None => {
                let data = node_data_for(self.target_schema.element(elem).kind);
                self.target.push_raw(root.clone(), None, data, true)
            }
        };
        record_annotation(
            self.target.add_mapping(node, m.name.clone()),
            node,
            m,
            stats,
        );
        for label in steps {
            elem = self.target_schema.child(elem, label).ok_or_else(|| {
                ExchangeError::Unsupported(format!("no element `{label}` in skeleton path"))
            })?;
            node = match self.target.child_by_label(node, label) {
                Some(c) => c,
                None => {
                    let data = node_data_for(self.target_schema.element(elem).kind);
                    let child = self.target.push_raw(label.clone(), Some(node), data, false);
                    attach_child(&mut self.target, self.target_schema, elem, node, child);
                    child
                }
            };
            record_annotation(
                self.target.add_mapping(node, m.name.clone()),
                node,
                m,
                stats,
            );
        }
        if !matches!(self.target_schema.element(elem).kind, ElementKind::Set) {
            return Err(ExchangeError::Unsupported(format!(
                "skeleton path does not end at a set (`{root}`)",
            )));
        }
        Ok(node)
    }

    /// Ensures a nested set under an existing member node, creating record
    /// intermediates as needed. `member_elem` is the schema element of the
    /// *target* set's member; the walk starts from the member's element.
    fn nested_set(
        &mut self,
        m: &Mapping,
        base: NodeId,
        member_elem: ElementId,
        steps: &[Label],
        stats: &mut MappingStats,
    ) -> Result<NodeId, ExchangeError> {
        // The set element is the parent of its member element; the base
        // member's element sits `steps.len()` levels above it.
        let set_elem = self
            .target_schema
            .parent(member_elem)
            .expect("member element has a set parent");
        let mut cur_elem = set_elem;
        for _ in 0..steps.len() {
            cur_elem = self
                .target_schema
                .parent(cur_elem)
                .expect("schema walk stays in bounds");
        }
        let mut node = base;
        for label in steps {
            cur_elem = self.target_schema.child(cur_elem, label).ok_or_else(|| {
                ExchangeError::Unsupported(format!("no element `{label}` in nested path"))
            })?;
            node = match self.target.child_by_label(node, label) {
                Some(c) => c,
                None => {
                    let data = node_data_for(self.target_schema.element(cur_elem).kind);
                    let child = self.target.push_raw(label.clone(), Some(node), data, false);
                    attach_child(&mut self.target, self.target_schema, cur_elem, node, child);
                    child
                }
            };
            record_annotation(
                self.target.add_mapping(node, m.name.clone()),
                node,
                m,
                stats,
            );
        }
        Ok(node)
    }

    /// Adds the mapping annotation to a member subtree — the part this
    /// mapping actually generated (Definition 5.2). Nested *set containers*
    /// are annotated but their members are not: when a row merges into an
    /// existing member, the existing nested-set members were generated by
    /// other rows or mappings, and this mapping's own inner members are
    /// annotated when its nested bindings insert them.
    fn annotate_subtree(&mut self, node: NodeId, m: &Mapping, stats: &mut MappingStats) {
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            record_annotation(self.target.add_mapping(n, m.name.clone()), n, m, stats);
            if self.target.set_members(n).is_none() {
                stack.extend_from_slice(self.target.children(n));
            }
        }
    }

    /// Rolls the in-flight mapping's writes back so the target holds
    /// exactly the mappings that completed: truncates the arena to the
    /// pre-mapping snapshot, prunes merge-index entries that point at
    /// discarded nodes, and strips this mapping's `f_mp` annotations from
    /// the surviving nodes (each mapping runs once per exchange, so the
    /// name identifies exactly its writes). O(target) — paid only on abort.
    fn rollback_mapping(&mut self, m: &Mapping, len: usize, tuples_len: usize) {
        self.target.truncate(len);
        self.merge_index.retain(|&(set, _), bucket| {
            if set.index() >= len {
                return false;
            }
            bucket.retain(|&(_, node)| node.index() < len);
            !bucket.is_empty()
        });
        for i in 0..len {
            self.target.remove_mapping(NodeId(i as u32), &m.name);
        }
        self.report.tuples.truncate(tuples_len);
        dtr_obs::counters().guard_rollbacks.incr();
    }

    /// Folds a guard trip into the structured exchange error, journaling
    /// the `guard_abort` outcome against the aborted mapping.
    fn guard_abort(&self, m: &Mapping, g: GuardError) -> ExchangeError {
        if dtr_obs::journal::enabled() {
            dtr_obs::journal::record(
                dtr_obs::journal::event(
                    "exchange.guard_abort",
                    dtr_obs::journal::Outcome::GuardAbort {
                        resource: g.resource.name(),
                    },
                )
                .mapping(&m.name)
                .detail(g.to_string()),
            );
        }
        ExchangeError::Guard {
            error: g,
            mappings_completed: self.report.per_mapping.len(),
        }
    }

    /// Finishes the exchange: computes element annotations (conformance
    /// check included) and returns the annotated target instance plus a
    /// report.
    pub fn finish(mut self) -> Result<(Instance, ExchangeReport), ExchangeError> {
        let span = dtr_obs::span("exchange.annotate_elements").field("nodes", self.target.len());
        self.target
            .annotate_elements(self.target_schema)
            .map_err(|e| ExchangeError::Conformance(e.to_string()))?;
        drop(span);
        if dtr_obs::stats::enabled() {
            let mut local = dtr_obs::StatsCatalog::new();
            for s in &self.sources {
                collect_instance_stats(&mut local, s.instance);
            }
            collect_instance_stats(&mut local, &self.target);
            dtr_obs::stats::merge(&local);
        }
        Ok((self.target, self.report))
    }
}

/// Walks an instance and records per-schema-path statistics into `catalog`:
/// every set node contributes one cardinality observation at its path, and
/// every atomic leaf contributes a tuple count plus a distinct-value
/// observation. Paths are root-rooted dot paths (`US.houses.price`) with
/// `->` for choice alternatives — the same convention the query evaluator's
/// canonicalized statistics keys use, so exchange-collected and
/// query-collected entries for one schema path merge into one row.
pub(crate) fn collect_instance_stats(catalog: &mut dtr_obs::StatsCatalog, inst: &Instance) {
    let mut stack: Vec<(NodeId, String)> = inst
        .roots()
        .iter()
        .map(|&r| (r, inst.label(r).to_string()))
        .collect();
    while let Some((id, path)) = stack.pop() {
        match &inst.node(id).data {
            NodeData::Atomic(v) => catalog.record_value(&path, &v.to_string()),
            NodeData::Record(fields) => {
                for &f in fields {
                    stack.push((f, format!("{path}.{}", inst.label(f))));
                }
            }
            NodeData::Choice(alt) => {
                if let Some(a) = *alt {
                    stack.push((a, format!("{path}->{}", inst.label(a))));
                }
            }
            NodeData::Set(members) => {
                catalog.record_set(&path, members.len() as u64);
                // Set members are `*`-labelled; they keep the set's path so
                // member-field statistics key on `<set path>.<field>`.
                for &m in members {
                    stack.push((m, path.clone()));
                }
            }
        }
    }
}

/// Folds one `Instance::add_mapping` outcome into the per-mapping stats and
/// journals the annotation decision against the target node.
fn record_annotation(newly_written: bool, node: NodeId, m: &Mapping, stats: &mut MappingStats) {
    if newly_written {
        stats.annotations_written += 1;
    } else {
        stats.annotations_suppressed += 1;
    }
    if dtr_obs::journal::enabled() {
        let outcome = if newly_written {
            dtr_obs::journal::Outcome::AnnotationWritten
        } else {
            dtr_obs::journal::Outcome::AnnotationSuppressed {
                reason: "already-present",
            }
        };
        dtr_obs::journal::record(
            dtr_obs::journal::event("exchange.annotate", outcome)
                .mapping(&m.name)
                .target(u64::from(node.0)),
        );
    }
}

pub(crate) fn node_data_for(kind: ElementKind) -> NodeData {
    match kind {
        ElementKind::Record => NodeData::Record(Vec::new()),
        ElementKind::Set => NodeData::Set(Vec::new()),
        ElementKind::Choice => NodeData::Choice(None),
        ElementKind::Atomic(_) => NodeData::Atomic(AtomicValue::Str(String::new())),
    }
}

/// Attaches a skeleton child at its schema position: chain children keep
/// the target schema's element order regardless of which mapping — or
/// which incremental batch — created them first, so the layout is a pure
/// function of the populated paths.
fn attach_child(
    inst: &mut Instance,
    schema: &Schema,
    elem: ElementId,
    parent: NodeId,
    child: NodeId,
) {
    let order: Vec<&Label> = match schema.parent(elem) {
        Some(p) => schema
            .element(p)
            .children
            .iter()
            .map(|&c| &schema.element(c).label)
            .collect(),
        None => Vec::new(),
    };
    let rank = |label: &Label| order.iter().position(|&l| l == label).unwrap_or(usize::MAX);
    let r = rank(inst.label(child));
    let mut kids: Vec<NodeId> = inst.children(parent).to_vec();
    let at = kids
        .iter()
        .position(|&k| rank(inst.label(k)) > r)
        .unwrap_or(kids.len());
    kids.insert(at, child);
    inst.replace_children(parent, kids);
}

/// One mapping's evaluated foreach rows plus the wall time spent
/// evaluating them, as handed from the (possibly worker-side) eval stage
/// to the single-writer insert stage.
type EvaluatedRows = Result<(Vec<Vec<AtomicValue>>, u64), ExchangeError>;

/// Evaluates one mapping's foreach query over the sources. Free-standing so
/// parallel workers can run it without borrowing the (mutable) engine.
pub(crate) fn eval_foreach(
    sources: &[Source<'_>],
    functions: &FunctionRegistry,
    m: &Mapping,
    opts: EvalOptions,
) -> Result<Vec<Vec<AtomicValue>>, ExchangeError> {
    let catalog = Catalog::new(sources.to_vec());
    Ok(Evaluator::new(&catalog, functions)
        .with_options(opts)
        .run(&m.foreach)?
        .tuples())
}

/// Executes a set of mappings over the sources and returns the annotated
/// target instance (Section 4.3 + Section 7.2 in one call).
pub fn execute_mappings(
    sources: &[Source<'_>],
    target_schema: &Schema,
    mappings: &[Mapping],
    functions: &FunctionRegistry,
) -> Result<(Instance, ExchangeReport), ExchangeError> {
    execute_mappings_with(
        sources,
        target_schema,
        mappings,
        functions,
        &ExchangeOptions::default(),
    )
}

/// [`execute_mappings`] with explicit exchange options (evaluator engine
/// selection and parallel foreach evaluation).
pub fn execute_mappings_with(
    sources: &[Source<'_>],
    target_schema: &Schema,
    mappings: &[Mapping],
    functions: &FunctionRegistry,
    opts: &ExchangeOptions,
) -> Result<(Instance, ExchangeReport), ExchangeError> {
    let _span = dtr_obs::span("exchange.execute_mappings").field("mappings", mappings.len());
    let mut engine = Exchange::new(sources.to_vec(), target_schema, functions);
    engine.run_mappings(mappings, opts)?;
    engine.finish()
}

/// The worker count a parallel run of `n` mappings would use: the explicit
/// cap, or one per available core when the cap is `0`, never exceeding the
/// mapping count.
fn resolved_workers(opts: &ExchangeOptions, n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let w = if opts.workers == 0 { hw } else { opts.workers };
    w.min(n).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::types::{AtomicType, Type};
    use dtr_model::value::MappingName;

    fn us_schema() -> Schema {
        Schema::build(
            "USdb",
            vec![(
                "US",
                Type::record(vec![
                    (
                        "houses",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("floors", AtomicType::String),
                            ("price", AtomicType::String),
                            ("aid", AtomicType::String),
                        ]),
                    ),
                    (
                        "agents",
                        Type::set(Type::record(vec![
                            ("aid", Type::string()),
                            (
                                "title",
                                Type::choice(vec![
                                    ("name", Type::string()),
                                    ("firm", Type::string()),
                                ]),
                            ),
                            ("phone", Type::string()),
                        ])),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn eu_schema() -> Schema {
        Schema::build(
            "EUdb",
            vec![(
                "EU",
                Type::record(vec![(
                    "postings",
                    Type::set(Type::record(vec![
                        ("hid", Type::string()),
                        ("levels", Type::string()),
                        ("totalVal", Type::string()),
                        (
                            "agents",
                            Type::set(Type::record(vec![
                                ("agentName", Type::string()),
                                ("agentPhone", Type::string()),
                            ])),
                        ),
                    ])),
                )]),
            )],
        )
        .unwrap()
    }

    fn portal_schema() -> Schema {
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn us_instance() -> Instance {
        let mut inst = Instance::new("USdb");
        let house = |hid: &str, floors: &str, price: &str, aid: &str| {
            Value::record(vec![
                ("hid", Value::str(hid)),
                ("floors", Value::str(floors)),
                ("price", Value::str(price)),
                ("aid", Value::str(aid)),
            ])
        };
        let agent = |aid: &str, alt: &str, title: &str, phone: &str| {
            Value::record(vec![
                ("aid", Value::str(aid)),
                ("title", Value::choice(alt, Value::str(title))),
                ("phone", Value::str(phone)),
            ])
        };
        inst.install_root(
            "US",
            Value::record(vec![
                (
                    "houses",
                    Value::set(vec![
                        house("H522", "2", "500K", "a2"),
                        house("H7", "1", "250K", "a1"),
                    ]),
                ),
                (
                    "agents",
                    Value::set(vec![
                        agent("a1", "name", "Smith", "555-1111"),
                        agent("a2", "firm", "HomeGain", "18009468501"),
                    ]),
                ),
            ]),
        );
        inst
    }

    fn eu_instance() -> Instance {
        let mut inst = Instance::new("EUdb");
        inst.install_root(
            "EU",
            Value::record(vec![(
                "postings",
                Value::set(vec![Value::record(vec![
                    ("hid", Value::str("H2525")),
                    ("levels", Value::str("1")),
                    ("totalVal", Value::str("300K")),
                    (
                        "agents",
                        Value::set(vec![Value::record(vec![
                            ("agentName", Value::str("HomeGain")),
                            ("agentPhone", Value::str("18009468501")),
                        ])]),
                    ),
                ])]),
            )]),
        );
        inst
    }

    fn figure1_mappings() -> Vec<Mapping> {
        vec![
            Mapping::parse(
                "m1",
                "foreach
                   select h.hid, h.floors, h.price, n, a.phone
                   from US.houses h, US.agents a, a.title->name n
                   where h.aid = a.aid
                 exists
                   select e.hid, e.stories, e.value, c.title, c.phone
                   from Portal.estates e, Portal.contacts c
                   where e.contact = c.title",
            )
            .unwrap(),
            Mapping::parse(
                "m2",
                "foreach
                   select h.hid, h.floors, h.price, f, a.phone
                   from US.houses h, US.agents a, a.title->firm f
                   where h.aid = a.aid
                 exists
                   select e.hid, e.stories, e.value, c.title, c.phone
                   from Portal.estates e, Portal.contacts c
                   where e.contact = c.title",
            )
            .unwrap(),
            Mapping::parse(
                "m3",
                "foreach
                   select p.hid, p.levels, p.totalVal, a.agentName, a.agentPhone
                   from EU.postings p, p.agents a
                 exists
                   select e.hid, e.stories, e.value, c.title, c.phone
                   from Portal.estates e, Portal.contacts c
                   where e.contact = c.title",
            )
            .unwrap(),
        ]
    }

    fn run_exchange() -> (Schema, Instance, ExchangeReport) {
        let us_s = us_schema();
        let eu_s = eu_schema();
        let p_s = portal_schema();
        let mut us_i = us_instance();
        let mut eu_i = eu_instance();
        us_i.annotate_elements(&us_s).unwrap();
        eu_i.annotate_elements(&eu_s).unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let sources = [
            Source {
                schema: &us_s,
                instance: &us_i,
            },
            Source {
                schema: &eu_s,
                instance: &eu_i,
            },
        ];
        let (inst, report) = execute_mappings(&sources, &p_s, &figure1_mappings(), &funcs).unwrap();
        (p_s, inst, report)
    }

    #[test]
    fn exchange_reproduces_figure_3() {
        let (schema, inst, report) = run_exchange();
        // m1 retrieves the Smith house, m2 the HomeGain house, m3 the EU
        // posting.
        assert_eq!(report.tuples.len(), 3);
        for (_, n) in &report.tuples {
            assert_eq!(*n, 1);
        }
        let estates = schema.resolve_path("/Portal/estates").unwrap();
        let member_elem = schema.set_member(estates).unwrap();
        assert_eq!(inst.interpretation(member_elem).len(), 3);
        // The HomeGain contact is shared by m2 and m3 (Figure 3's union).
        let title_elem = schema.resolve_path("/Portal/contacts/title").unwrap();
        let titles = inst.interpretation(title_elem);
        let homegain = titles
            .iter()
            .copied()
            .find(|&n| inst.atomic(n).unwrap().as_str() == Some("HomeGain"))
            .unwrap();
        let anns: Vec<&str> = inst
            .annotation(homegain)
            .mappings
            .iter()
            .map(|m| m.as_str())
            .collect();
        assert_eq!(anns, ["m2", "m3"]);
        // The contacts set itself merged the two identical records.
        let contacts = schema.resolve_path("/Portal/contacts").unwrap();
        let contacts_node = inst.interpretation(contacts)[0];
        assert_eq!(inst.set_members(contacts_node).unwrap().len(), 2);
    }

    #[test]
    fn skeleton_annotated_with_all_mappings() {
        let (_, inst, _) = run_exchange();
        let portal = inst.root("Portal").unwrap();
        let anns: Vec<&str> = inst
            .annotation(portal)
            .mappings
            .iter()
            .map(|m| m.as_str())
            .collect();
        assert_eq!(anns, ["m1", "m2", "m3"]);
    }

    #[test]
    fn join_condition_respected() {
        let (schema, inst, _) = run_exchange();
        // Every estate's contact equals some contact's title.
        let estates_set = inst.interpretation(schema.resolve_path("/Portal/estates").unwrap())[0];
        let contacts_set = inst.interpretation(schema.resolve_path("/Portal/contacts").unwrap())[0];
        let titles: Vec<String> = inst
            .set_members(contacts_set)
            .unwrap()
            .iter()
            .map(|&c| {
                inst.atomic(inst.child_by_label(c, "title").unwrap())
                    .unwrap()
                    .to_string()
            })
            .collect();
        for &e in inst.set_members(estates_set).unwrap() {
            let contact = inst
                .atomic(inst.child_by_label(e, "contact").unwrap())
                .unwrap()
                .to_string();
            assert!(titles.contains(&contact));
        }
    }

    #[test]
    fn mapping_satisfaction_after_exchange() {
        // ∀t ∈ Qs(Is) ⇒ t ∈ Qt(It) — check via the satisfy module.
        let us_s = us_schema();
        let eu_s = eu_schema();
        let (p_s, inst, _) = run_exchange();
        let mut us_i = us_instance();
        let mut eu_i = eu_instance();
        us_i.annotate_elements(&us_s).unwrap();
        eu_i.annotate_elements(&eu_s).unwrap();
        let funcs = FunctionRegistry::with_builtins();
        for m in figure1_mappings() {
            let sat = crate::satisfy::is_satisfied(
                &m,
                &[
                    Source {
                        schema: &us_s,
                        instance: &us_i,
                    },
                    Source {
                        schema: &eu_s,
                        instance: &eu_i,
                    },
                ],
                Source {
                    schema: &p_s,
                    instance: &inst,
                },
                &funcs,
            )
            .unwrap();
            assert!(sat, "mapping {} not satisfied", m.name);
        }
    }

    #[test]
    fn duplicate_tuples_merge_idempotently() {
        // Running the same mapping twice must not duplicate members.
        let us_s = us_schema();
        let p_s = portal_schema();
        let mut us_i = us_instance();
        us_i.annotate_elements(&us_s).unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let m = &figure1_mappings()[1];
        let mut engine = Exchange::new(
            vec![Source {
                schema: &us_s,
                instance: &us_i,
            }],
            &p_s,
            &funcs,
        );
        engine.run_mapping(m).unwrap();
        engine.run_mapping(m).unwrap();
        let (inst, _) = engine.finish().unwrap();
        let estates = inst.interpretation(p_s.resolve_path("/Portal/estates").unwrap())[0];
        assert_eq!(inst.set_members(estates).unwrap().len(), 1);
    }

    #[test]
    fn nested_target_sets_supported() {
        // Copy EU postings (with nested agents) into an EU-shaped target.
        let eu_s = eu_schema();
        let tgt_s = Schema::build(
            "Copy",
            vec![(
                "Out",
                Type::record(vec![(
                    "posts",
                    Type::set(Type::record(vec![
                        ("hid", Type::string()),
                        (
                            "people",
                            Type::set(Type::record(vec![("who", Type::string())])),
                        ),
                    ])),
                )]),
            )],
        )
        .unwrap();
        let mut eu_i = eu_instance();
        eu_i.annotate_elements(&eu_s).unwrap();
        let m = Mapping::parse(
            "mc",
            "foreach select p.hid, a.agentName from EU.postings p, p.agents a
             exists select q.hid, w.who from Out.posts q, q.people w",
        )
        .unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let (inst, _) = execute_mappings(
            &[Source {
                schema: &eu_s,
                instance: &eu_i,
            }],
            &tgt_s,
            &[m],
            &funcs,
        )
        .unwrap();
        let posts = inst.interpretation(tgt_s.resolve_path("/Out/posts").unwrap())[0];
        let members = inst.set_members(posts).unwrap();
        assert_eq!(members.len(), 1);
        let people = inst.child_by_label(members[0], "people").unwrap();
        assert_eq!(inst.set_members(people).unwrap().len(), 1);
        let who = inst
            .child_by_label(inst.set_members(people).unwrap()[0], "who")
            .unwrap();
        assert_eq!(inst.atomic(who).unwrap().as_str(), Some("HomeGain"));
    }

    #[test]
    fn unsupported_exists_conditions_rejected() {
        let us_s = us_schema();
        let p_s = portal_schema();
        let us_i = us_instance();
        let funcs = FunctionRegistry::with_builtins();
        let m = Mapping::parse(
            "bad",
            "foreach select h.hid from US.houses h
             exists select e.hid from Portal.estates e where e.hid > e.contact",
        )
        .unwrap();
        let err = execute_mappings(
            &[Source {
                schema: &us_s,
                instance: &us_i,
            }],
            &p_s,
            &[m],
            &funcs,
        )
        .unwrap_err();
        assert!(matches!(err, ExchangeError::Unsupported(_)));
    }

    #[test]
    fn choice_targets_supported() {
        // A mapping populating a union-typed target element through a
        // choice step in its exists select clause.
        let src = Schema::build(
            "S",
            vec![(
                "R",
                Type::relation(vec![
                    ("name", AtomicType::String),
                    ("firm", AtomicType::String),
                ]),
            )],
        )
        .unwrap();
        let tgt = Schema::build(
            "T",
            vec![(
                "Q",
                Type::set(Type::record(vec![
                    ("who", Type::string()),
                    (
                        "title",
                        Type::choice(vec![("firm", Type::string()), ("person", Type::string())]),
                    ),
                ])),
            )],
        )
        .unwrap();
        let mut inst = Instance::new("S");
        inst.install_root(
            "R",
            Value::set(vec![Value::record(vec![
                ("name", Value::str("Ann")),
                ("firm", Value::str("Acme")),
            ])]),
        );
        inst.annotate_elements(&src).unwrap();
        let m = Mapping::parse(
            "mc",
            "foreach select r.name, r.firm from R r
             exists select q.who, q.title->firm from Q q",
        )
        .unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let (out, _) = execute_mappings(
            &[Source {
                schema: &src,
                instance: &inst,
            }],
            &tgt,
            &[m],
            &funcs,
        )
        .unwrap();
        let member = out.set_members(out.root("Q").unwrap()).unwrap()[0];
        let title = out.child_by_label(member, "title").unwrap();
        let (alt, leaf) = out.choice_selection(title).unwrap();
        assert_eq!(alt, "firm");
        assert_eq!(out.atomic(leaf).unwrap().as_str(), Some("Acme"));
    }

    #[test]
    fn conflicting_assignment_detected() {
        // Two select positions feed the same target slot with different
        // values.
        let src = Schema::build(
            "S",
            vec![(
                "R",
                Type::relation(vec![("a", AtomicType::String), ("b", AtomicType::String)]),
            )],
        )
        .unwrap();
        let tgt = Schema::build(
            "T",
            vec![("Q", Type::relation(vec![("x", AtomicType::String)]))],
        )
        .unwrap();
        let mut inst = Instance::new("S");
        inst.install_root(
            "R",
            Value::set(vec![Value::record(vec![
                ("a", Value::str("1")),
                ("b", Value::str("2")),
            ])]),
        );
        inst.annotate_elements(&src).unwrap();
        let m = Mapping::parse(
            "bad",
            "foreach select r.a, r.b from R r
             exists select q.x, q.x from Q q",
        )
        .unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let err = execute_mappings(
            &[Source {
                schema: &src,
                instance: &inst,
            }],
            &tgt,
            &[m],
            &funcs,
        )
        .unwrap_err();
        assert!(matches!(err, ExchangeError::Conflict(_)), "{err}");
    }

    #[test]
    fn empty_sources_yield_queryable_empty_target() {
        // Regression: roots are pre-created so the target stays queryable.
        let src = us_schema();
        let tgt = portal_schema();
        let mut inst = Instance::new("USdb");
        inst.install_root(
            "US",
            Value::record(vec![
                ("houses", Value::set(vec![])),
                ("agents", Value::set(vec![])),
            ]),
        );
        inst.annotate_elements(&src).unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let (out, report) = execute_mappings(
            &[Source {
                schema: &src,
                instance: &inst,
            }],
            &tgt,
            &[figure1_mappings()[0].clone()],
            &funcs,
        )
        .unwrap();
        assert_eq!(report.tuples[0].1, 0);
        assert!(out.root("Portal").is_some());
    }

    #[test]
    fn report_counts_tuples() {
        let (_, _, report) = run_exchange();
        let names: Vec<&str> = report.tuples.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(names, ["m1", "m2", "m3"]);
    }

    #[test]
    fn mapping_annotations_only_on_contributing_values() {
        let (schema, inst, _) = run_exchange();
        // The Smith contact was created only by m1.
        let title_elem = schema.resolve_path("/Portal/contacts/title").unwrap();
        let smith = inst
            .interpretation(title_elem)
            .into_iter()
            .find(|&n| inst.atomic(n).unwrap().as_str() == Some("Smith"))
            .unwrap();
        let anns: Vec<&str> = inst
            .annotation(smith)
            .mappings
            .iter()
            .map(|m| m.as_str())
            .collect();
        assert_eq!(anns, ["m1"]);
        assert_eq!(
            inst.annotation(smith).element,
            Some(title_elem),
            "element annotation must point at /Portal/contacts/title"
        );
        let _ = MappingName::new("x");
    }

    #[test]
    fn fingerprint_collision_splits_instead_of_merging() {
        // A fingerprint hit must be confirmed structurally: plant a decoy
        // value in the merge index under the exact fingerprint m2's
        // HomeGain contact will hash to, and check the engine refuses the
        // merge (the old fingerprint-only index would have folded HomeGain
        // into the decoy's node).
        let us_s = us_schema();
        let p_s = portal_schema();
        let mut us_i = us_instance();
        us_i.annotate_elements(&us_s).unwrap();
        let funcs = FunctionRegistry::with_builtins();
        let mappings = figure1_mappings();
        let mut engine = Exchange::new(
            vec![Source {
                schema: &us_s,
                instance: &us_i,
            }],
            &p_s,
            &funcs,
        );
        engine.run_mapping(&mappings[0]).unwrap(); // m1: Smith house + contact
        let portal = engine.target.root("Portal").unwrap();
        let contacts_set = engine.target.child_by_label(portal, "contacts").unwrap();
        let smith = engine.target.set_members(contacts_set).unwrap()[0];
        let homegain = Value::record(vec![
            ("title", Value::str("HomeGain")),
            ("phone", Value::str("18009468501")),
        ]);
        let mut h = DefaultHasher::new();
        value_fingerprint(&homegain, &mut h);
        let fp = h.finish();
        let decoy = Value::record(vec![
            ("title", Value::str("Decoy")),
            ("phone", Value::str("000")),
        ]);
        engine
            .merge_index
            .entry((contacts_set, fp))
            .or_default()
            .push((decoy, smith));
        engine.run_mapping(&mappings[1]).unwrap(); // m2: HomeGain
        let bucket = &engine.merge_index[&(contacts_set, fp)];
        assert_eq!(bucket.len(), 2, "collision must split the bucket");
        // Re-running m2 must still merge: equality confirmation finds the
        // HomeGain entry even inside the collided bucket.
        engine.run_mapping(&mappings[1]).unwrap();
        let rerun = engine.report.per_mapping.last().unwrap();
        assert_eq!(rerun.rows_inserted, 0);
        assert!(rerun.rows_merged > 0);
        let (inst, _) = engine.finish().unwrap();
        let contacts = inst.interpretation(p_s.resolve_path("/Portal/contacts").unwrap())[0];
        let titles: Vec<String> = inst
            .set_members(contacts)
            .unwrap()
            .iter()
            .map(|&c| {
                inst.atomic(inst.child_by_label(c, "title").unwrap())
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(titles, ["Smith", "HomeGain"]);
    }

    fn full_sources() -> (Schema, Schema, Instance, Instance) {
        let us_s = us_schema();
        let eu_s = eu_schema();
        let mut us_i = us_instance();
        let mut eu_i = eu_instance();
        us_i.annotate_elements(&us_s).unwrap();
        eu_i.annotate_elements(&eu_s).unwrap();
        (us_s, eu_s, us_i, eu_i)
    }

    #[test]
    fn parallel_exchange_matches_serial() {
        use dtr_model::display::{render_instance, RenderOptions};
        let (us_s, eu_s, us_i, eu_i) = full_sources();
        let p_s = portal_schema();
        let funcs = FunctionRegistry::with_builtins();
        let sources = [
            Source {
                schema: &us_s,
                instance: &us_i,
            },
            Source {
                schema: &eu_s,
                instance: &eu_i,
            },
        ];
        let (serial, rep_s) =
            execute_mappings(&sources, &p_s, &figure1_mappings(), &funcs).unwrap();
        let opts = ExchangeOptions {
            parallel: true,
            // Explicit cap so the threaded path runs even on one core.
            workers: 2,
            ..ExchangeOptions::default()
        };
        let (par, rep_p) =
            execute_mappings_with(&sources, &p_s, &figure1_mappings(), &funcs, &opts).unwrap();
        let render = |inst: &Instance| {
            render_instance(
                inst,
                Some(&p_s),
                RenderOptions {
                    show_elements: true,
                    show_mappings: true,
                },
            )
        };
        assert_eq!(render(&serial), render(&par));
        assert_eq!(rep_s.tuples, rep_p.tuples);
        assert_eq!(rep_s.per_mapping.len(), rep_p.per_mapping.len());
        for (a, b) in rep_s.per_mapping.iter().zip(&rep_p.per_mapping) {
            assert_eq!(a.mapping, b.mapping);
            assert_eq!(a.tuples, b.tuples);
            assert_eq!(a.bindings, b.bindings);
            assert_eq!(a.rows_inserted, b.rows_inserted);
            assert_eq!(a.rows_merged, b.rows_merged);
            assert_eq!(a.annotations_written, b.annotations_written);
            assert_eq!(a.annotations_suppressed, b.annotations_suppressed);
        }
    }

    /// The compiled member templates must reproduce the per-row reference
    /// construction byte for byte — same instance, same decisions.
    #[test]
    fn member_templates_match_reference_construction() {
        use dtr_model::display::{render_instance, RenderOptions};
        let (us_s, eu_s, us_i, eu_i) = full_sources();
        let p_s = portal_schema();
        let funcs = FunctionRegistry::with_builtins();
        let sources = [
            Source {
                schema: &us_s,
                instance: &us_i,
            },
            Source {
                schema: &eu_s,
                instance: &eu_i,
            },
        ];
        let (templated, rep_t) =
            execute_mappings(&sources, &p_s, &figure1_mappings(), &funcs).unwrap();
        let opts = ExchangeOptions {
            member_templates: false,
            ..ExchangeOptions::default()
        };
        let (reference, rep_r) =
            execute_mappings_with(&sources, &p_s, &figure1_mappings(), &funcs, &opts).unwrap();
        let render = |inst: &Instance| {
            render_instance(
                inst,
                Some(&p_s),
                RenderOptions {
                    show_elements: true,
                    show_mappings: true,
                },
            )
        };
        assert_eq!(render(&templated), render(&reference));
        assert_eq!(rep_t.tuples, rep_r.tuples);
        for (a, b) in rep_t.per_mapping.iter().zip(&rep_r.per_mapping) {
            assert_eq!(a.rows_inserted, b.rows_inserted);
            assert_eq!(a.rows_merged, b.rows_merged);
            assert_eq!(a.annotations_written, b.annotations_written);
            assert_eq!(a.annotations_suppressed, b.annotations_suppressed);
        }
    }

    #[test]
    fn parallel_exchange_reports_first_error_in_mapping_order() {
        let (us_s, _, us_i, _) = full_sources();
        let p_s = portal_schema();
        let funcs = FunctionRegistry::with_builtins();
        let sources = [Source {
            schema: &us_s,
            instance: &us_i,
        }];
        let bad = Mapping::parse(
            "bad",
            "foreach select h.hid from US.houses h
             exists select e.hid from Portal.estates e where e.hid > e.contact",
        )
        .unwrap();
        let mappings = vec![
            figure1_mappings()[0].clone(),
            bad,
            figure1_mappings()[1].clone(),
        ];
        let serial = execute_mappings(&sources, &p_s, &mappings, &funcs).unwrap_err();
        let opts = ExchangeOptions {
            parallel: true,
            // Explicit cap so the threaded path runs even on one core.
            workers: 2,
            ..ExchangeOptions::default()
        };
        let par = execute_mappings_with(&sources, &p_s, &mappings, &funcs, &opts).unwrap_err();
        assert_eq!(serial, par);
    }

    // ---- Guard semantics (PR 5): abort, rollback, serial ≡ parallel. ----

    /// Values plus per-node mapping annotations — node ids included, so two
    /// equal snapshots mean the arenas are structurally identical.
    fn snapshot(inst: &Instance) -> String {
        let mut out = String::new();
        for &r in inst.roots() {
            out.push_str(&format!("{:?}\n", inst.to_value(r)));
        }
        for i in 0..inst.len() {
            let ann = inst.annotation(NodeId(i as u32));
            let maps: Vec<&str> = ann.mappings.iter().map(|m| m.as_str()).collect();
            out.push_str(&format!("{i}: {maps:?}\n"));
        }
        out
    }

    fn guard_of(e: &ExchangeError) -> (&dtr_obs::guard::GuardError, usize) {
        match e {
            ExchangeError::Guard {
                error,
                mappings_completed,
            } => (error, *mappings_completed),
            other => panic!("expected a guard error, got: {other}"),
        }
    }

    #[test]
    fn zero_deadline_aborts_before_any_insert() {
        use dtr_obs::guard::{Budget, Resource};
        let (us_s, _, us_i, _) = full_sources();
        let p_s = portal_schema();
        let funcs = FunctionRegistry::with_builtins();
        let sources = vec![Source {
            schema: &us_s,
            instance: &us_i,
        }];
        let budget = Budget {
            deadline: Some(std::time::Duration::ZERO),
            ..Budget::default()
        };
        let mut engine = Exchange::new(sources.clone(), &p_s, &funcs);
        engine.set_budget(&budget);
        let eval = EvalOptions {
            budget: budget.clone(),
            ..Default::default()
        };
        let err = engine
            .run_mapping_with(&figure1_mappings()[0], eval)
            .unwrap_err();
        let (g, completed) = guard_of(&err);
        assert_eq!(g.resource, Resource::Deadline);
        assert_eq!(completed, 0);
        let (inst, report) = engine.finish().unwrap();
        assert!(report.tuples.is_empty());
        assert!(report.per_mapping.is_empty());
        let (empty, _) = Exchange::new(sources, &p_s, &funcs).finish().unwrap();
        assert_eq!(snapshot(&inst), snapshot(&empty));
    }

    #[test]
    fn preset_cancel_aborts_before_any_insert() {
        use dtr_obs::guard::{Budget, Resource};
        let (us_s, _, us_i, _) = full_sources();
        let p_s = portal_schema();
        let funcs = FunctionRegistry::with_builtins();
        let sources = vec![Source {
            schema: &us_s,
            instance: &us_i,
        }];
        let budget = Budget::default();
        budget.request_cancel();
        let mut engine = Exchange::new(sources.clone(), &p_s, &funcs);
        engine.set_budget(&budget);
        let eval = EvalOptions {
            budget: budget.clone(),
            ..Default::default()
        };
        let err = engine
            .run_mapping_with(&figure1_mappings()[0], eval)
            .unwrap_err();
        let (g, _) = guard_of(&err);
        assert_eq!(g.resource, Resource::Cancelled);
        let (inst, report) = engine.finish().unwrap();
        assert!(report.tuples.is_empty());
        let (empty, _) = Exchange::new(sources, &p_s, &funcs).finish().unwrap();
        assert_eq!(snapshot(&inst), snapshot(&empty));
    }

    #[test]
    fn row_budget_rolls_back_a_half_inserted_mapping() {
        use dtr_obs::guard::{Budget, Resource};
        // Two firm-titled houses make m2's foreach yield two rows: the
        // first is inserted, the second trips `max_rows = 1`, and the
        // insert must be rolled back — no half-written mapping survives.
        let us_s = us_schema();
        let mut us_i = Instance::new("USdb");
        let house = |hid: &str, aid: &str| {
            Value::record(vec![
                ("hid", Value::str(hid)),
                ("floors", Value::str("2")),
                ("price", Value::str("500K")),
                ("aid", Value::str(aid)),
            ])
        };
        us_i.install_root(
            "US",
            Value::record(vec![
                (
                    "houses",
                    Value::set(vec![house("H1", "a2"), house("H2", "a2")]),
                ),
                (
                    "agents",
                    Value::set(vec![Value::record(vec![
                        ("aid", Value::str("a2")),
                        ("title", Value::choice("firm", Value::str("HomeGain"))),
                        ("phone", Value::str("18009468501")),
                    ])]),
                ),
            ]),
        );
        us_i.annotate_elements(&us_s).unwrap();
        let p_s = portal_schema();
        let funcs = FunctionRegistry::with_builtins();
        let sources = vec![Source {
            schema: &us_s,
            instance: &us_i,
        }];
        let budget = Budget {
            max_rows: Some(1),
            ..Budget::default()
        };
        let m2 = figure1_mappings()[1].clone();
        let mut engine = Exchange::new(sources.clone(), &p_s, &funcs);
        engine.set_budget(&budget);
        let err = engine.run_mapping(&m2).unwrap_err();
        let (g, completed) = guard_of(&err);
        assert_eq!(g.resource, Resource::Rows);
        assert_eq!(g.limit, 1);
        assert_eq!(g.progress.rows, 2);
        assert_eq!(completed, 0);
        let (inst, report) = engine.finish().unwrap();
        assert!(report.tuples.is_empty());
        assert!(report.per_mapping.is_empty());
        let (empty, _) = Exchange::new(sources, &p_s, &funcs).finish().unwrap();
        assert_eq!(snapshot(&inst), snapshot(&empty));
        assert!(!snapshot(&inst).contains("m2"));
    }

    #[test]
    fn completed_mappings_survive_a_later_guard_abort() {
        use dtr_obs::guard::{Budget, Resource};
        // m1 (one row) fits the budget; m2's single row pushes the
        // cumulative count to 2 > 1 and aborts. The m1 prefix must be
        // exactly what an m1-only exchange produces.
        let (us_s, _, us_i, _) = full_sources();
        let p_s = portal_schema();
        let funcs = FunctionRegistry::with_builtins();
        let sources = vec![Source {
            schema: &us_s,
            instance: &us_i,
        }];
        let budget = Budget {
            max_rows: Some(1),
            ..Budget::default()
        };
        let ms = figure1_mappings();
        let mut engine = Exchange::new(sources.clone(), &p_s, &funcs);
        engine.set_budget(&budget);
        engine.run_mapping(&ms[0]).unwrap();
        let err = engine.run_mapping(&ms[1]).unwrap_err();
        let (g, completed) = guard_of(&err);
        assert_eq!(g.resource, Resource::Rows);
        assert_eq!(completed, 1);
        let (inst, report) = engine.finish().unwrap();
        assert_eq!(report.tuples, vec![("m1".into(), 1)]);
        let mut only_m1 = Exchange::new(sources, &p_s, &funcs);
        only_m1.run_mapping(&ms[0]).unwrap();
        let (expected, _) = only_m1.finish().unwrap();
        assert_eq!(snapshot(&inst), snapshot(&expected));
    }

    #[test]
    fn parallel_and_serial_return_the_same_guard_error() {
        use dtr_obs::guard::Budget;
        let (us_s, eu_s, us_i, eu_i) = full_sources();
        let p_s = portal_schema();
        let funcs = FunctionRegistry::with_builtins();
        let sources = [
            Source {
                schema: &us_s,
                instance: &us_i,
            },
            Source {
                schema: &eu_s,
                instance: &eu_i,
            },
        ];
        let budget = Budget {
            max_rows: Some(2),
            ..Budget::default()
        };
        let serial = execute_mappings_with(
            &sources,
            &p_s,
            &figure1_mappings(),
            &funcs,
            &ExchangeOptions {
                budget: budget.clone(),
                ..ExchangeOptions::default()
            },
        )
        .unwrap_err();
        let par = execute_mappings_with(
            &sources,
            &p_s,
            &figure1_mappings(),
            &funcs,
            &ExchangeOptions {
                budget,
                parallel: true,
                workers: 2,
                ..ExchangeOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(serial, par);
        let (g, completed) = guard_of(&serial);
        assert_eq!(g.progress.rows, 3);
        assert_eq!(completed, 2);
    }

    #[test]
    fn report_latency_percentiles_and_analyze_plan() {
        let (_, _, report) = run_exchange();
        let (p50, p90, p99) = report.latency_percentiles().unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        let plan = report.analyze_plan();
        assert_eq!(plan.op, "exchange");
        assert_eq!(plan.children.len(), 3);
        for (merge, stats) in plan.children.iter().zip(&report.per_mapping) {
            assert_eq!(merge.op, "pnf-merge");
            assert_eq!(merge.rows_in, stats.bindings as u64);
            assert_eq!(merge.rows_out, stats.rows_inserted as u64);
            let nest = &merge.children[0];
            assert_eq!(nest.op, "nest");
            assert_eq!(nest.rows_in, stats.tuples as u64);
            assert_eq!(nest.rows_out, stats.bindings as u64);
            let foreach = &nest.children[0];
            assert_eq!(foreach.op, "foreach");
            assert_eq!(foreach.rows_out, stats.tuples as u64);
        }
        assert_eq!(ExchangeReport::default().latency_percentiles(), None);
    }

    #[test]
    fn empty_report_percentiles_return_none_not_panic() {
        // Regression: a zero-mapping report (nothing ran, or an exchange
        // aborted before its first mapping) must yield `None`, never index
        // into an empty wall-time vector.
        let report = ExchangeReport::default();
        assert_eq!(report.latency_percentiles(), None);
        assert_eq!(report.event_window(), None);
        let totals = report.totals();
        assert_eq!((totals.tuples, totals.bindings, totals.wall_ns), (0, 0, 0));
    }

    #[test]
    fn exchange_collects_instance_statistics_when_enabled() {
        // The stats gate and catalog are process-global and other tests in
        // this binary run exchanges concurrently, so every assertion is a
        // lower bound on what this run must have contributed.
        dtr_obs::stats::set_enabled(true);
        let (_, _, report) = run_exchange();
        dtr_obs::stats::set_enabled(false);
        assert_eq!(report.per_mapping.len(), 3);
        let snap = dtr_obs::stats::snapshot();
        // Source sets and the produced target sets both appear, keyed by
        // root-rooted dot paths.
        for path in ["US.houses", "US.agents", "EU.postings", "Portal.estates"] {
            let stats = snap
                .paths
                .get(path)
                .unwrap_or_else(|| panic!("no stats for {path}"));
            assert!(stats.sets >= 1, "{path} set observations");
        }
        // Atomic leaves under set members key on `<set path>.<field>`, and
        // the two distinct house prices survive the distinct estimator.
        let price = snap.paths.get("US.houses.price").unwrap();
        assert!(price.tuples >= 2);
        assert!(price.distinct_estimate() >= 2);
        // Choice alternatives use the `->` convention shared with the
        // query-side canonicalized keys.
        assert!(snap.paths.contains_key("US.agents.title->name"));
    }
}
