//! The durable substrate for incremental exchange: an injectable storage
//! layer ([`Vfs`]) and a write-ahead delta log ([`Wal`]) of CRC32-framed
//! records, so a crashed process can recover its exchange state from the
//! last checkpoint plus the suffix of committed [`crate::delta::SourceDelta`]
//! batches.
//!
//! ## Frame format
//!
//! Every segment file starts with the 8-byte magic `DTRWAL1\n`, followed by
//! zero or more frames:
//!
//! ```text
//! +------+-------------+-------------+-----------------+
//! | kind | len u32 LE  | crc u32 LE  | payload (len B) |
//! +------+-------------+-------------+-----------------+
//! ```
//!
//! `kind` is 1 (delta batch, JSON via [`crate::delta::SourceDelta::to_json`])
//! or 2 (checkpoint, an opaque payload owned by the caller — `dtr-core`
//! stores annotated-XML instances there). `crc` is the CRC-32 (IEEE) of the
//! kind byte followed by the payload, so a bit flip anywhere in a frame is
//! detected. A scan stops cleanly at the first frame that is truncated or
//! fails its checksum — torn tails are *expected* after a crash and are
//! truncated away, never panicked on.
//!
//! ## Segments and rotation
//!
//! Each segment begins with one checkpoint frame capturing the full state
//! as of rotation; subsequent delta frames are the redo suffix. Recovery
//! picks the highest-numbered segment whose leading checkpoint is intact
//! and replays its deltas; a segment whose checkpoint is torn (a crash
//! mid-rotation) is discarded in favor of its predecessor.
//!
//! Storage faults (torn writes at byte granularity, short reads, bit
//! flips, fsync failures, ENOSPC) are injected deterministically through
//! [`FaultVfs`], mirroring the process-fault `FaultPlan` design of the
//! dtr-check harness.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::{Arc, Mutex};

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"DTRWAL1\n";

/// Per-frame header size: kind (1) + len (4) + crc (4).
pub const FRAME_HEADER: usize = 9;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, no external dependency.
// ---------------------------------------------------------------------------

const fn crc32_build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_build_table();

/// CRC-32 (IEEE) checksum of `bytes`, seeded continuation form: pass
/// `0xFFFF_FFFF ^ previous` semantics via [`crc32`] for one-shot use.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn crc32_two(head: &[u8], tail: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in head.iter().chain(tail) {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Structured WAL failure: every file error carries the path and the
/// operation that failed — I/O problems are data, not panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An I/O operation failed.
    Io {
        /// Path (relative to the [`Vfs`] root) the operation targeted.
        path: String,
        /// Operation name (`read`, `append`, `sync`, `truncate`, ...).
        op: &'static str,
        /// The underlying error message.
        msg: String,
    },
    /// The log contains no usable checkpoint (all segments torn/corrupt).
    Corrupt(String),
    /// A prior failed commit could not be repaired; the log refuses
    /// further appends (readers are unaffected — reopen to recover).
    Poisoned(String),
}

impl WalError {
    fn io(path: &str, op: &'static str, e: &io::Error) -> WalError {
        WalError::Io {
            path: path.to_string(),
            op,
            msg: e.to_string(),
        }
    }

    /// `true` for transient I/O failures worth retrying (fsync hiccups),
    /// `false` for corruption/poisoning.
    pub fn is_transient(&self) -> bool {
        matches!(self, WalError::Io { .. })
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, op, msg } => write!(f, "wal io error: {op} {path}: {msg}"),
            WalError::Corrupt(m) => write!(f, "wal corrupt: {m}"),
            WalError::Poisoned(m) => write!(f, "wal poisoned: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

// ---------------------------------------------------------------------------
// Vfs: the injectable storage layer
// ---------------------------------------------------------------------------

/// A minimal append-oriented filesystem abstraction. Paths are
/// `/`-separated and relative to the backend's root. All methods are
/// whole-file or append-only — exactly the operations a WAL needs, which
/// keeps fault injection tractable.
pub trait Vfs: Send + Sync {
    /// Reads the whole file.
    fn read(&self, path: &str) -> io::Result<Vec<u8>>;
    /// Appends `data`, creating the file if missing.
    fn append(&self, path: &str, data: &[u8]) -> io::Result<()>;
    /// Durably flushes the file (the explicit fsync point).
    fn sync(&self, path: &str) -> io::Result<()>;
    /// Truncates the file to `len` bytes.
    fn truncate(&self, path: &str, len: u64) -> io::Result<()>;
    /// Removes the file.
    fn remove(&self, path: &str) -> io::Result<()>;
    /// File names (not paths) directly inside `dir`, sorted.
    fn list(&self, dir: &str) -> io::Result<Vec<String>>;
    /// Creates `dir` and its parents.
    fn create_dir_all(&self, dir: &str) -> io::Result<()>;
    /// Current length of the file, 0 if missing.
    fn len(&self, path: &str) -> io::Result<u64>;
}

/// The real-file backend: paths resolve under `root` via `std::fs`.
pub struct StdVfs {
    root: std::path::PathBuf,
}

impl StdVfs {
    /// A backend rooted at `root` (created lazily by `create_dir_all`).
    pub fn new(root: impl Into<std::path::PathBuf>) -> Self {
        StdVfs { root: root.into() }
    }

    fn resolve(&self, path: &str) -> std::path::PathBuf {
        self.root.join(path)
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.resolve(path))
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.resolve(path))?;
        f.write_all(data)
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        // Reopening for sync is fine on the platforms we target: fsync
        // flushes the file, not the descriptor's write history.
        std::fs::OpenOptions::new()
            .read(true)
            .open(self.resolve(path))?
            .sync_all()
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.resolve(path))?;
        f.set_len(len)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        std::fs::remove_file(self.resolve(path))
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(self.resolve(dir))? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &str) -> io::Result<()> {
        std::fs::create_dir_all(self.resolve(dir))
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        match std::fs::metadata(self.resolve(path)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }
}

/// An in-memory backend for hermetic tests and the dtr-check storage-fault
/// soak: byte-exact WAL semantics with no disk in the loop.
#[derive(Default)]
pub struct MemVfs {
    files: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemVfs {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// A deep copy of the current file map — the "disk image" a crash
    /// simulation reopens from.
    pub fn clone_files(&self) -> MemVfs {
        MemVfs {
            files: Mutex::new(self.files.lock().unwrap_or_else(|p| p.into_inner()).clone()),
        }
    }
}

fn not_found(path: &str) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {path}"))
}

impl Vfs for MemVfs {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(path.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, _path: &str) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(|p| p.into_inner());
        let f = files.get_mut(path).ok_or_else(|| not_found(path))?;
        f.truncate(len as usize);
        Ok(())
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.files
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        let prefix = if dir.is_empty() || dir == "." {
            String::new()
        } else {
            format!("{dir}/")
        };
        let files = self.files.lock().unwrap_or_else(|p| p.into_inner());
        Ok(files
            .keys()
            .filter_map(|k| k.strip_prefix(&prefix))
            .filter(|rest| !rest.contains('/'))
            .map(str::to_string)
            .collect())
    }

    fn create_dir_all(&self, _dir: &str) -> io::Result<()> {
        Ok(())
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        Ok(self
            .files
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(path)
            .map_or(0, |f| f.len() as u64))
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One storage fault, targeting a specific operation class. `at` counts
/// occurrences of that class (0-based) on the wrapping [`FaultVfs`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageFault {
    /// The `at`-th append writes only the first `keep` bytes (byte
    /// granularity) then fails — a torn write.
    TornWrite {
        /// Append index the fault fires on.
        at: u64,
        /// Bytes of the frame that do land on disk.
        keep: usize,
    },
    /// The `at`-th read returns the file minus its last `drop` bytes.
    ShortRead {
        /// Read index the fault fires on.
        at: u64,
        /// Bytes chopped off the end of the returned data.
        drop: usize,
    },
    /// The `at`-th read has one bit flipped (bit index modulo file size).
    BitFlip {
        /// Read index the fault fires on.
        at: u64,
        /// Bit position to flip, taken modulo the file's bit length.
        bit: u64,
    },
    /// `count` consecutive fsyncs fail starting at the `at`-th —
    /// transient when `count` is small, a dead disk when saturating.
    FsyncFail {
        /// Sync index the first failure fires on.
        at: u64,
        /// Number of consecutive failures.
        count: u64,
    },
    /// The `at`-th append fails with ENOSPC, writing nothing.
    NoSpace {
        /// Append index the fault fires on.
        at: u64,
    },
}

impl StorageFault {
    /// Stable site name (mirrors `FaultSite::name` in dtr-check).
    pub fn name(&self) -> &'static str {
        match self {
            StorageFault::TornWrite { .. } => "torn_write",
            StorageFault::ShortRead { .. } => "short_read",
            StorageFault::BitFlip { .. } => "bit_flip",
            StorageFault::FsyncFail { .. } => "fsync_fail",
            StorageFault::NoSpace { .. } => "enospc",
        }
    }
}

#[derive(Default)]
struct FaultState {
    appends: u64,
    reads: u64,
    syncs: u64,
    plan: Vec<StorageFault>,
    fired: Vec<String>,
}

/// A [`Vfs`] decorator that injects scheduled [`StorageFault`]s
/// deterministically, by per-operation-class counters. Everything not
/// scheduled passes through to the inner backend.
pub struct FaultVfs<V: Vfs> {
    inner: V,
    state: Mutex<FaultState>,
}

impl<V: Vfs> FaultVfs<V> {
    /// Wraps `inner` with an empty fault schedule.
    pub fn new(inner: V) -> Self {
        FaultVfs {
            inner,
            state: Mutex::new(FaultState::default()),
        }
    }

    /// Schedules a fault.
    pub fn schedule(&self, fault: StorageFault) {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .plan
            .push(fault);
    }

    /// Names of the faults that have fired, in firing order.
    pub fn fired(&self) -> Vec<String> {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .fired
            .clone()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &V {
        &self.inner
    }

    fn take_append_fault(&self, path: &str) -> Option<(StorageFault, io::Error)> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let n = st.appends;
        st.appends += 1;
        let idx = st.plan.iter().position(|f| {
            matches!(f, StorageFault::TornWrite { at, .. } | StorageFault::NoSpace { at } if *at == n)
        })?;
        let fault = st.plan.remove(idx);
        st.fired.push(format!("{}@append:{n}:{path}", fault.name()));
        let err = match &fault {
            StorageFault::NoSpace { .. } => io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected ENOSPC appending {path}"),
            ),
            _ => io::Error::new(
                io::ErrorKind::WriteZero,
                format!("injected torn write appending {path}"),
            ),
        };
        Some((fault, err))
    }
}

impl<V: Vfs> Vfs for FaultVfs<V> {
    fn read(&self, path: &str) -> io::Result<Vec<u8>> {
        let fault = {
            let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let n = st.reads;
            st.reads += 1;
            let idx = st.plan.iter().position(|f| {
                matches!(f, StorageFault::ShortRead { at, .. } | StorageFault::BitFlip { at, .. } if *at == n)
            });
            idx.map(|i| {
                let f = st.plan.remove(i);
                st.fired.push(format!("{}@read:{n}:{path}", f.name()));
                f
            })
        };
        let mut data = self.inner.read(path)?;
        match fault {
            Some(StorageFault::ShortRead { drop, .. }) => {
                let keep = data.len().saturating_sub(drop);
                data.truncate(keep);
            }
            Some(StorageFault::BitFlip { bit, .. }) if !data.is_empty() => {
                let pos = (bit % (data.len() as u64 * 8)) as usize;
                data[pos / 8] ^= 1 << (pos % 8);
            }
            _ => {}
        }
        Ok(data)
    }

    fn append(&self, path: &str, data: &[u8]) -> io::Result<()> {
        match self.take_append_fault(path) {
            Some((StorageFault::TornWrite { keep, .. }, err)) => {
                let keep = keep.min(data.len());
                if keep > 0 {
                    self.inner.append(path, &data[..keep])?;
                }
                Err(err)
            }
            Some((_, err)) => Err(err),
            None => self.inner.append(path, data),
        }
    }

    fn sync(&self, path: &str) -> io::Result<()> {
        let fire = {
            let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
            let n = st.syncs;
            st.syncs += 1;
            let hit = st
                .plan
                .iter()
                .position(|f| matches!(f, StorageFault::FsyncFail { at, count } if *at <= n && n < at.saturating_add(*count)));
            if let Some(i) = hit {
                let done = matches!(&st.plan[i], StorageFault::FsyncFail { at, count } if n + 1 >= at.saturating_add(*count));
                if done {
                    st.plan.remove(i);
                }
                st.fired.push(format!("fsync_fail@sync:{n}:{path}"));
                true
            } else {
                false
            }
        };
        if fire {
            return Err(io::Error::other(format!(
                "injected fsync failure on {path}"
            )));
        }
        self.inner.sync(path)
    }

    fn truncate(&self, path: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn list(&self, dir: &str) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, dir: &str) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn len(&self, path: &str) -> io::Result<u64> {
        self.inner.len(path)
    }
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Record type of a WAL frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A [`crate::delta::SourceDelta`] batch (JSON payload).
    Delta,
    /// A full-state checkpoint (opaque payload, owned by the caller).
    Checkpoint,
}

impl FrameKind {
    fn code(self) -> u8 {
        match self {
            FrameKind::Delta => 1,
            FrameKind::Checkpoint => 2,
        }
    }

    fn from_code(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Delta),
            2 => Some(FrameKind::Checkpoint),
            _ => None,
        }
    }
}

/// One decoded WAL frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Record type.
    pub kind: FrameKind,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

/// Encodes one frame: kind byte, LE length, LE CRC-32 of kind+payload,
/// payload.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.push(kind.code());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32_two(&[kind.code()], payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// How a segment scan ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanEnd {
    /// Every byte parsed as valid frames.
    Clean,
    /// A torn or corrupt frame begins at `offset`; bytes from there on are
    /// unusable (and should be truncated away).
    Torn {
        /// Byte offset of the first unusable frame.
        offset: u64,
        /// Human-readable reason (truncated header, bad CRC, ...).
        reason: String,
    },
}

/// Result of scanning one segment's bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentScan {
    /// Frames decoded before the scan stopped.
    pub frames: Vec<Frame>,
    /// Why the scan stopped.
    pub end: ScanEnd,
    /// Length of the valid prefix (magic + intact frames).
    pub valid_len: u64,
}

/// Scans a segment image, stopping cleanly at the first torn or corrupt
/// frame. Never panics: arbitrary bytes produce `ScanEnd::Torn`, not UB.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return SegmentScan {
            frames: Vec::new(),
            end: ScanEnd::Torn {
                offset: 0,
                reason: "bad segment magic".to_string(),
            },
            valid_len: 0,
        };
    }
    let mut frames = Vec::new();
    let mut off = WAL_MAGIC.len();
    loop {
        if off == bytes.len() {
            return SegmentScan {
                frames,
                end: ScanEnd::Clean,
                valid_len: off as u64,
            };
        }
        let torn = |reason: String, frames: Vec<Frame>| SegmentScan {
            frames,
            end: ScanEnd::Torn {
                offset: off as u64,
                reason,
            },
            valid_len: off as u64,
        };
        if bytes.len() - off < FRAME_HEADER {
            return torn("truncated frame header".to_string(), frames);
        }
        let kind_byte = bytes[off];
        let len = u32::from_le_bytes(bytes[off + 1..off + 5].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[off + 5..off + 9].try_into().unwrap());
        let Some(kind) = FrameKind::from_code(kind_byte) else {
            return torn(format!("unknown frame kind {kind_byte}"), frames);
        };
        if bytes.len() - off - FRAME_HEADER < len {
            return torn("truncated frame payload".to_string(), frames);
        }
        let payload = &bytes[off + FRAME_HEADER..off + FRAME_HEADER + len];
        if crc32_two(&[kind_byte], payload) != crc {
            return torn("frame checksum mismatch".to_string(), frames);
        }
        frames.push(Frame {
            kind,
            payload: payload.to_vec(),
        });
        off += FRAME_HEADER + len;
    }
}

// ---------------------------------------------------------------------------
// The write-ahead log
// ---------------------------------------------------------------------------

/// What [`Wal::recover`] reconstructed from the log directory.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// Payload of the latest intact checkpoint.
    pub checkpoint: Vec<u8>,
    /// Delta payloads committed after that checkpoint, in order.
    pub deltas: Vec<Vec<u8>>,
    /// Segment number the checkpoint was read from.
    pub segment: u32,
    /// Non-fatal recovery observations (torn tails truncated, orphaned
    /// segments discarded, ...).
    pub warnings: Vec<String>,
    /// Bytes of torn tail truncated from the recovered segment.
    pub truncated_bytes: u64,
}

/// An open write-ahead log: one active segment accepting delta frames,
/// rotation starting a fresh checkpoint-led segment.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    dir: String,
    segment: u32,
    good_len: u64,
    poisoned: Option<String>,
}

fn segment_name(n: u32) -> String {
    format!("wal-{n:06}.log")
}

fn segment_number(name: &str) -> Option<u32> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl Wal {
    /// Creates a fresh log in `dir` whose first segment opens with
    /// `checkpoint`. Fails if the directory already holds segments.
    pub fn create(vfs: Arc<dyn Vfs>, dir: &str, checkpoint: &[u8]) -> Result<Wal, WalError> {
        vfs.create_dir_all(dir)
            .map_err(|e| WalError::io(dir, "create_dir", &e))?;
        if !Self::segment_numbers(vfs.as_ref(), dir)?.is_empty() {
            return Err(WalError::Corrupt(format!(
                "log directory {dir} already contains segments"
            )));
        }
        let mut wal = Wal {
            vfs,
            dir: dir.to_string(),
            segment: 0,
            good_len: 0,
            poisoned: None,
        };
        wal.start_segment(1, checkpoint)?;
        Ok(wal)
    }

    /// Sorted segment numbers present in `dir` (empty if the directory is
    /// missing).
    pub fn segment_numbers(vfs: &dyn Vfs, dir: &str) -> Result<Vec<u32>, WalError> {
        let names = match vfs.list(dir) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(WalError::io(dir, "list", &e)),
        };
        let mut nums: Vec<u32> = names.iter().filter_map(|n| segment_number(n)).collect();
        nums.sort_unstable();
        Ok(nums)
    }

    fn path_of(&self, segment: u32) -> String {
        format!("{}/{}", self.dir, segment_name(segment))
    }

    /// Path of the active segment file (relative to the Vfs root).
    pub fn current_segment_path(&self) -> String {
        self.path_of(self.segment)
    }

    /// Active segment number.
    pub fn segment(&self) -> u32 {
        self.segment
    }

    /// Bytes of intact committed data in the active segment.
    pub fn committed_len(&self) -> u64 {
        self.good_len
    }

    fn start_segment(&mut self, n: u32, checkpoint: &[u8]) -> Result<(), WalError> {
        let path = self.path_of(n);
        let mut image = Vec::with_capacity(WAL_MAGIC.len() + FRAME_HEADER + checkpoint.len());
        image.extend_from_slice(WAL_MAGIC);
        image.extend_from_slice(&encode_frame(FrameKind::Checkpoint, checkpoint));
        self.vfs
            .append(&path, &image)
            .map_err(|e| WalError::io(&path, "append", &e))?;
        self.vfs
            .sync(&path)
            .map_err(|e| WalError::io(&path, "sync", &e))?;
        self.segment = n;
        self.good_len = image.len() as u64;
        Ok(())
    }

    /// Appends one delta frame and fsyncs — the commit point. On failure
    /// the segment is repaired (truncated back to the last commit) so a
    /// retry starts clean; if repair itself fails the log is poisoned.
    pub fn append_delta(&mut self, payload: &[u8]) -> Result<(), WalError> {
        if let Some(reason) = &self.poisoned {
            return Err(WalError::Poisoned(reason.clone()));
        }
        let path = self.current_segment_path();
        let frame = encode_frame(FrameKind::Delta, payload);
        let commit = self
            .vfs
            .append(&path, &frame)
            .map_err(|e| WalError::io(&path, "append", &e))
            .and_then(|()| {
                self.vfs
                    .sync(&path)
                    .map_err(|e| WalError::io(&path, "sync", &e))
            });
        match commit {
            Ok(()) => {
                self.good_len += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                if let Err(repair) = self.vfs.truncate(&path, self.good_len) {
                    self.poisoned = Some(format!(
                        "commit failed ({e}) and repair truncate failed ({repair})"
                    ));
                }
                Err(e)
            }
        }
    }

    /// Rolls the committed tail back to `len` (a `committed_len` observed
    /// earlier), discarding frames appended after that point. Callers use
    /// this when a WAL-committed delta turns out not to apply to the
    /// engine, so replay never sees a frame the live state rejected. A
    /// failed rollback poisons the log: the durable tail no longer
    /// matches the in-memory state.
    pub fn rollback_to(&mut self, len: u64) -> Result<(), WalError> {
        if let Some(reason) = &self.poisoned {
            return Err(WalError::Poisoned(reason.clone()));
        }
        if len > self.good_len {
            return Err(WalError::Corrupt(format!(
                "rollback target {len} beyond committed length {}",
                self.good_len
            )));
        }
        if len == self.good_len {
            return Ok(());
        }
        let path = self.current_segment_path();
        let undo = self
            .vfs
            .truncate(&path, len)
            .map_err(|e| WalError::io(&path, "truncate", &e))
            .and_then(|()| {
                self.vfs
                    .sync(&path)
                    .map_err(|e| WalError::io(&path, "sync", &e))
            });
        match undo {
            Ok(()) => {
                self.good_len = len;
                Ok(())
            }
            Err(e) => {
                self.poisoned = Some(format!("rollback to {len} failed ({e})"));
                Err(e)
            }
        }
    }

    /// Rotates: starts segment N+1 with `checkpoint` as its first frame,
    /// then prunes all older segments. A crash anywhere in between leaves
    /// a recoverable directory (the torn new segment is discarded, or the
    /// stale old segments are simply ignored).
    pub fn rotate(&mut self, checkpoint: &[u8]) -> Result<(), WalError> {
        if let Some(reason) = &self.poisoned {
            return Err(WalError::Poisoned(reason.clone()));
        }
        let old = self.segment;
        let next = old + 1;
        match self.start_segment(next, checkpoint) {
            Ok(()) => {}
            Err(e) => {
                // A torn new segment must not shadow the good one: drop it.
                let _ = self.vfs.remove(&self.path_of(next));
                self.segment = old;
                return Err(e);
            }
        }
        for n in Self::segment_numbers(self.vfs.as_ref(), &self.dir)? {
            if n < next {
                let path = self.path_of(n);
                self.vfs
                    .remove(&path)
                    .map_err(|e| WalError::io(&path, "remove", &e))?;
            }
        }
        Ok(())
    }

    /// Opens an existing log: finds the highest-numbered segment with an
    /// intact leading checkpoint, truncates any torn tail, discards
    /// segments whose checkpoint never became durable, and returns the
    /// checkpoint payload plus the committed delta suffix to replay.
    pub fn recover(vfs: Arc<dyn Vfs>, dir: &str) -> Result<(Wal, Recovered), WalError> {
        let mut numbers = Self::segment_numbers(vfs.as_ref(), dir)?;
        if numbers.is_empty() {
            return Err(WalError::Corrupt(format!("no WAL segments in {dir}")));
        }
        numbers.reverse();
        let mut warnings: Vec<String> = Vec::new();
        let mut discarded: Vec<u32> = Vec::new();
        for n in numbers {
            let path = format!("{dir}/{}", segment_name(n));
            let bytes = match vfs.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    warnings.push(format!("segment {path}: unreadable ({e}); skipped"));
                    discarded.push(n);
                    continue;
                }
            };
            let scan = scan_segment(&bytes);
            let leads_with_checkpoint =
                matches!(scan.frames.first(), Some(f) if f.kind == FrameKind::Checkpoint);
            if !leads_with_checkpoint {
                warnings.push(format!(
                    "segment {path}: no intact leading checkpoint; discarded"
                ));
                discarded.push(n);
                continue;
            }
            let mut truncated_bytes = 0;
            if let ScanEnd::Torn { offset, reason } = &scan.end {
                truncated_bytes = bytes.len() as u64 - scan.valid_len;
                warnings.push(format!(
                    "segment {path}: torn tail at byte {offset} ({reason}); truncated {truncated_bytes} bytes"
                ));
                if let Err(e) = vfs.truncate(&path, scan.valid_len) {
                    warnings.push(format!("segment {path}: tail truncate failed ({e})"));
                }
            }
            // Segments newer than the recovered one never completed their
            // rotation; remove them so the next rotation can reuse numbers.
            for d in &discarded {
                let dpath = format!("{dir}/{}", segment_name(*d));
                if let Err(e) = vfs.remove(&dpath) {
                    warnings.push(format!("segment {dpath}: discard failed ({e})"));
                }
            }
            let mut frames = scan.frames.into_iter();
            let checkpoint = frames.next().map(|f| f.payload).unwrap_or_default();
            let mut deltas = Vec::new();
            for f in frames {
                match f.kind {
                    FrameKind::Delta => deltas.push(f.payload),
                    FrameKind::Checkpoint => {
                        warnings.push(format!(
                            "segment {path}: unexpected mid-segment checkpoint; later frames ignored"
                        ));
                        break;
                    }
                }
            }
            let wal = Wal {
                vfs,
                dir: dir.to_string(),
                segment: n,
                good_len: scan.valid_len,
                poisoned: None,
            };
            return Ok((
                wal,
                Recovered {
                    checkpoint,
                    deltas,
                    segment: n,
                    warnings,
                    truncated_bytes,
                },
            ));
        }
        Err(WalError::Corrupt(format!(
            "no segment in {dir} has an intact checkpoint"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Arc<MemVfs> {
        Arc::new(MemVfs::new())
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip_and_scan() {
        let mut image = WAL_MAGIC.to_vec();
        image.extend_from_slice(&encode_frame(FrameKind::Checkpoint, b"cp"));
        image.extend_from_slice(&encode_frame(FrameKind::Delta, b"{\"edits\":[]}"));
        let scan = scan_segment(&image);
        assert_eq!(scan.end, ScanEnd::Clean);
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[0].kind, FrameKind::Checkpoint);
        assert_eq!(scan.frames[1].payload, b"{\"edits\":[]}");
        assert_eq!(scan.valid_len, image.len() as u64);
    }

    #[test]
    fn scan_stops_at_torn_and_corrupt_frames() {
        let mut image = WAL_MAGIC.to_vec();
        image.extend_from_slice(&encode_frame(FrameKind::Delta, b"good"));
        let good_len = image.len() as u64;
        let tail = encode_frame(FrameKind::Delta, b"half-written frame");
        image.extend_from_slice(&tail[..tail.len() / 2]);
        let scan = scan_segment(&image);
        assert_eq!(scan.frames.len(), 1);
        assert!(matches!(scan.end, ScanEnd::Torn { .. }));
        assert_eq!(scan.valid_len, good_len);

        // Bit flip inside a payload: checksum catches it.
        let mut flipped = WAL_MAGIC.to_vec();
        flipped.extend_from_slice(&encode_frame(FrameKind::Delta, b"payload"));
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let scan = scan_segment(&flipped);
        assert!(scan.frames.is_empty());
        assert!(
            matches!(scan.end, ScanEnd::Torn { ref reason, .. } if reason.contains("checksum"))
        );

        // Garbage at the front: bad magic, zero valid bytes.
        let scan = scan_segment(b"not a wal at all");
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn wal_create_append_recover_round_trip() {
        let vfs = mem();
        let mut wal = Wal::create(vfs.clone(), "db", b"cp0").unwrap();
        wal.append_delta(b"d1").unwrap();
        wal.append_delta(b"d2").unwrap();
        drop(wal);
        let (wal, rec) = Wal::recover(vfs, "db").unwrap();
        assert_eq!(rec.checkpoint, b"cp0");
        assert_eq!(rec.deltas, vec![b"d1".to_vec(), b"d2".to_vec()]);
        assert_eq!(rec.segment, 1);
        assert!(rec.warnings.is_empty());
        assert_eq!(wal.segment(), 1);
    }

    #[test]
    fn rotation_prunes_and_recovery_prefers_latest_checkpoint() {
        let vfs = mem();
        let mut wal = Wal::create(vfs.clone(), "db", b"cp0").unwrap();
        wal.append_delta(b"d1").unwrap();
        wal.rotate(b"cp1").unwrap();
        wal.append_delta(b"d2").unwrap();
        assert_eq!(
            Wal::segment_numbers(vfs.as_ref(), "db").unwrap(),
            vec![2],
            "rotation prunes the old segment"
        );
        let (_, rec) = Wal::recover(vfs, "db").unwrap();
        assert_eq!(rec.checkpoint, b"cp1");
        assert_eq!(rec.deltas, vec![b"d2".to_vec()]);
    }

    #[test]
    fn recovery_truncates_torn_tail_and_warns() {
        let vfs = mem();
        let mut wal = Wal::create(vfs.clone(), "db", b"cp0").unwrap();
        wal.append_delta(b"d1").unwrap();
        let path = wal.current_segment_path();
        drop(wal);
        // Simulate a crash mid-append: half a frame lands on disk.
        let frame = encode_frame(FrameKind::Delta, b"torn");
        vfs.append(&path, &frame[..5]).unwrap();
        let before = vfs.len(&path).unwrap();
        let (_, rec) = Wal::recover(vfs.clone(), "db").unwrap();
        assert_eq!(rec.deltas, vec![b"d1".to_vec()]);
        assert_eq!(rec.truncated_bytes, 5);
        assert!(!rec.warnings.is_empty());
        assert_eq!(vfs.len(&path).unwrap(), before - 5, "tail truncated");
        // A second recovery is clean: the repair is durable.
        let (_, rec2) = Wal::recover(vfs, "db").unwrap();
        assert!(rec2.warnings.is_empty());
    }

    #[test]
    fn recovery_discards_segment_with_torn_checkpoint() {
        let vfs = mem();
        let mut wal = Wal::create(vfs.clone(), "db", b"cp0").unwrap();
        wal.append_delta(b"d1").unwrap();
        drop(wal);
        // Simulate a crash mid-rotation: segment 2 exists but its
        // checkpoint frame is torn.
        let mut image = WAL_MAGIC.to_vec();
        let cp = encode_frame(FrameKind::Checkpoint, b"cp1-giant-state");
        image.extend_from_slice(&cp[..cp.len() - 3]);
        vfs.append("db/wal-000002.log", &image).unwrap();
        let (wal, rec) = Wal::recover(vfs.clone(), "db").unwrap();
        assert_eq!(rec.checkpoint, b"cp0");
        assert_eq!(rec.deltas, vec![b"d1".to_vec()]);
        assert_eq!(rec.segment, 1);
        assert!(rec.warnings.iter().any(|w| w.contains("discarded")));
        assert_eq!(
            Wal::segment_numbers(vfs.as_ref(), "db").unwrap(),
            vec![1],
            "torn segment removed"
        );
        drop(wal);
    }

    #[test]
    fn torn_append_repairs_and_next_commit_succeeds() {
        let vfs = Arc::new(FaultVfs::new(MemVfs::new()));
        // Appends: 0 = create's checkpoint, 1 = first delta (torn).
        vfs.schedule(StorageFault::TornWrite { at: 1, keep: 3 });
        let mut wal = Wal::create(vfs.clone(), "db", b"cp0").unwrap();
        let err = wal.append_delta(b"d1").unwrap_err();
        assert!(err.is_transient());
        // The torn bytes were repaired away; a retry commits cleanly.
        wal.append_delta(b"d1").unwrap();
        drop(wal);
        let (_, rec) = Wal::recover(vfs.clone(), "db").unwrap();
        assert_eq!(rec.deltas, vec![b"d1".to_vec()]);
        assert!(rec.warnings.is_empty());
        assert_eq!(vfs.fired(), vec!["torn_write@append:1:db/wal-000001.log"]);
    }

    #[test]
    fn enospc_and_fsync_faults_surface_as_transient_errors() {
        let vfs = Arc::new(FaultVfs::new(MemVfs::new()));
        vfs.schedule(StorageFault::NoSpace { at: 1 });
        vfs.schedule(StorageFault::FsyncFail { at: 1, count: 1 });
        let mut wal = Wal::create(vfs.clone(), "db", b"cp0").unwrap();
        // Append 1: ENOSPC, nothing written.
        let err = wal.append_delta(b"d1").unwrap_err();
        assert!(matches!(&err, WalError::Io { op, .. } if *op == "append"));
        // Retry: the commit's fsync (sync 1; sync 0 was create) fails
        // once transiently, then the next retry goes through.
        let mut attempts = 0;
        loop {
            match wal.append_delta(b"d1") {
                Ok(()) => break,
                Err(e) => {
                    assert!(e.is_transient());
                    attempts += 1;
                    assert!(attempts < 5, "fault should be transient");
                }
            }
        }
        drop(wal);
        let (_, rec) = Wal::recover(vfs, "db").unwrap();
        assert_eq!(rec.deltas, vec![b"d1".to_vec()]);
    }

    #[test]
    fn bit_flip_on_read_is_detected_at_recovery() {
        let vfs = Arc::new(MemVfs::new());
        let mut wal = Wal::create(vfs.clone(), "db", b"cp0").unwrap();
        wal.append_delta(b"d1").unwrap();
        wal.append_delta(b"d2").unwrap();
        drop(wal);
        let faulty = Arc::new(FaultVfs::new(vfs.clone_files()));
        // Flip a bit deep in the file: recovery keeps the intact prefix.
        faulty.schedule(StorageFault::BitFlip {
            at: 0,
            bit: 8 * 40, // inside the first delta frame region
        });
        let (_, rec) = Wal::recover(faulty, "db").unwrap();
        assert!(rec.deltas.len() < 2 || !rec.warnings.is_empty());
    }

    #[test]
    fn std_vfs_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("dtr-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let vfs = Arc::new(StdVfs::new(&dir));
        let mut wal = Wal::create(vfs.clone(), "db", b"cp0").unwrap();
        wal.append_delta(b"d1").unwrap();
        drop(wal);
        let (_, rec) = Wal::recover(vfs, "db").unwrap();
        assert_eq!(rec.checkpoint, b"cp0");
        assert_eq!(rec.deltas, vec![b"d1".to_vec()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
