//! The annotation-generating mapping rewrite (Section 7.2).
//!
//! "Given a mapping `m`, for every expression `expr` referring to element
//! `e` in the select clause of the exists part, expressions
//! `getElAnnot(expr)` and `getMapAnnot(expr)` are also appended to this
//! clause and constants `'e'` and `'m'` are appended to the select clause of
//! the foreach part query." Example 7.2 shows mapping `m2` rewritten this
//! way.
//!
//! The exchange engine of this crate annotates natively (same observable
//! result), but the rewrite is provided for fidelity: it documents exactly
//! what the engine guarantees, and the rewritten mapping can be inspected,
//! stored in the metastore, or checked for satisfaction against an
//! annotated instance.

use crate::glav::Mapping;
use dtr_model::schema::Schema;
use dtr_model::value::{AtomicValue, ElementRef};
use dtr_query::ast::Expr;
use dtr_query::check::{check_query, CheckError, SchemaCatalog};

/// Rewrites a mapping per Section 7.2: the exists select clause additionally
/// retrieves each value's element and mapping annotations, and the foreach
/// select clause supplies the expected constants (the element the value
/// populates and the mapping's own name).
pub fn rewrite_with_annotations(
    m: &Mapping,
    target_schema: &Schema,
) -> Result<Mapping, CheckError> {
    let resolved = check_query(&m.exists, SchemaCatalog::new(vec![target_schema]))?;
    let mut out = m.clone();
    let exists_selects = m.exists.select.clone();
    for expr in &exists_selects {
        // The element the expression refers to, as a constant for the
        // foreach side.
        let elem_const = match resolved.expr_element(expr) {
            Some((s, e)) => {
                let schema = resolved.catalog().schema(s);
                AtomicValue::Elem(ElementRef::new(schema.name(), schema.path(e)))
            }
            None => continue,
        };
        out.exists
            .select
            .push(Expr::Call("getElAnnot".into(), vec![expr.clone()]));
        out.exists
            .select
            .push(Expr::Call("getMapAnnot".into(), vec![expr.clone()]));
        out.foreach.select.push(Expr::Const(elem_const.clone()));
        out.foreach
            .select
            .push(Expr::Const(AtomicValue::Map(m.name.clone())));
        if dtr_obs::journal::enabled() {
            dtr_obs::journal::record(
                dtr_obs::journal::event(
                    "mapping.rewrite",
                    dtr_obs::journal::Outcome::TranslateStep {
                        rule: "append-annotations",
                    },
                )
                .mapping(&m.name)
                .detail(format!(
                    "{expr} -> getElAnnot/getMapAnnot + constants ({elem_const}, '{}')",
                    m.name
                )),
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::types::{AtomicType, Type};

    fn portal_schema() -> Schema {
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    #[test]
    fn rewrite_matches_example_7_2() {
        let m = Mapping::parse(
            "m2",
            "foreach
               select h.hid, h.floors, h.price
               from US.houses h
             exists
               select e.hid, e.stories, e.value
               from Portal.estates e",
        )
        .unwrap();
        let portal = portal_schema();
        let r = rewrite_with_annotations(&m, &portal).unwrap();
        // Each of the three exists select items gains two annotation calls,
        // and the foreach side gains matching constants.
        assert_eq!(r.exists.select.len(), 3 + 6);
        assert_eq!(r.foreach.select.len(), 3 + 6);
        let text = r.exists.to_string();
        assert!(text.contains("getElAnnot(e.hid)"));
        assert!(text.contains("getMapAnnot(e.hid)"));
        assert!(text.contains("getElAnnot(e.value)"));
        let ftext = r.foreach.to_string();
        assert!(ftext.contains("/Portal/estates/hid"));
        assert!(ftext.contains("'m2'"));
        // Arity stays aligned (a requirement on mappings, Section 4.3).
        assert_eq!(r.foreach.select.len(), r.exists.select.len());
    }

    #[test]
    fn rewrite_is_idempotent_on_names() {
        let m = Mapping::parse(
            "m9",
            "foreach select h.hid from US.houses h
             exists select e.hid from Portal.estates e",
        )
        .unwrap();
        let portal = portal_schema();
        let r = rewrite_with_annotations(&m, &portal).unwrap();
        assert_eq!(r.name, m.name);
        assert_eq!(r.foreach.from, m.foreach.from);
        assert_eq!(r.exists.from, m.exists.from);
    }
}
