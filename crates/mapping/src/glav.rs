//! GLAV mappings (Section 4.3).
//!
//! A mapping between a source schema and a target schema is an expression
//! `foreach Qs exists Qt`: every tuple retrieved by `Qs` over the source
//! must be in the result of `Qt` over the target. GLAV mappings subsume the
//! GAV and LAV mappings of the integration literature.

use dtr_model::schema::Schema;
use dtr_model::value::MappingName;
use dtr_query::ast::Query;
use dtr_query::check::{check_query, CheckError, SchemaCatalog};
use dtr_query::parser::{parse_mapping_parts, ParseError};
use std::fmt;

/// A named GLAV mapping `foreach Qs exists Qt`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mapping {
    /// The mapping's identity (e.g. `m1`).
    pub name: MappingName,
    /// The source-side query `Qs`.
    pub foreach: Query,
    /// The target-side query `Qt`.
    pub exists: Query,
}

impl Mapping {
    /// Parses a mapping body of the form `foreach <query> exists <query>`.
    ///
    /// ```
    /// use dtr_mapping::glav::Mapping;
    ///
    /// let m = Mapping::parse(
    ///     "m3",
    ///     "foreach select p.hid, p.totalVal from EU.postings p
    ///      exists select e.hid, e.value from Portal.estates e",
    /// )
    /// .unwrap();
    /// assert_eq!(m.name.as_str(), "m3");
    /// assert_eq!(m.foreach.select.len(), m.exists.select.len());
    /// ```
    pub fn parse(name: impl Into<MappingName>, text: &str) -> Result<Mapping, ParseError> {
        let (foreach, exists) = parse_mapping_parts(text)?;
        Ok(Mapping {
            name: name.into(),
            foreach,
            exists,
        })
    }

    /// Validates the mapping against source schemas and the target schema:
    /// both queries must be well-formed over their respective schemas, and
    /// the two select clauses must have the same number of (type
    /// compatible) expressions (Section 4.3).
    pub fn validate(
        &self,
        source_schemas: &[&Schema],
        target_schema: &Schema,
    ) -> Result<(), MappingError> {
        let src = check_query(&self.foreach, SchemaCatalog::new(source_schemas.to_vec()))
            .map_err(|e| MappingError::Foreach(self.name.clone(), e))?;
        let tgt = check_query(&self.exists, SchemaCatalog::new(vec![target_schema]))
            .map_err(|e| MappingError::Exists(self.name.clone(), e))?;
        if self.foreach.select.len() != self.exists.select.len() {
            return Err(MappingError::SelectArity {
                mapping: self.name.clone(),
                foreach: self.foreach.select.len(),
                exists: self.exists.select.len(),
            });
        }
        for (i, (fe, ee)) in self
            .foreach
            .select
            .iter()
            .zip(&self.exists.select)
            .enumerate()
        {
            let ft = src
                .expr_kind(fe)
                .map_err(|e| MappingError::Foreach(self.name.clone(), e))?
                .atomic_type();
            let et = tgt
                .expr_kind(ee)
                .map_err(|e| MappingError::Exists(self.name.clone(), e))?
                .atomic_type();
            if let (Some(ft), Some(et)) = (ft, et) {
                let numeric = |t: dtr_model::types::AtomicType| {
                    matches!(
                        t,
                        dtr_model::types::AtomicType::Integer | dtr_model::types::AtomicType::Float
                    )
                };
                if ft != et && !(numeric(ft) && numeric(et)) {
                    return Err(MappingError::SelectTypeMismatch {
                        mapping: self.name.clone(),
                        position: i,
                        foreach: ft,
                        exists: et,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: foreach", self.name)?;
        for line in self.foreach.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "exists")?;
        let text = self.exists.to_string();
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            if lines.peek().is_some() {
                writeln!(f, "  {line}")?;
            } else {
                write!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

/// Errors raised while validating mappings.
#[derive(Clone, Debug, PartialEq)]
pub enum MappingError {
    /// The `foreach` query failed checking.
    Foreach(MappingName, CheckError),
    /// The `exists` query failed checking.
    Exists(MappingName, CheckError),
    /// The two select clauses have different lengths.
    SelectArity {
        /// The mapping.
        mapping: MappingName,
        /// Foreach select length.
        foreach: usize,
        /// Exists select length.
        exists: usize,
    },
    /// Select expressions at the same position have incompatible types.
    SelectTypeMismatch {
        /// The mapping.
        mapping: MappingName,
        /// The select position.
        position: usize,
        /// Foreach-side type.
        foreach: dtr_model::types::AtomicType,
        /// Exists-side type.
        exists: dtr_model::types::AtomicType,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Foreach(m, e) => write!(f, "mapping {m}: foreach query: {e}"),
            MappingError::Exists(m, e) => write!(f, "mapping {m}: exists query: {e}"),
            MappingError::SelectArity {
                mapping,
                foreach,
                exists,
            } => write!(
                f,
                "mapping {mapping}: select clauses differ in arity ({foreach} vs {exists})"
            ),
            MappingError::SelectTypeMismatch {
                mapping,
                position,
                foreach,
                exists,
            } => write!(
                f,
                "mapping {mapping}: select position {position}: {foreach} vs {exists}"
            ),
        }
    }
}

impl std::error::Error for MappingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dtr_model::types::{AtomicType, Type};

    fn us_schema() -> Schema {
        Schema::build(
            "USdb",
            vec![(
                "US",
                Type::record(vec![
                    (
                        "houses",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("floors", AtomicType::String),
                            ("price", AtomicType::String),
                            ("aid", AtomicType::String),
                        ]),
                    ),
                    (
                        "agents",
                        Type::set(Type::record(vec![
                            ("aid", Type::string()),
                            (
                                "title",
                                Type::choice(vec![
                                    ("name", Type::string()),
                                    ("firm", Type::string()),
                                ]),
                            ),
                            ("phone", Type::string()),
                        ])),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    fn portal_schema() -> Schema {
        Schema::build(
            "Pdb",
            vec![(
                "Portal",
                Type::record(vec![
                    (
                        "estates",
                        Type::relation(vec![
                            ("hid", AtomicType::String),
                            ("stories", AtomicType::String),
                            ("value", AtomicType::String),
                            ("contact", AtomicType::String),
                        ]),
                    ),
                    (
                        "contacts",
                        Type::relation(vec![
                            ("title", AtomicType::String),
                            ("phone", AtomicType::String),
                        ]),
                    ),
                ]),
            )],
        )
        .unwrap()
    }

    const M1: &str = "foreach
        select h.hid, h.floors, h.price, n, a.phone
        from US.houses h, US.agents a, a.title->name n
        where h.aid = a.aid
      exists
        select e.hid, e.stories, e.value, c.title, c.phone
        from Portal.estates e, Portal.contacts c
        where e.contact = c.title";

    #[test]
    fn parse_and_validate_m1() {
        let m = Mapping::parse("m1", M1).unwrap();
        let us = us_schema();
        let portal = portal_schema();
        m.validate(&[&us], &portal).unwrap();
    }

    #[test]
    fn arity_mismatch_detected() {
        let m = Mapping::parse(
            "bad",
            "foreach select h.hid from US.houses h
             exists select e.hid, e.stories from Portal.estates e",
        )
        .unwrap();
        let us = us_schema();
        let portal = portal_schema();
        assert!(matches!(
            m.validate(&[&us], &portal),
            Err(MappingError::SelectArity { .. })
        ));
    }

    #[test]
    fn bad_foreach_detected() {
        let m = Mapping::parse(
            "bad",
            "foreach select h.nope from US.houses h
             exists select e.hid from Portal.estates e",
        )
        .unwrap();
        let us = us_schema();
        let portal = portal_schema();
        assert!(matches!(
            m.validate(&[&us], &portal),
            Err(MappingError::Foreach(..))
        ));
    }

    #[test]
    fn display_contains_both_parts() {
        let m = Mapping::parse("m1", M1).unwrap();
        let s = m.to_string();
        assert!(s.starts_with("m1: foreach"));
        assert!(s.contains("exists"));
        assert!(s.contains("Portal.estates e"));
        // Round trip through the parser.
        let body = s.strip_prefix("m1: ").unwrap();
        let m2 = Mapping::parse("m1", body).unwrap();
        assert_eq!(m, m2);
    }
}
